#!/usr/bin/env python3
"""Message-level protocol simulation: watch SMRP run on the wire.

Uses the discrete-event simulator (the library's ns2 substitute) to run
the full distributed protocol — Join_Req propagation, soft-state
refreshes, SHR adverts, heartbeat-based failure detection, and
local-detour restoration — and prints the event timeline.

The scenario is the paper's Figure 1 network: members C and D join, the
tree converges, then link S-B (resp. A-D, depending on the built tree)
suffers a persistent failure and the simulator measures the actual
service-restoration latency in simulated time.

Usage: python examples/des_protocol_demo.py
"""

from repro.graph.generators import FIGURE_NODES, figure1_topology, node_id
from repro.sim.failures import FailureSchedule
from repro.sim.protocols import SmrpSimulation
from repro.sim.trace import Trace

NAME = {v: k for k, v in FIGURE_NODES.items()}


def main() -> None:
    print("=== message-level SMRP on the Figure 1 network ===\n")
    topo = figure1_topology()
    S = node_id("S")
    trace = Trace()
    sim = SmrpSimulation(topo, S, d_thresh=0.5, trace=trace)
    print(f"timers: refresh/advert every {sim.timers.advert_period:.0f}, "
          f"failure detection after {sim.timers.failure_detection_timeout:.0f} "
          f"silent time units\n")

    sim.schedule_join(10.0, node_id("C"))
    sim.schedule_join(30.0, node_id("D"))
    sim.run(until=60.0)

    tree = sim.extract_tree()
    print("tree after both joins:")
    for member in sorted(tree.members):
        path = tree.path_from_source(member)
        print(f"  {NAME[member]}: {' -> '.join(NAME[n] for n in path)}")
    print(f"join latencies: "
          + ", ".join(
              f"{NAME[m]}={r.latency:.1f}" for m, r in sim.join_records.items()
          ))

    # Fail D's current upstream link.
    d_path = tree.path_from_source(node_id("D"))
    u, v = d_path[-2], d_path[-1]
    print(f"\nt=100: persistent failure of link {NAME[u]}-{NAME[v]}")
    FailureSchedule().fail_link_at(100.0, u, v).arm(sim.sim, sim.network)
    sim.run(until=300.0)

    for record in sim.recovery_records:
        detour = " -> ".join(NAME[n] for n in record.detour) or "(none found)"
        restored = (
            f"restored at t={record.restored_at:.1f} "
            f"(latency {record.restoration_latency:.1f})"
            if record.restored_at is not None
            else "NOT restored"
        )
        print(f"  node {NAME[record.detector]} detected the failure at "
              f"t={record.detected_at:.1f}, detour {detour}, {restored}")

    final = sim.extract_tree()
    print("\nfinal tree:")
    for member in sorted(final.members):
        path = final.path_from_source(member)
        print(f"  {NAME[member]}: {' -> '.join(NAME[n] for n in path)}")

    print(f"\ncontrol messages exchanged: {sim.network.stats.by_kind}")
    print(f"lost to the failed link: {sim.network.stats.lost_link_failed}")

    print("\nfailure-related event timeline:")
    for rec in trace.filter(category="failure"):
        print(f"  {rec}")
    print("\n(run with the Trace API to inspect every send/recv event)")


if __name__ == "__main__":
    main()
