#!/usr/bin/env python3
"""The paper's worked examples, reproduced step by step.

Walks through Figures 1, 4, and 5 of Wu & Shin (DSN 2005) on the exact
topologies reconstructed in ``repro.graph.generators``, printing each
decision the paper narrates:

- Figure 1: why the local detour D→C beats the SPF re-join D→B→S;
- Figure 4: the joins of E, G and F under the path-selection criterion
  with D_thresh = 0.3;
- Figure 5: F's join raising SHR_{S,D} from 2 to 4 and triggering E's
  reshape onto E→C→A→S.

Usage: python examples/paper_walkthrough.py
"""

from repro import figure1_topology, figure4_topology
from repro.core.protocol import SMRPConfig, SMRPProtocol
from repro.core.recovery import global_detour_recovery, local_detour_recovery
from repro.graph.generators import FIGURE_NODES, node_id
from repro.multicast.tree import MulticastTree
from repro.routing.failure_view import FailureSet

NAME = {v: k for k, v in FIGURE_NODES.items()}


def fmt_path(path) -> str:
    return " -> ".join(NAME[n] for n in path)


def figure1() -> None:
    print("=" * 64)
    print("Figure 1: local detour vs. global detour")
    print("=" * 64)
    topo = figure1_topology()
    S = node_id("S")

    tree = MulticastTree(topo, S)
    tree.graft([S, node_id("A"), node_id("C")])
    tree.graft([node_id("A"), node_id("D")])
    print(f"SPF tree (Fig 1a): links "
          f"{sorted((NAME[u], NAME[v]) for u, v in tree.tree_links())}")

    failure = FailureSet.links((node_id("A"), node_id("D")))
    print(f"\nlink L_AD fails; member D is disconnected")

    global_ = global_detour_recovery(topo, tree, node_id("D"), failure)
    local = local_detour_recovery(topo, tree, node_id("D"), failure)
    print(f"  global detour (what PIM does): {fmt_path(global_.restoration_path)}"
          f"  RD = {global_.recovery_distance:.0f}, new delay "
          f"{global_.new_end_to_end_delay:.0f}")
    print(f"  local detour (SMRP's choice): {fmt_path(local.restoration_path)}"
          f"  RD = {local.recovery_distance:.0f}, new delay "
          f"{local.new_end_to_end_delay:.0f}")
    print(f"\n=> the paper's RD_D = 2: only link C-D must be brought into the "
          f"tree, at the cost of a larger end-to-end delay\n")


def figures4_and_5() -> None:
    print("=" * 64)
    print("Figures 4 & 5: tree construction and reshaping (D_thresh = 0.3)")
    print("=" * 64)
    topo = figure4_topology()
    proto = SMRPProtocol(
        topo,
        node_id("S"),
        config=SMRPConfig(d_thresh=0.3, reshape_shr_threshold=2),
    )

    for label in ("E", "G", "F"):
        member = node_id(label)
        before = proto.stats.reshapes_performed
        selection = proto.join(member)
        print(f"\n{label} joins:")
        print(f"  candidates considered: {selection.num_candidates} "
              f"({selection.num_feasible} within the delay bound "
              f"{selection.bound:.2f} = 1.3 x {selection.spf_delay:.2f})")
        print(f"  selected path: {fmt_path(reversed(selection.candidate.graft_path))}"
              f" (merge at {NAME[selection.candidate.merge_node]}, "
              f"SHR {selection.candidate.shr}, delay "
              f"{selection.candidate.total_delay:.2f})")
        shr = proto.shr_values()
        print(f"  SHR values now: "
              + ", ".join(f"{NAME[n]}={v}" for n, v in sorted(shr.items())))
        if proto.stats.reshapes_performed > before:
            print(f"  *** Condition I fired: the join raised an upstream SHR "
                  f"past the threshold and a reshape was performed (Fig 5)")

    tree = proto.tree
    print(f"\nfinal tree links: "
          f"{sorted((NAME[u], NAME[v]) for u, v in tree.tree_links())}")
    print(f"E's path: {fmt_path(tree.path_from_source(node_id('E')))} "
          f"(reshaped onto the A-C branch, exactly as Figure 5d)")


if __name__ == "__main__":
    figure1()
    figures4_and_5()
