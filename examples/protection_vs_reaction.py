#!/usr/bin/env python3
"""The fault-tolerance spectrum: reactive, survivable-reactive, proactive.

The paper's related work (§2) frames three design points for surviving
persistent failures:

1. **reactive** — today's PIM/OSPF: rebuild after re-convergence
   (cheapest standing state, slowest recovery),
2. **SMRP** — survivable trees + local detours (small standing premium,
   short recovery),
3. **proactive protection** — Han & Shin's dependable connections /
   Medard's redundant trees: pre-reserved disjoint backups
   (largest standing cost, instant switchover).

This example builds all three on the same network and group, applies the
same worst-case failure to each member, and prints the cost/recovery
frontier, plus the coverage limits of protection (members behind bridges
cannot be protected at all).

Usage: python examples/protection_vs_reaction.py [seed]
"""

import sys

import numpy as np

from repro import SMRPConfig, SMRPProtocol, SPFMulticastProtocol, WaxmanConfig, waxman_topology
from repro.metrics.recovery_metrics import worst_case_recovery
from repro.multicast.protection import ProtectedMulticast
from repro.routing.failure_view import FailureSet


def main(seed: int = 5) -> None:
    print(f"=== protection vs. reaction (seed {seed}) ===\n")
    network = waxman_topology(
        WaxmanConfig(n=100, alpha=0.25, beta=0.25, seed=seed)
    ).topology
    rng = np.random.default_rng(seed + 1)
    members = sorted(int(m) for m in rng.choice(range(1, 100), 25, replace=False))

    spf = SPFMulticastProtocol(network, 0).build(members)
    smrp = SMRPProtocol(network, 0, config=SMRPConfig(d_thresh=0.3)).build(members)
    protection = ProtectedMulticast(network, 0).build(members)
    pstats = protection.stats()

    def mean_rd(tree, strategy):
        values = []
        for m in members:
            result = worst_case_recovery(network, tree, m, strategy)
            if result.recovered:
                values.append(result.recovery_distance)
        return sum(values) / len(values) if values else float("nan")

    print(f"{'design point':<26} {'standing cost':>14} {'worst-case RD':>14}")
    print("-" * 56)
    print(f"{'PIM/OSPF (reactive)':<26} {spf.tree_cost():>14.0f} "
          f"{mean_rd(spf, 'global'):>14.1f}")
    print(f"{'SMRP (survivable)':<26} {smrp.tree_cost():>14.0f} "
          f"{mean_rd(smrp, 'local'):>14.1f}")
    print(f"{'protection (proactive)':<26} {pstats.reserved_cost:>14.0f} "
          f"{'0.0 (switch)':>14}")

    print(f"\nprotection coverage: {pstats.protected_members}/{len(members)} "
          f"members have a disjoint backup "
          f"({pstats.unprotected_members} sit behind bridges — no second "
          f"path exists for them at any price)")
    print(f"protection premium over working paths: "
          f"{100 * pstats.protection_premium:.0f}%")

    # Show one concrete switchover.
    protected = [m for m in members if protection.members[m].is_protected]
    if protected:
        m = protected[0]
        state = protection.members[m]
        failure = FailureSet.links(tuple(state.primary[:2]))
        active = state.active_path(failure)
        print(f"\nexample switchover for member {m}:")
        print(f"  primary: {' -> '.join(map(str, state.primary))}")
        print(f"  failure: {failure.describe()}")
        print(f"  active:  {' -> '.join(map(str, active))} "
              f"(delay penalty "
              f"{protection.switchover_delay_penalty(m):+.1f})")

    print("\n=> SMRP buys most of protection's recovery speed at a fraction "
          "of its standing cost, and covers bridge members protection "
          "cannot (they still get the nearest surviving detour)")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 5)
