#!/usr/bin/env python3
"""A QoS-sensitive video conference under membership churn.

The paper motivates SMRP with "video conferencing, remote monitoring...
applications characterized by stringent QoS requirements" (§3.1), and its
tree-reshaping mechanism with dynamic joins/leaves (§3.2.3).  This example
runs a conference session over a 100-node ISP-like topology:

1. participants join and leave as a Poisson churn process,
2. the protocol reshapes the tree as the group evolves (Conditions I/II),
3. midway, a backbone link suffers a persistent failure and the affected
   participants recover through local detours,
4. final report: tree quality, reshaping activity, worst-case recovery
   exposure of every active participant.

Usage: python examples/video_conference.py [seed]
"""

import sys

import numpy as np

from repro import SMRPConfig, SMRPProtocol, WaxmanConfig, waxman_topology
from repro.core.recovery import repair_tree, worst_case_failure
from repro.errors import UnrecoverableFailureError
from repro.metrics.recovery_metrics import worst_case_recovery
from repro.multicast.group import GroupAction, GroupWorkload
from repro.routing.spf import dijkstra


def main(seed: int = 11) -> None:
    print(f"=== video conference under churn (seed {seed}) ===\n")
    network = waxman_topology(
        WaxmanConfig(n=100, alpha=0.25, beta=0.25, seed=seed)
    ).topology
    rng = np.random.default_rng(seed + 1)
    source = 0  # the conference speaker / mixer

    workload = GroupWorkload.churn(
        network,
        source,
        rng,
        duration=600.0,
        mean_holding_time=240.0,
        mean_interarrival=6.0,
    )
    print(f"churn workload: {len(workload)} membership events over 600s "
          f"(Poisson arrivals, exponential holding times)\n")

    proto = SMRPProtocol(
        network,
        source,
        config=SMRPConfig(d_thresh=0.3, reshape_shr_threshold=2),
    )

    failure_time = 300.0
    failed = False
    for event in workload:
        if not failed and event.time >= failure_time and proto.tree.members:
            failed = True
            victim = sorted(proto.tree.members)[0]
            failure = worst_case_failure(proto.tree, victim)
            affected = proto.tree.disconnected_members(failure)
            print(f"t={failure_time:.0f}s  PERSISTENT FAILURE "
                  f"({failure.describe()}): {len(affected)} participants cut off")
            report = repair_tree(network, proto.tree, failure, strategy="local")
            proto.tree = report.repaired_tree
            proto.state.tree = report.repaired_tree
            proto.state.rebuild()
            print(f"          local recovery re-attached "
                  f"{len(report.recoveries)} participants "
                  f"(total new-path distance "
                  f"{report.total_recovery_distance:.1f}); "
                  f"{len(report.unrecoverable)} unrecoverable\n")
        if event.action is GroupAction.JOIN and not proto.tree.is_member(event.node):
            proto.join(event.node)
        elif event.action is GroupAction.LEAVE and proto.tree.is_member(event.node):
            proto.leave(event.node)

    members = sorted(proto.tree.members)
    print(f"t=600s  conference ends with {len(members)} active participants")
    print(f"  joins processed:   {proto.stats.joins}")
    print(f"  leaves processed:  {proto.stats.leaves}")
    print(f"  reshapes performed: {proto.stats.reshapes_performed} "
          f"(of {proto.stats.reshape_evaluations} evaluations)\n")

    spf = dijkstra(network, source)
    stretches = [
        proto.tree.delay_from_source(m) / spf.dist[m] for m in members
    ]
    print(f"per-participant delay stretch vs. unicast optimum: "
          f"mean {np.mean(stretches):.3f}, worst {max(stretches):.3f}")
    print("  (joins are bounded by 1 + D_thresh = 1.30; emergency recovery "
          "paths trade that bound away for restoration speed, §3.1)\n")

    print("worst-case recovery exposure of the final tree:")
    distances = []
    for m in members[:10]:
        measurement = worst_case_recovery(network, proto.tree, m, "local")
        if measurement.recovered:
            distances.append(measurement.recovery_distance)
            print(f"  participant {m:3}: recovery distance "
                  f"{measurement.recovery_distance:7.1f} via node "
                  f"{measurement.result.attach_node}")
        else:
            print(f"  participant {m:3}: no detour exists (bridge failure)")
    if distances:
        print(f"\n=> mean local recovery distance {np.mean(distances):.1f} "
              f"over the sampled participants")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 11)
