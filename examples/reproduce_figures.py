#!/usr/bin/env python3
"""Regenerate every figure of the paper's evaluation as a text table.

Runs the drivers for Figures 7-10 (§4.3) and prints the same series the
paper plots, annotated with the paper's claims.  The ``--quick`` flag uses
a reduced scenario grid; the default matches the paper's 100 scenarios
per configuration point (takes a few minutes).

Usage:
    python examples/reproduce_figures.py [--quick] [--figure 7|8|9|10]
"""

import argparse
import time

from repro.experiments.fig7 import run_figure7
from repro.experiments.fig8 import run_figure8
from repro.experiments.fig9 import run_figure9
from repro.experiments.fig10 import run_figure10


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="reduced grid (4x2 instead of 10x10 scenarios)")
    parser.add_argument("--figure", type=int, choices=[7, 8, 9, 10],
                        help="regenerate a single figure only")
    args = parser.parse_args()

    topologies, member_sets = (4, 2) if args.quick else (10, 10)

    def banner(figure: int, title: str) -> None:
        print()
        print("=" * 72)
        print(f"Figure {figure}: {title}")
        print("=" * 72)

    figures = {
        7: lambda: run_figure7(topologies=5),
        8: lambda: run_figure8(topologies=topologies, member_sets=member_sets),
        9: lambda: run_figure9(topologies=topologies, member_sets=member_sets),
        10: lambda: run_figure10(topologies=topologies, member_sets=member_sets),
    }
    titles = {
        7: "local detour vs. global detour (N=100, N_G=30, α=0.2, D_thresh=0.3)",
        8: "the effect of D_thresh",
        9: "the effect of the average node degree (α)",
        10: "the effect of the group size N_G",
    }

    selected = [args.figure] if args.figure else [7, 8, 9, 10]
    for figure in selected:
        banner(figure, titles[figure])
        start = time.time()
        result = figures[figure]()
        if figure == 7:
            # The scatter is large; print the summary plus a sample.
            sample = result.points[:15]
            for p in sample:
                marker = "v" if p.below_diagonal else " "
                print(f"  topo {p.topology_seed}  member {p.member:3}  "
                      f"RD global {p.rd_global:7.2f}  RD local "
                      f"{p.rd_local:7.2f}  {marker}")
            print(f"  ... ({len(result.points)} points total)")
            print(f"\n  below y=x: {100 * result.fraction_below_diagonal:.0f}% "
                  f"of points; average reduction "
                  f"{100 * result.reduction.mean:.0f}% (paper: ~33%)")
        else:
            print(result.render())
        print(f"\n  [{time.time() - start:.1f}s]")


if __name__ == "__main__":
    main()
