#!/usr/bin/env python3
"""Hierarchical recovery domains on a transit-stub internetwork (§3.3.3).

Reproduces the Figure 6 scenario: a 2-level recovery architecture where
each stub domain (and the transit backbone) runs its own SMRP sub-tree
rooted at a recovery agent.  Failures are repaired entirely inside the
domain they occur in; this example shows the confinement by failing

1. a link inside a member's stub domain, then
2. a backbone link,

and reporting which domains had to reconfigure, versus a flat SMRP
session on the identical topology where any failure may touch any state.

Usage: python examples/hierarchical_recovery.py [seed]
"""

import sys

import numpy as np

from repro import SMRPConfig, SMRPProtocol, TransitStubConfig, transit_stub_topology
from repro.core.hierarchy import HierarchicalMulticast
from repro.core.recovery import repair_tree
from repro.routing.failure_view import FailureSet


def main(seed: int = 3) -> None:
    print(f"=== hierarchical recovery on a transit-stub network (seed {seed}) ===\n")
    network = transit_stub_topology(
        TransitStubConfig(transit_nodes=4, stubs_per_transit=3, stub_size=8,
                          seed=seed)
    )
    topo = network.topology
    print(f"network: {topo}")
    print(f"domains: 1 transit + {len(network.stub_domains)} stubs "
          f"(gateway agents: "
          f"{[d.gateway for d in network.stub_domains]})\n")

    rng = np.random.default_rng(seed + 1)
    stub_nodes = [
        n for d in network.stub_domains for n in sorted(d.nodes)
        if n != d.gateway
    ]
    source = stub_nodes[0]
    members = sorted(
        {int(stub_nodes[i]) for i in rng.choice(len(stub_nodes), 14, replace=False)}
        - {source}
    )

    session = HierarchicalMulticast(network, source, config=SMRPConfig(d_thresh=0.5))
    for m in members:
        session.join(m)
    flat = SMRPProtocol(topo, source, config=SMRPConfig(d_thresh=0.5))
    flat.build(members)

    print(f"source {source} (stub domain "
          f"{network.domain_of[source]}), {len(members)} members across "
          f"{len({network.domain_of[m] for m in members})} stub domains")
    print(f"active recovery domains: {session.active_domains()}")
    print(f"hierarchical total cost {session.total_cost():.1f} vs flat "
          f"{flat.tree.tree_cost():.1f}\n")

    # ---- failure 1: inside a member's stub domain --------------------
    member = members[-1]
    domain = network.domains[network.domain_of[member]]
    stub_tree = session.protocol(domain.domain_id).tree
    path = stub_tree.path_from_source(member)
    failure = FailureSet.links((path[0], path[1]))
    print(f"failure 1: {failure.describe()} inside stub domain "
          f"{domain.domain_id}")
    report = session.recover(failure)
    print(f"  domains reconfigured: {report.domains_reconfigured} "
          f"(scope: {report.scope_nodes}/{topo.num_nodes} nodes)")
    print(f"  recovery distance: {report.total_recovery_distance:.1f}; "
          f"members unrecoverable: {report.unrecoverable}")
    flat_report = repair_tree(topo, flat.tree, failure, strategy="local")
    flat.tree = flat_report.repaired_tree
    print(f"  flat SMRP on the same failure: repair searched the whole "
          f"{topo.num_nodes}-node network\n")

    # ---- failure 2: a backbone link ----------------------------------
    transit_tree = session.protocol(0).tree
    backbone_link = sorted(transit_tree.tree_links())[0]
    failure2 = FailureSet.links(backbone_link)
    print(f"failure 2: {failure2.describe()} on the transit backbone")
    report2 = session.recover(failure2)
    print(f"  domains reconfigured: {report2.domains_reconfigured} "
          f"(scope: {report2.scope_nodes}/{topo.num_nodes} nodes)")
    print(f"  every stub domain's tree was left untouched\n")

    # ---- end-to-end service check -------------------------------------
    alive = [m for m in members if m in session.members]
    delays = [session.end_to_end_delay(m) for m in alive]
    print(f"post-recovery: {len(alive)}/{len(members)} members in service, "
          f"mean end-to-end delay {np.mean(delays):.1f}")
    print("\n=> failures were repaired strictly inside their recovery "
          "domain, as the paper's Figure 6 describes")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 3)
