#!/usr/bin/env python3
"""Quickstart: build a survivable multicast tree, break it, recover fast.

Runs on a random 100-node Waxman network (the paper's evaluation setup):

1. build an SMRP tree and the SPF baseline tree for the same group,
2. fail the worst-case link for one member (the link next to the source),
3. restore service with SMRP's local detour and with the baseline's
   post-re-convergence re-join, and compare recovery distance and the
   estimated restoration latency.

Usage: python examples/quickstart.py [seed]
"""

import sys

import numpy as np

from repro import (
    SMRPConfig,
    SMRPProtocol,
    SPFMulticastProtocol,
    WaxmanConfig,
    global_detour_recovery,
    local_detour_recovery,
    waxman_topology,
    worst_case_failure,
)
from repro.core.recovery import estimate_restoration_latency
from repro.multicast.render import render_comparison, tree_statistics
from repro.routing.link_state import ConvergenceModel


def main(seed: int = 7) -> None:
    print(f"=== SMRP quickstart (seed {seed}) ===\n")

    network = waxman_topology(
        WaxmanConfig(n=100, alpha=0.2, beta=0.25, seed=seed)
    ).topology
    print(f"network: {network}")

    rng = np.random.default_rng(seed + 1)
    source = 0
    members = sorted(int(m) for m in rng.choice(range(1, 100), 30, replace=False))
    print(f"source: {source}, members: {members[:10]}... ({len(members)} total)\n")

    smrp = SMRPProtocol(network, source, config=SMRPConfig(d_thresh=0.3))
    smrp.build(members)
    spf = SPFMulticastProtocol(network, source)
    spf.build(members)

    print(f"SMRP tree: cost {smrp.tree.tree_cost():8.1f}, "
          f"links {len(smrp.tree.tree_links())}, "
          f"reshapes during construction: {smrp.stats.reshapes_performed}")
    print(f"SPF  tree: cost {spf.tree.tree_cost():8.1f}, "
          f"links {len(spf.tree.tree_links())}\n")

    print("tree shapes (members starred — note how SMRP spreads branches "
          "that SPF shares):")
    print(render_comparison(spf.tree, smrp.tree, "SPF", "SMRP"))
    print(f"\nSPF:  {tree_statistics(spf.tree)}")
    print(f"SMRP: {tree_statistics(smrp.tree)}\n")

    victim = members[0]
    model = ConvergenceModel(detection_delay=30.0)

    f_smrp = worst_case_failure(smrp.tree, victim)
    f_spf = worst_case_failure(spf.tree, victim)
    print(f"member {victim}: failing its source-incident link on each tree")
    print(f"  SMRP tree failure: {f_smrp.describe()}")
    print(f"  SPF  tree failure: {f_spf.describe()}\n")

    local = local_detour_recovery(network, smrp.tree, victim, f_smrp)
    global_ = global_detour_recovery(network, spf.tree, victim, f_spf)

    t_local = estimate_restoration_latency(
        network, smrp.tree, local, f_smrp, convergence=model
    )
    t_global = estimate_restoration_latency(
        network, spf.tree, global_, f_spf, convergence=model
    )

    print("recovery comparison:")
    print(f"  SMRP local detour : path {' -> '.join(map(str, local.restoration_path))}")
    print(f"      recovery distance {local.recovery_distance:7.1f}, "
          f"est. restoration latency {t_local:7.1f}")
    print(f"  SPF global detour : path {' -> '.join(map(str, global_.restoration_path))}")
    print(f"      recovery distance {global_.recovery_distance:7.1f}, "
          f"est. restoration latency {t_global:7.1f}\n")

    reduction = (
        (global_.recovery_distance - local.recovery_distance)
        / global_.recovery_distance
    )
    print(f"=> SMRP shortens this member's recovery path by {100 * reduction:.0f}% "
          f"and restores service {t_global / t_local:.1f}x faster")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 7)
