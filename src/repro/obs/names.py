"""Registry of every observability name the codebase emits.

Metric names, span names, and trace phases are stringly-typed at their
emission sites; nothing in the type system stops a counter from being
renamed in one layer and silently orphaned in a dashboard, golden
report, or analysis script.  This module is the single inventory — the
lint test (``tests/obs/test_names.py``) scans the source tree for
emission sites and fails when a literal is emitted that is not listed
here (or listed here but emitted nowhere), so every rename shows up in
review as a registry diff.

Dynamic names (a per-kind message counter, a per-value sweep span) are
covered by ``DYNAMIC_PREFIXES``: an emitted name matches the registry
if it is listed exactly or extends a listed prefix.
"""

from __future__ import annotations

#: Counter / gauge / histogram names, as passed to
#: ``obs.counter(...)`` / ``obs.gauge(...)`` / ``obs.histogram(...)``.
METRIC_NAMES: frozenset[str] = frozenset({
    "cache.routes.batch_inserts",
    "cache.routes.evictions",
    "cache.routes.hit_rate",
    "cache.routes.hits",
    "cache.routes.reuse_proofs",
    "cache.routes.size",
    "cache.topology.evictions",
    "cache.topology.hit_rate",
    "cache.topology.size",
    "controller.batch.bucket_size",
    "controller.batch.buckets",
    "controller.batch.warmed",
    "controller.failures_dispatched",
    "controller.groups_affected",
    "controller.groups_opened",
    "controller.members_restored",
    "controller.workload_events",
    "demo.widgets",
    "dist.groups",
    "dist.rows",
    "exec.checkpoint.hits",
    "exec.checkpoint.writes",
    "exec.jobs",
    "exec.retries",
    "exec.scenarios",
    "exec.worker_reports_merged",
    "protection.alternate.hits",
    "protection.alternate.misses",
    "protection.alternate.routes",
    "protection.alternate.tables",
    "protection.backups_built",
    "protection.fallbacks",
    "protection.standing_links",
    "protection.switchovers",
    "recovery.global.already_connected",
    "recovery.global.attempts",
    "recovery.global.hops",
    "recovery.global.unrecoverable",
    "recovery.local.already_connected",
    "recovery.local.attempts",
    "recovery.local.hops",
    "recovery.local.unrecoverable",
    "recovery.repair.members_restored",
    "recovery.repair.spf_runs",
    "recovery.repair.unrecoverable",
    "routing.batch.calls",
    "routing.batch.candidates_vectorized",
    "routing.batch.roots",
    "routing.batch.rounds",
    "routing.batch.shr_calls",
    "routing.batch.shr_vectorized",
    "routing.candidates.batched_searches",
    "routing.candidates.evaluated",
    "routing.kernel.barrier_calls",
    "routing.kernel.calls",
    "scenario.runs",
    "sim.engine.events_cancelled",
    "sim.engine.events_fired",
    "sim.engine.events_scheduled",
    "sim.engine.queue_depth",
    "sim.msg.delivered",
    "sim.msg.lost",
    "sim.recovery.detections",
    "sim.recovery.detour_hops",
    "sim.recovery.restored",
    "sim.recovery.unrecoverable",
    "smrp.fallback_joins",
    "smrp.join_signaling_hops",
    "smrp.joins",
    "smrp.leave_signaling_hops",
    "smrp.leaves",
    "smrp.query_hops",
    "smrp.query_messages",
    "smrp.reshape_evaluations",
    "smrp.reshapes_performed",
    "smrp.state.n_updates",
    "smrp.state.shr_pulls",
    "smrp.state.shr_pushes",
    "telemetry.batch.completed",
    "telemetry.batch.total",
    "telemetry.eta_s",
    "telemetry.group_restore_latency_s",
    "telemetry.in_flight",
    "telemetry.scenario_seconds",
    "telemetry.throughput_per_s",
})

#: Span names, as passed to ``obs.span(...)`` / ``obs.spans.span(...)``.
SPAN_NAMES: frozenset[str] = frozenset({
    "controller.batch_warm",
    "controller.fail",
    "controller.restore",
    "demo.work",
    "fault.injected_hang",
    "inner",
    "outer",
    "prof.run",
    "protection.switchover",
    "recovery.repair_tree",
    "scenario.build.smrp",
    "scenario.build.spf",
    "scenario.measure",
    "scenario.topology",
    "service.run",
    "service.shard",
    "sim.join.select_path",
    "sim.recovery.detour",
    "smrp.build",
    "smrp.join",
    "smrp.leave",
    "smrp.recover",
    "smrp.repair",
    "smrp.reshape",
    "sweep.run",
})

#: Trace phases of restoration episodes (:mod:`repro.obs.tracing`).
TRACE_PHASES: frozenset[str] = frozenset({
    "episode",
    "detect",
    "converge",
    "search",
    "search.candidates",
    "signal",
    "signal.hop",
    "repair",
    "reshape.evaluate",
})

#: Prefixes for names built at runtime (f-strings over message kinds,
#: sweep values, fault-injection counters).  A dynamic emission matches
#: when its literal prefix is listed here.
DYNAMIC_PREFIXES: tuple[str, ...] = (
    "dist.",          # dist.{latency,mean_latency}.<engine> hdr histograms
    "exec.",          # exec.{timeouts,crashes,scenario_errors} fault counters
    "sim.msg.bytes.",  # per message kind
    "sim.msg.sent.",   # per message kind
    "smrp.msg.",       # per protocol message kind
    "sweep.point.",    # per swept parameter value
)

ALL_STATIC_NAMES: frozenset[str] = METRIC_NAMES | SPAN_NAMES | TRACE_PHASES


def is_registered(name: str) -> bool:
    """Whether ``name`` is in the registry, exactly or via a prefix."""
    if name in ALL_STATIC_NAMES:
        return True
    return any(
        name.startswith(prefix) and name != prefix
        for prefix in DYNAMIC_PREFIXES
    )
