"""Run reports: one JSON document summarizing an observed run.

A run report bundles the metrics snapshot, the span timing tree, and the
event-log accounting under a caller-supplied ``meta`` block.  It is the
interchange format between the experiment runner (``--obs-out run.json``)
and the CLI renderer (``repro obs report run.json``), and what benchmarks
assert against instead of re-deriving counts.
"""

from __future__ import annotations

import json
import re
from math import ceil
from typing import TYPE_CHECKING

from repro.errors import ConfigurationError
from repro.obs.registry import HdrHistogram

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs import Observability

#: Schema marker so future readers can evolve the format compatibly.
REPORT_VERSION = 1

#: Quantiles the report renderer prints for every histogram family.
REPORT_QUANTILES: tuple[tuple[str, float], ...] = (
    ("p50", 0.5),
    ("p95", 0.95),
    ("p99", 0.99),
)


def build_run_report(obs: "Observability", meta: dict | None = None) -> dict:
    """Assemble the JSON-serializable run report for ``obs``.

    Event accounting includes totals absorbed from merged worker runs
    (:func:`repro.obs.merge.merge_report_into`): worker event *records*
    stay in their worker, only the counts travel.
    """
    events = obs.events
    report = {
        "version": REPORT_VERSION,
        "meta": dict(meta or {}),
        "metrics": obs.metrics.snapshot(),
        "spans": obs.spans.report(),
        "events": {
            "recorded": len(events) + events.absorbed_records,
            "dropped": events.dropped + events.absorbed_dropped,
        },
    }
    tracer = getattr(obs, "tracer", None)
    if tracer is not None:
        # Causal restoration episodes ride the same worker->parent channel
        # as metrics; the parent's tracer absorbs them in seed order.
        report["tracing"] = tracer.report()
    return report


def write_run_report(report: dict, path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_run_report(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as fh:
        report = json.load(fh)
    if not isinstance(report, dict) or "metrics" not in report:
        raise ConfigurationError(f"{path} is not a repro run report")
    return report


def render_run_report(report: dict) -> str:
    """Human-readable rendering of a run report (the CLI's output)."""
    lines: list[str] = []
    meta = report.get("meta", {})
    title = meta.get("title", "run report")
    lines.append(f"== {title} ==")
    for key in sorted(k for k in meta if k != "title"):
        lines.append(f"  {key}: {meta[key]}")

    metrics = report.get("metrics", {})
    counters = metrics.get("counters", {})
    if counters:
        lines.append("")
        lines.append("counters:")
        width = max(len(n) for n in counters)
        for name in sorted(counters):
            lines.append(f"  {name:<{width}}  {counters[name]}")

    batch_lines = _render_batch_routing(counters)
    if batch_lines:
        lines.append("")
        lines.append("batch routing:")
        lines.extend(batch_lines)

    gauges = metrics.get("gauges", {})
    if gauges:
        lines.append("")
        lines.append("gauges:")
        width = max(len(n) for n in gauges)
        for name in sorted(gauges):
            g = gauges[name]
            lines.append(
                f"  {name:<{width}}  {g['value']:g} (high-water {g['high_water']:g})"
            )

    histograms = metrics.get("histograms", {})
    if histograms:
        lines.append("")
        lines.append("histograms:")
        for name in sorted(histograms):
            h = histograms[name]
            # Mid-run partial state may include a registered histogram
            # with zero observations: guard the mean and render missing
            # extrema as em-dashes instead of "None".
            mean = h["sum"] / h["count"] if h["count"] else 0.0
            low = "—" if h["min"] is None else h["min"]
            high = "—" if h["max"] is None else h["max"]
            quantiles = " ".join(
                f"{label}={_quantile_text(_fixed_quantile(h, q))}"
                for label, q in REPORT_QUANTILES
            )
            lines.append(
                f"  {name}: n={h['count']} mean={mean:.3f} "
                f"min={low} max={high} {quantiles}"
            )
            lower = None
            for bound, count in zip(h["bounds"], h["counts"]):
                if count:
                    label = (
                        f"<= {bound:g}" if lower is None
                        else f"({lower:g}, {bound:g}]"
                    )
                    lines.append(f"    {label:>12}  {count}")
                lower = bound
            overflow = h["counts"][len(h["bounds"])]
            if overflow:
                lines.append(f"    {'> ' + format(h['bounds'][-1], 'g'):>12}  {overflow}")

    hdr = metrics.get("hdr_histograms", {})
    if hdr:
        lines.append("")
        lines.append("hdr histograms (log-bucketed):")
        for name in sorted(hdr):
            hist = HdrHistogram.from_dict(name, hdr[name])
            low = "—" if hist.min is None else format(hist.min, "g")
            high = "—" if hist.max is None else format(hist.max, "g")
            quantiles = " ".join(
                f"{label}={_quantile_text(hist.quantile(q))}"
                for label, q in REPORT_QUANTILES
            )
            lines.append(
                f"  {name}: n={hist.count} mean={hist.mean:.3f} "
                f"min={low} max={high} {quantiles}"
            )

    spans = report.get("spans", {})
    if spans.get("children"):
        lines.append("")
        lines.append("spans (calls, total seconds):")
        lines.extend(_render_span_tree(spans, depth=0))

    events = report.get("events", {})
    if events:
        lines.append("")
        lines.append(
            f"events: {events.get('recorded', 0)} recorded, "
            f"{events.get('dropped', 0)} dropped"
        )

    tracing = report.get("tracing")
    if tracing is not None:
        lines.append("")
        lines.append(
            f"tracing: {len(tracing.get('episodes', []))} episodes, "
            f"{tracing.get('dropped', 0)} dropped, "
            f"{tracing.get('trimmed', 0)} spans trimmed"
        )
    return "\n".join(lines)


def _quantile_text(value: float | None) -> str:
    """Render a quantile estimate, em-dash when the series is empty."""
    return "—" if value is None else format(float(value), "g")


def _fixed_quantile(h: dict, q: float) -> float | None:
    """Quantile estimate from a fixed-bucket histogram payload.

    The walk finds the bucket holding rank ``ceil(q * n)`` and reports
    its upper bound clamped into the observed ``[min, max]`` — coarse
    (bucket-resolution) but honest for hop-count-shaped series.  Returns
    ``None`` for an empty histogram (the caller renders "—").
    """
    count = h.get("count", 0)
    if not count:
        return None
    target = max(1, ceil(q * count))
    if target >= count and h.get("max") is not None:
        return h["max"]
    if target == 1 and h.get("min") is not None:
        return h["min"]
    seen = 0
    value = None
    for bound, bucket in zip(h["bounds"], h["counts"]):
        seen += bucket
        if seen >= target:
            value = float(bound)
            break
    if value is None:  # target rank sits in the overflow bucket
        value = h["max"] if h["max"] is not None else float(h["bounds"][-1])
    low = h["min"] if h["min"] is not None else value
    high = h["max"] if h["max"] is not None else value
    return min(max(value, low), high)


def _render_batch_routing(counters: dict) -> list[str]:
    """Derived view of the batch-kernel counters (empty when none fired).

    Surfaces what the raw counters only imply: how large the controller's
    restoration buckets were (roots amortized per multi-root kernel call)
    and what fraction of the SHR/candidate computations took the
    vectorized array path rather than the dict implementations.
    """
    lines: list[str] = []
    calls = counters.get("routing.batch.calls", 0)
    if calls:
        roots = counters.get("routing.batch.roots", 0)
        rounds = counters.get("routing.batch.rounds", 0)
        lines.append(
            f"  multi-root SPF: {calls} calls, {roots} roots "
            f"({roots / calls:.1f} roots/call), {rounds} sweep rounds"
        )
    buckets = counters.get("controller.batch.buckets", 0)
    if buckets:
        size = counters.get("controller.batch.bucket_size", 0)
        warmed = counters.get("controller.batch.warmed", 0)
        lines.append(
            f"  restoration buckets: {buckets} "
            f"(mean size {size / buckets:.1f}), {warmed} entries warmed"
        )
    vectorized = counters.get("routing.batch.shr_vectorized", 0) + counters.get(
        "routing.batch.candidates_vectorized", 0
    )
    eligible = counters.get("routing.batch.shr_calls", 0) + counters.get(
        "routing.candidates.batched_searches", 0
    )
    if eligible:
        lines.append(
            f"  vectorization hit-rate: {vectorized}/{eligible} "
            f"({vectorized / eligible:.1%} of SHR + candidate passes)"
        )
    return lines


# ----------------------------------------------------------------------
# OpenMetrics exposition
# ----------------------------------------------------------------------
#: Metric-name prefix for every exported series.
OPENMETRICS_PREFIX = "repro"


def _openmetrics_name(name: str, prefix: str = OPENMETRICS_PREFIX) -> str:
    """Map a dotted repro metric name onto the OpenMetrics charset."""
    cleaned = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    full = f"{prefix}_{cleaned}" if prefix else cleaned
    if full and full[0].isdigit():
        full = "_" + full
    return full


def _openmetrics_value(value) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return format(float(value), "g")


def openmetrics_from_snapshot(
    snapshot: dict, prefix: str = OPENMETRICS_PREFIX
) -> str:
    """Render a :meth:`MetricsRegistry.snapshot` as OpenMetrics text.

    Counters become ``<name>_total`` samples, gauges plain samples, and
    histograms the standard ``_bucket{le=...}`` / ``_sum`` / ``_count``
    series with *cumulative* bucket counts (repro's registry keeps
    per-bucket counts).  The exposition always terminates with ``# EOF``.
    Shared by both ``repro obs export --format openmetrics`` and the
    live :class:`~repro.obs.sinks.OpenMetricsSink` textfile exporter.
    """
    lines: list[str] = []
    for name, value in sorted(snapshot.get("counters", {}).items()):
        om = _openmetrics_name(name, prefix)
        lines.append(f"# TYPE {om} counter")
        lines.append(f"{om}_total {_openmetrics_value(value)}")
    for name, payload in sorted(snapshot.get("gauges", {}).items()):
        om = _openmetrics_name(name, prefix)
        lines.append(f"# TYPE {om} gauge")
        lines.append(f"{om} {_openmetrics_value(payload['value'])}")
    for name, payload in sorted(snapshot.get("histograms", {}).items()):
        om = _openmetrics_name(name, prefix)
        lines.append(f"# TYPE {om} histogram")
        cumulative = 0
        for bound, count in zip(payload["bounds"], payload["counts"]):
            cumulative += count
            lines.append(
                f'{om}_bucket{{le="{_openmetrics_value(float(bound))}"}} '
                f"{cumulative}"
            )
        lines.append(f'{om}_bucket{{le="+Inf"}} {payload["count"]}')
        lines.append(f"{om}_sum {_openmetrics_value(payload['sum'])}")
        lines.append(f"{om}_count {payload['count']}")
    for name, payload in sorted(snapshot.get("hdr_histograms", {}).items()):
        om = _openmetrics_name(name, prefix)
        hist = HdrHistogram.from_dict(name, payload)
        lines.append(f"# TYPE {om} histogram")
        cumulative = hist.zero_count
        if cumulative:
            lines.append(f'{om}_bucket{{le="0"}} {cumulative}')
        for index in sorted(hist.counts):
            cumulative += hist.counts[index]
            upper = hist.growth ** (index + 1)
            lines.append(
                f'{om}_bucket{{le="{_openmetrics_value(upper)}"}} {cumulative}'
            )
        lines.append(f'{om}_bucket{{le="+Inf"}} {hist.count}')
        lines.append(f"{om}_sum {_openmetrics_value(hist.total)}")
        lines.append(f"{om}_count {hist.count}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def render_openmetrics(report: dict, prefix: str = OPENMETRICS_PREFIX) -> str:
    """OpenMetrics exposition of a run report's metrics snapshot."""
    if not isinstance(report, dict) or "metrics" not in report:
        raise ConfigurationError(
            "not a repro run report (missing a 'metrics' section)"
        )
    return openmetrics_from_snapshot(report["metrics"], prefix=prefix)


def _render_span_tree(node: dict, depth: int) -> list[str]:
    lines = []
    for child in node.get("children", []):
        indent = "  " * (depth + 1)
        lines.append(
            f"{indent}{child['name']}: {child['calls']} calls, "
            f"{child['total_s']:.6f}s total, {child['self_s']:.6f}s self"
        )
        lines.extend(_render_span_tree(child, depth + 1))
    return lines
