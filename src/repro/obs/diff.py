"""Run-report diffing for regression triage (``repro obs diff``).

Two captured ``--obs-out`` run reports are compared along the axes that
matter for triaging a regression between two builds or configurations:

- **counter deltas** — algorithm/work counters that changed (a different
  ``recovery.repair.spf_runs`` or ``smrp.joins`` total means behaviour
  changed, not just timing);
- **span-time ratios** — per-span wall-clock of report *b* relative to
  report *a*, aggregated by span name across the whole tree (recursion
  depths sum), so a hot path that got slower stands out;
- **latency-quantile ratios** — p50/p99 of every
  :class:`~repro.obs.registry.HdrHistogram` in report *b* relative to
  report *a*: a tail regression (p99 blew up while the mean held) is
  exactly what mean-based counters hide;
- **event accounting** — recorded/dropped totals side by side.

``repro obs diff a.json b.json --fail-over R`` exits nonzero when any
span-time *or* latency-quantile ratio exceeds ``R``, making the diff
usable as a CI tripwire.
"""

from __future__ import annotations

import math

from repro.errors import ConfigurationError
from repro.obs.registry import HdrHistogram

#: Spans faster than this (seconds) in *both* reports are ignored by the
#: threshold check: ratios of near-zero timings are noise, not signal.
SPAN_NOISE_FLOOR_S = 1e-4

#: Quantiles compared (and gated on) per hdr histogram.
DIFF_QUANTILES: tuple[tuple[str, float], ...] = (("p50", 0.5), ("p99", 0.99))


def span_totals(tree: dict) -> dict[str, tuple[int, float]]:
    """``name -> (calls, total seconds)`` aggregated across a span tree.

    The report-dict counterpart of :meth:`SpanProfiler.totals`: a span
    name appearing at several depths is summed into one row.
    """
    out: dict[str, tuple[int, float]] = {}

    def visit(node: dict) -> None:
        for child in node.get("children", []):
            calls, total = out.get(child["name"], (0, 0.0))
            out[child["name"]] = (
                calls + child.get("calls", 0),
                total + child.get("total_s", 0.0),
            )
            visit(child)

    visit(tree or {})
    return out


def hdr_quantiles(report: dict) -> dict[str, dict[str, float | None]]:
    """``name -> {label: value}`` for every hdr histogram in a report.

    Quantile labels follow :data:`DIFF_QUANTILES`; reports predating the
    hdr section simply yield an empty dict.
    """
    out: dict[str, dict[str, float | None]] = {}
    payloads = report.get("metrics", {}).get("hdr_histograms", {})
    for name in sorted(payloads):
        hist = HdrHistogram.from_dict(name, payloads[name])
        out[name] = {label: hist.quantile(q) for label, q in DIFF_QUANTILES}
    return out


def diff_run_reports(a: dict, b: dict) -> dict:
    """Structured comparison of two run reports.

    Returns::

        {
          "counters":  {name: {"a": .., "b": .., "delta": ..}},   # changed only
          "spans":     {name: {"a_s": .., "b_s": .., "ratio": ..}},
          "quantiles": {"name.p99": {"a": .., "b": .., "ratio": ..}},
          "events":    {"a": {...}, "b": {...}},
        }

    Span ``ratio`` is ``b_s / a_s``; a span absent (or zero) in ``a`` but
    timed in ``b`` gets ``inf``, and one that vanished gets ``0.0``.
    Ratios of spans below :data:`SPAN_NOISE_FLOOR_S` on both sides are
    reported as ``None`` (noise).  Quantile entries compare each hdr
    histogram's :data:`DIFF_QUANTILES` the same way (``None`` when both
    sides are zero or the series is empty on both sides).
    """
    for name, report in (("a", a), ("b", b)):
        if not isinstance(report, dict) or "metrics" not in report:
            raise ConfigurationError(
                f"report {name!r} is not a repro run report"
            )

    counters_a = a["metrics"].get("counters", {})
    counters_b = b["metrics"].get("counters", {})
    counters = {}
    for name in sorted(set(counters_a) | set(counters_b)):
        va, vb = counters_a.get(name, 0), counters_b.get(name, 0)
        if va != vb:
            counters[name] = {"a": va, "b": vb, "delta": vb - va}

    totals_a = span_totals(a.get("spans", {}))
    totals_b = span_totals(b.get("spans", {}))
    spans = {}
    for name in sorted(set(totals_a) | set(totals_b)):
        _, ta = totals_a.get(name, (0, 0.0))
        _, tb = totals_b.get(name, (0, 0.0))
        if ta < SPAN_NOISE_FLOOR_S and tb < SPAN_NOISE_FLOOR_S:
            ratio = None
        elif ta > 0:
            ratio = tb / ta
        else:
            ratio = math.inf if tb > 0 else 0.0
        spans[name] = {"a_s": ta, "b_s": tb, "ratio": ratio}

    quantiles_a = hdr_quantiles(a)
    quantiles_b = hdr_quantiles(b)
    quantiles = {}
    for name in sorted(set(quantiles_a) | set(quantiles_b)):
        for label, _ in DIFF_QUANTILES:
            va = quantiles_a.get(name, {}).get(label)
            vb = quantiles_b.get(name, {}).get(label)
            if va is None and vb is None:
                continue
            va = va or 0.0
            vb = vb or 0.0
            if va > 0:
                ratio = vb / va
            elif vb > 0:
                ratio = math.inf
            else:
                ratio = None  # both zero: nothing to gate on
            quantiles[f"{name}.{label}"] = {"a": va, "b": vb, "ratio": ratio}

    return {
        "counters": counters,
        "spans": spans,
        "quantiles": quantiles,
        "events": {"a": a.get("events", {}), "b": b.get("events", {})},
    }


def max_span_ratio(diff: dict) -> float:
    """The worst span-time ratio in a diff (0.0 when nothing is timed)."""
    ratios = [
        entry["ratio"]
        for entry in diff.get("spans", {}).values()
        if entry.get("ratio") is not None
    ]
    return max(ratios, default=0.0)


def max_quantile_ratio(diff: dict) -> float:
    """The worst latency-quantile ratio (0.0 when no hdr series)."""
    ratios = [
        entry["ratio"]
        for entry in diff.get("quantiles", {}).values()
        if entry.get("ratio") is not None
    ]
    return max(ratios, default=0.0)


def max_regression_ratio(diff: dict) -> float:
    """Worst of the span-time and latency-quantile ratios.

    This is what ``repro obs diff --fail-over`` gates on: a build that
    kept every span flat but doubled a restoration-latency p99 fails
    the same tripwire as one that slowed a hot path.
    """
    return max(max_span_ratio(diff), max_quantile_ratio(diff))


def render_report_diff(diff: dict, threshold: float | None = None) -> str:
    """Human-readable rendering of :func:`diff_run_reports` output."""
    lines: list[str] = []
    counters = diff.get("counters", {})
    if counters:
        lines.append(f"counters changed ({len(counters)}):")
        width = max(len(n) for n in counters)
        for name in sorted(counters):
            entry = counters[name]
            lines.append(
                f"  {name:<{width}}  {entry['a']} -> {entry['b']} "
                f"({entry['delta']:+d})"
            )
    else:
        lines.append("counters: identical")

    spans = diff.get("spans", {})
    timed = {n: e for n, e in spans.items() if e.get("ratio") is not None}
    if timed:
        lines.append("")
        lines.append("span-time ratios (b/a):")
        width = max(len(n) for n in timed)
        for name in sorted(timed, key=lambda n: -(
            timed[n]["ratio"] if math.isfinite(timed[n]["ratio"]) else 1e18
        )):
            entry = timed[name]
            ratio = entry["ratio"]
            shown = "inf" if math.isinf(ratio) else f"{ratio:.2f}x"
            flag = ""
            if threshold is not None and ratio > threshold:
                flag = f"  <-- over --fail-over {threshold:g}"
            lines.append(
                f"  {name:<{width}}  {entry['a_s']:.6f}s -> "
                f"{entry['b_s']:.6f}s  {shown}{flag}"
            )

    quantiles = diff.get("quantiles", {})
    rated = {n: e for n, e in quantiles.items() if e.get("ratio") is not None}
    if rated:
        lines.append("")
        lines.append("latency-quantile ratios (b/a):")
        width = max(len(n) for n in rated)
        for name in sorted(rated, key=lambda n: -(
            rated[n]["ratio"] if math.isfinite(rated[n]["ratio"]) else 1e18
        )):
            entry = rated[name]
            ratio = entry["ratio"]
            shown = "inf" if math.isinf(ratio) else f"{ratio:.2f}x"
            flag = ""
            if threshold is not None and ratio > threshold:
                flag = f"  <-- over --fail-over {threshold:g}"
            lines.append(
                f"  {name:<{width}}  {entry['a']:g} -> "
                f"{entry['b']:g}  {shown}{flag}"
            )

    events = diff.get("events", {})
    ea, eb = events.get("a", {}), events.get("b", {})
    if ea or eb:
        lines.append("")
        lines.append(
            f"events: {ea.get('recorded', 0)} -> {eb.get('recorded', 0)} "
            f"recorded, {ea.get('dropped', 0)} -> {eb.get('dropped', 0)} dropped"
        )
    return "\n".join(lines)
