"""Run-report diffing for regression triage (``repro obs diff``).

Two captured ``--obs-out`` run reports are compared along the axes that
matter for triaging a regression between two builds or configurations:

- **counter deltas** — algorithm/work counters that changed (a different
  ``recovery.repair.spf_runs`` or ``smrp.joins`` total means behaviour
  changed, not just timing);
- **span-time ratios** — per-span wall-clock of report *b* relative to
  report *a*, aggregated by span name across the whole tree (recursion
  depths sum), so a hot path that got slower stands out;
- **event accounting** — recorded/dropped totals side by side.

``repro obs diff a.json b.json --fail-over R`` exits nonzero when any
span-time ratio exceeds ``R``, making the diff usable as a CI tripwire.
"""

from __future__ import annotations

import math

from repro.errors import ConfigurationError

#: Spans faster than this (seconds) in *both* reports are ignored by the
#: threshold check: ratios of near-zero timings are noise, not signal.
SPAN_NOISE_FLOOR_S = 1e-4


def span_totals(tree: dict) -> dict[str, tuple[int, float]]:
    """``name -> (calls, total seconds)`` aggregated across a span tree.

    The report-dict counterpart of :meth:`SpanProfiler.totals`: a span
    name appearing at several depths is summed into one row.
    """
    out: dict[str, tuple[int, float]] = {}

    def visit(node: dict) -> None:
        for child in node.get("children", []):
            calls, total = out.get(child["name"], (0, 0.0))
            out[child["name"]] = (
                calls + child.get("calls", 0),
                total + child.get("total_s", 0.0),
            )
            visit(child)

    visit(tree or {})
    return out


def diff_run_reports(a: dict, b: dict) -> dict:
    """Structured comparison of two run reports.

    Returns::

        {
          "counters": {name: {"a": .., "b": .., "delta": ..}},   # changed only
          "spans":    {name: {"a_s": .., "b_s": .., "ratio": ..}},
          "events":   {"a": {...}, "b": {...}},
        }

    Span ``ratio`` is ``b_s / a_s``; a span absent (or zero) in ``a`` but
    timed in ``b`` gets ``inf``, and one that vanished gets ``0.0``.
    Ratios of spans below :data:`SPAN_NOISE_FLOOR_S` on both sides are
    reported as ``None`` (noise).
    """
    for name, report in (("a", a), ("b", b)):
        if not isinstance(report, dict) or "metrics" not in report:
            raise ConfigurationError(
                f"report {name!r} is not a repro run report"
            )

    counters_a = a["metrics"].get("counters", {})
    counters_b = b["metrics"].get("counters", {})
    counters = {}
    for name in sorted(set(counters_a) | set(counters_b)):
        va, vb = counters_a.get(name, 0), counters_b.get(name, 0)
        if va != vb:
            counters[name] = {"a": va, "b": vb, "delta": vb - va}

    totals_a = span_totals(a.get("spans", {}))
    totals_b = span_totals(b.get("spans", {}))
    spans = {}
    for name in sorted(set(totals_a) | set(totals_b)):
        _, ta = totals_a.get(name, (0, 0.0))
        _, tb = totals_b.get(name, (0, 0.0))
        if ta < SPAN_NOISE_FLOOR_S and tb < SPAN_NOISE_FLOOR_S:
            ratio = None
        elif ta > 0:
            ratio = tb / ta
        else:
            ratio = math.inf if tb > 0 else 0.0
        spans[name] = {"a_s": ta, "b_s": tb, "ratio": ratio}

    return {
        "counters": counters,
        "spans": spans,
        "events": {"a": a.get("events", {}), "b": b.get("events", {})},
    }


def max_span_ratio(diff: dict) -> float:
    """The worst span-time ratio in a diff (0.0 when nothing is timed)."""
    ratios = [
        entry["ratio"]
        for entry in diff.get("spans", {}).values()
        if entry.get("ratio") is not None
    ]
    return max(ratios, default=0.0)


def render_report_diff(diff: dict, threshold: float | None = None) -> str:
    """Human-readable rendering of :func:`diff_run_reports` output."""
    lines: list[str] = []
    counters = diff.get("counters", {})
    if counters:
        lines.append(f"counters changed ({len(counters)}):")
        width = max(len(n) for n in counters)
        for name in sorted(counters):
            entry = counters[name]
            lines.append(
                f"  {name:<{width}}  {entry['a']} -> {entry['b']} "
                f"({entry['delta']:+d})"
            )
    else:
        lines.append("counters: identical")

    spans = diff.get("spans", {})
    timed = {n: e for n, e in spans.items() if e.get("ratio") is not None}
    if timed:
        lines.append("")
        lines.append("span-time ratios (b/a):")
        width = max(len(n) for n in timed)
        for name in sorted(timed, key=lambda n: -(
            timed[n]["ratio"] if math.isfinite(timed[n]["ratio"]) else 1e18
        )):
            entry = timed[name]
            ratio = entry["ratio"]
            shown = "inf" if math.isinf(ratio) else f"{ratio:.2f}x"
            flag = ""
            if threshold is not None and ratio > threshold:
                flag = f"  <-- over --fail-over {threshold:g}"
            lines.append(
                f"  {name:<{width}}  {entry['a_s']:.6f}s -> "
                f"{entry['b_s']:.6f}s  {shown}{flag}"
            )

    events = diff.get("events", {})
    ea, eb = events.get("a", {}), events.get("b", {})
    if ea or eb:
        lines.append("")
        lines.append(
            f"events: {ea.get('recorded', 0)} -> {eb.get('recorded', 0)} "
            f"recorded, {ea.get('dropped', 0)} -> {eb.get('dropped', 0)} dropped"
        )
    return "\n".join(lines)
