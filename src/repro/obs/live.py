"""Live telemetry: streaming observability for in-flight sweeps.

PR 1's run reports are *post-hoc* — one JSON document after the sweep
finishes.  A multi-hour Figure 7–10 sweep with retries and timeouts
(the paper's §4 evaluation shape) is a black box while it runs.  This
module adds the streaming layer: workers emit structured lifecycle
events (scenario started / finished / retried / timed-out / crashed,
plus periodic **heartbeats** carrying the worker's current span-stack
snapshot) multiplexed over the executors' existing result pipes, and
the parent-side :class:`TelemetryHub` aggregates them into rolling
throughput, fault rates, and an ETA, fanning out to pluggable sinks
(:mod:`repro.obs.sinks`): a TTY progress renderer, an append-only
NDJSON flight recorder, and an OpenMetrics textfile exporter.

The hard invariant is that telemetry is **observe-only**: the hub never
touches the caller's :class:`~repro.obs.Observability`, sinks write to
stderr or side files (never stdout), and a raising sink is quarantined
rather than allowed to kill the sweep — golden figures stay
byte-identical with every sink enabled (CI's resilience-smoke job
proves it).

Record format
-------------
Every record is a flat JSON-serializable dict::

    {"v": 1, "t": <unix seconds>, "kind": "<kind>", ...fields}

Kinds and their extra fields:

=================  ====================================================
``sweep.start``    ``total`` (work units in the batch), ``meta``
``scenario.start`` ``index``, ``attempt``, ``pid``, ``key``
``scenario.finish`` ``index``, ``attempt``, ``key``, ``duration_s``,
                   ``cached``?
``scenario.retry`` ``index``, ``attempt`` (next, 0-based), ``key``,
                   ``reason``, ``backoff_s``
``scenario.timeout`` ``index``, ``attempt``, ``key``, ``timeout_s``,
                   ``spans`` (the last heartbeat's span-stack snapshot
                   — hang attribution), ``last_heartbeat_elapsed_s``
``scenario.crash`` ``index``, ``attempt``, ``key``, ``reason``
``scenario.error`` ``index``, ``attempt``, ``key``, ``reason``
``heartbeat``      ``index``, ``attempt``, ``pid``, ``spans``
                   (open span names, outermost first), ``elapsed_s``
``sweep.finish``   ``completed``, ``total``, ``wall_s``, fault counts
``group.restore``  ``group`` (``source:number``), ``protocol``,
                   ``affected``, ``restored``, ``unrecoverable``,
                   ``strategy``, ``latency_s`` — one per multicast
                   group repaired by a controller restoration pass
=================  ====================================================

``key`` is :meth:`~repro.experiments.scenario.ScenarioConfig.content_key`
— the same content hash that names checkpoint entries and seeds trace
episode ids, so a flight-recorder line, a checkpoint row, and a trace
episode for one scenario all join on it.
"""

from __future__ import annotations

import sys
import time

from repro.obs.registry import MetricsRegistry

#: Telemetry record schema marker.
RECORD_VERSION = 1


class TelemetryHub:
    """Parent-side aggregator of live telemetry records.

    Executors call :meth:`begin` / :meth:`publish` / :meth:`forward` /
    :meth:`end` from the parent's scheduling thread (no locking is
    needed — all executors drain telemetry on one thread).  The hub
    keeps two layers of state:

    - **per-batch progress** (total, completed, in-flight, fault counts,
      rolling throughput and ETA) — reset by each :meth:`begin`, read
      back via :meth:`snapshot`;
    - a **cumulative** :class:`~repro.obs.registry.MetricsRegistry`
      (``telemetry.*`` counters / gauges / a per-scenario duration
      histogram) spanning the hub's lifetime — what the OpenMetrics
      sink exports.

    Sinks are fail-safe: a sink that raises is disabled with a stderr
    warning and the sweep continues (telemetry must never take down the
    run it is watching).
    """

    def __init__(
        self,
        sinks=(),
        clock=time.time,
        monotonic=time.monotonic,
        tick_interval: float = 1.0,
    ) -> None:
        self._sinks = list(sinks)
        self._clock = clock
        self._monotonic = monotonic
        self.tick_interval = tick_interval
        self.metrics = MetricsRegistry()
        self._last_tick = 0.0
        self._in_batch = False
        self._closed = False
        self._reset_batch(total=0)

    # ------------------------------------------------------------------
    # Batch lifecycle
    # ------------------------------------------------------------------
    def _reset_batch(self, total: int) -> None:
        self.total = total
        self.completed = 0
        self.cached = 0
        self.retries = 0
        self.timeouts = 0
        self.crashes = 0
        self.errors = 0
        self.heartbeats = 0
        self.started_mono: float | None = None
        #: index -> monotonic start of the live attempt.
        self.in_flight: dict[int, float] = {}
        #: index -> last heartbeat record seen for the live attempt.
        self.last_heartbeat: dict[int, dict] = {}

    def begin(self, total: int, meta: dict | None = None) -> None:
        """Open a batch of ``total`` work units; publishes ``sweep.start``."""
        self._reset_batch(total)
        self.started_mono = self._monotonic()
        self._in_batch = True
        self.publish("sweep.start", total=total, meta=dict(meta or {}))

    def end(self) -> None:
        """Close the batch; publishes ``sweep.finish`` (idempotent)."""
        if not self._in_batch:
            return
        self._in_batch = False
        self.publish(
            "sweep.finish",
            completed=self.completed,
            total=self.total,
            wall_s=round(self._elapsed(), 6),
            retries=self.retries,
            timeouts=self.timeouts,
            crashes=self.crashes,
            errors=self.errors,
        )
        self.tick()

    def close(self) -> None:
        """End any open batch and close every sink (idempotent)."""
        if self._closed:
            return
        self.end()
        self._closed = True
        for sink in list(self._sinks):
            try:
                sink.close()
            except Exception as exc:  # noqa: BLE001 - observe-only
                self._quarantine(sink, exc)

    # ------------------------------------------------------------------
    # Publishing
    # ------------------------------------------------------------------
    def attach(self, sink) -> None:
        self._sinks.append(sink)

    def publish(self, kind: str, **fields) -> dict:
        """Stamp and ingest a parent-originated record."""
        record = {"v": RECORD_VERSION, "t": round(self._clock(), 6), "kind": kind}
        record.update(fields)
        self._ingest(record)
        return record

    def forward(self, record: dict, **extra) -> dict:
        """Ingest a worker-originated record, preserving its timestamp."""
        merged = {"v": RECORD_VERSION}
        merged.update(record)
        merged.update(extra)
        merged.setdefault("t", round(self._clock(), 6))
        self._ingest(merged)
        return merged

    def _ingest(self, record: dict) -> None:
        self._update_stats(record)
        self._fanout("handle", record)
        self.maybe_tick()

    def _update_stats(self, record: dict) -> None:
        kind = record.get("kind")
        index = record.get("index")
        counters = self.metrics.counter
        if kind == "scenario.start":
            counters("telemetry.scenarios.started").inc()
            if index is not None:
                self.in_flight[index] = self._monotonic()
                self.last_heartbeat.pop(index, None)
        elif kind == "scenario.finish":
            self.completed += 1
            counters("telemetry.scenarios.finished").inc()
            if record.get("cached"):
                self.cached += 1
                counters("telemetry.scenarios.cached").inc()
            duration = record.get("duration_s")
            if duration is not None:
                # Latency-shaped: log-bucketed so both a 50ms cached hit
                # and a 5-minute straggler resolve to ~1% quantiles.
                self.metrics.hdr_histogram(
                    "telemetry.scenario_seconds"
                ).observe(duration)
            if index is not None:
                self.in_flight.pop(index, None)
                self.last_heartbeat.pop(index, None)
        elif kind == "scenario.retry":
            self.retries += 1
            counters("telemetry.scenarios.retries").inc()
        elif kind == "scenario.timeout":
            self.timeouts += 1
            counters("telemetry.scenarios.timeouts").inc()
            if index is not None:
                self.in_flight.pop(index, None)
        elif kind == "scenario.crash":
            self.crashes += 1
            counters("telemetry.scenarios.crashes").inc()
            if index is not None:
                self.in_flight.pop(index, None)
        elif kind == "scenario.error":
            self.errors += 1
            counters("telemetry.scenarios.errors").inc()
            if index is not None:
                self.in_flight.pop(index, None)
        elif kind == "heartbeat":
            self.heartbeats += 1
            counters("telemetry.heartbeats").inc()
            if index is not None:
                self.last_heartbeat[index] = record
        elif kind == "group.restore":
            counters("telemetry.groups.restored").inc()
            counters("telemetry.groups.members_restored").inc(
                record.get("restored", 0)
            )
            unrecoverable = record.get("unrecoverable", 0)
            if unrecoverable:
                counters("telemetry.groups.members_unrecoverable").inc(
                    unrecoverable
                )
            latency = record.get("latency_s")
            if latency is not None:
                self.metrics.hdr_histogram(
                    "telemetry.group_restore_latency_s"
                ).observe(latency)

    # ------------------------------------------------------------------
    # Rolling view
    # ------------------------------------------------------------------
    def _elapsed(self) -> float:
        if self.started_mono is None:
            return 0.0
        return max(0.0, self._monotonic() - self.started_mono)

    def snapshot(self) -> dict:
        """Rolling progress view; every derived rate is division-guarded
        so rendering mid-run partial state (zero completed, zero elapsed)
        never divides by zero."""
        elapsed = self._elapsed()
        rate = self.completed / elapsed if elapsed > 0 and self.completed else 0.0
        remaining = max(0, self.total - self.completed)
        eta = remaining / rate if rate > 0 else None
        gauge = self.metrics.gauge
        gauge("telemetry.in_flight").set(len(self.in_flight))
        gauge("telemetry.batch.total").set(self.total)
        gauge("telemetry.batch.completed").set(self.completed)
        gauge("telemetry.throughput_per_s").set(rate)
        if eta is not None:
            gauge("telemetry.eta_s").set(eta)
        return {
            "total": self.total,
            "completed": self.completed,
            "cached": self.cached,
            "in_flight": len(self.in_flight),
            "elapsed_s": elapsed,
            "rate_per_s": rate,
            "eta_s": eta,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "crashes": self.crashes,
            "errors": self.errors,
            "heartbeats": self.heartbeats,
        }

    def maybe_tick(self) -> None:
        """Tick if at least ``tick_interval`` passed since the last one."""
        now = self._monotonic()
        if now - self._last_tick >= self.tick_interval:
            self.tick()

    def tick(self) -> None:
        """Push a rolling snapshot (plus the cumulative metrics) to sinks."""
        self._last_tick = self._monotonic()
        snap = self.snapshot()
        snap["metrics"] = self.metrics.snapshot()
        self._fanout("tick", snap)

    # ------------------------------------------------------------------
    # Sink fan-out (fail-safe)
    # ------------------------------------------------------------------
    def _fanout(self, method: str, payload: dict) -> None:
        for sink in list(self._sinks):
            try:
                getattr(sink, method)(payload)
            except Exception as exc:  # noqa: BLE001 - observe-only
                self._quarantine(sink, exc)

    def _quarantine(self, sink, exc: BaseException) -> None:
        try:
            self._sinks.remove(sink)
        except ValueError:
            pass
        print(
            f"repro telemetry: sink {type(sink).__name__} failed "
            f"({type(exc).__name__}: {exc}); sink disabled",
            file=sys.stderr,
        )

    def __enter__(self) -> "TelemetryHub":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        names = ", ".join(type(s).__name__ for s in self._sinks) or "no sinks"
        return (
            f"TelemetryHub({names}; {self.completed}/{self.total} done, "
            f"{len(self.in_flight)} in flight)"
        )
