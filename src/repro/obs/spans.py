"""Span-based wall-clock profiling.

``with profiler.span("smrp.join"):`` accumulates ``time.perf_counter``
durations into a *hierarchical* timing tree: a span opened while another
is active becomes its child, so one run yields a call-tree with per-node
call counts and total seconds — where did the wall-clock actually go,
tree construction or recovery?

Disabled profilers return one shared no-op context manager, so the hot
path cost of an instrumented block is a method call plus an empty
``with`` — nothing measurable.
"""

from __future__ import annotations

from time import perf_counter


class SpanNode:
    """One node of the timing tree: aggregate over all calls of a span."""

    __slots__ = ("name", "calls", "total", "children")

    def __init__(self, name: str) -> None:
        self.name = name
        self.calls = 0
        self.total = 0.0
        self.children: dict[str, SpanNode] = {}

    @property
    def self_time(self) -> float:
        """Time spent in this span outside any child span."""
        return self.total - sum(c.total for c in self.children.values())

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "calls": self.calls,
            "total_s": self.total,
            "self_s": self.self_time,
            "children": [
                c.to_dict() for _, c in sorted(self.children.items())
            ],
        }

    def __repr__(self) -> str:
        return f"SpanNode({self.name}, calls={self.calls}, total={self.total:.6f}s)"


class _Span:
    """Context manager for one span activation."""

    __slots__ = ("_profiler", "_name", "_start")

    def __init__(self, profiler: "SpanProfiler", name: str) -> None:
        self._profiler = profiler
        self._name = name

    def __enter__(self) -> SpanNode:
        stack = self._profiler._stack
        parent = stack[-1]
        node = parent.children.get(self._name)
        if node is None:
            node = parent.children[self._name] = SpanNode(self._name)
        stack.append(node)
        self._start = perf_counter()
        return node

    def __exit__(self, *exc_info) -> bool:
        elapsed = perf_counter() - self._start
        node = self._profiler._stack.pop()
        node.calls += 1
        node.total += elapsed
        return False


class _NullSpan:
    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class SpanProfiler:
    """Owns the timing tree; nest spans freely (recursion included).

    Examples
    --------
    >>> prof = SpanProfiler()
    >>> with prof.span("outer"):
    ...     with prof.span("inner"):
    ...         pass
    >>> report = prof.report()
    >>> report["children"][0]["children"][0]["name"]
    'inner'
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.root = SpanNode("<root>")
        self._stack: list[SpanNode] = [self.root]

    def span(self, name: str) -> _Span | _NullSpan:
        if not self.enabled:
            return _NULL_SPAN
        return _Span(self, name)

    def report(self) -> dict:
        """The timing tree as nested dicts (root has no timing of its own)."""
        return self.root.to_dict()

    def stack_snapshot(self) -> list[str]:
        """Names of the currently open spans, outermost first.

        Safe to call from another thread (the telemetry heartbeat
        sampler): the stack is copied before reading and a race with a
        concurrent push/pop degrades to an empty snapshot, never an
        exception on the caller.
        """
        try:
            return [node.name for node in list(self._stack)[1:]]
        except Exception:  # pragma: no cover - only under heavy races
            return []

    def merge_report(self, report: dict) -> None:
        """Fold a :meth:`report` tree produced elsewhere into this one.

        Matching span names (position-wise from the root) accumulate
        calls and total seconds; unseen names are grafted in.  Used to
        aggregate per-worker timing trees into the parent run's profile.
        Disabled profilers ignore the merge.
        """
        if not self.enabled:
            return

        def absorb(parent: SpanNode, child_report: dict) -> None:
            name = child_report["name"]
            node = parent.children.get(name)
            if node is None:
                node = parent.children[name] = SpanNode(name)
            node.calls += child_report["calls"]
            node.total += child_report["total_s"]
            for sub in child_report.get("children", []):
                absorb(node, sub)

        for child in report.get("children", []):
            absorb(self.root, child)

    def totals(self) -> dict[str, tuple[int, float]]:
        """``name -> (calls, total seconds)`` aggregated across the tree.

        A span name appearing at several depths (e.g. recursive reshapes)
        is summed into one row.
        """
        out: dict[str, tuple[int, float]] = {}

        def visit(node: SpanNode) -> None:
            for child in node.children.values():
                calls, total = out.get(child.name, (0, 0.0))
                out[child.name] = (calls + child.calls, total + child.total)
                visit(child)

        visit(self.root)
        return out
