"""Telemetry sinks: where live sweep telemetry goes.

Three sinks ship with the hub (:class:`~repro.obs.live.TelemetryHub`);
all implement the same three-method protocol and all are observe-only —
they write to stderr or side files, never stdout, so rendered figure
tables stay byte-identical with every sink enabled:

- :class:`ProgressSink` — a TTY progress line on stderr (``--progress``):
  completed/total, rolling throughput, ETA, fault counts, in-flight;
- :class:`FlightRecorder` — an append-only NDJSON record of every
  telemetry event (``--telemetry-out``), flushed per record so a killed
  run leaves a usable post-mortem; :func:`load_flight_record` tolerates
  a torn trailing record the same way ``CheckpointStore`` does;
- :class:`OpenMetricsSink` — an OpenMetrics textfile (atomically
  replaced) so external scrapers (node-exporter textfile collector,
  a Prometheus file probe) can watch a run (``--openmetrics-out``).

``repro obs tail <flight-record>`` renders a recorded file via
:func:`render_flight_record`.
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

from repro.errors import ConfigurationError


class TelemetrySink:
    """Base sink: every method is an optional no-op hook.

    ``handle(record)`` receives every published telemetry record;
    ``tick(snapshot)`` receives the hub's rolling snapshot (including a
    ``metrics`` registry snapshot) at most once per tick interval;
    ``close()`` releases resources.
    """

    def handle(self, record: dict) -> None:
        pass

    def tick(self, snapshot: dict) -> None:
        pass

    def close(self) -> None:
        pass


# ----------------------------------------------------------------------
# Flight recorder
# ----------------------------------------------------------------------
class FlightRecorder(TelemetrySink):
    """Append-only NDJSON log of every telemetry record.

    Durability mirrors ``CheckpointStore``: one flushed line per record,
    so a killed run loses at most the line being written.  Opening an
    existing file with a torn trailing line (its final newline never hit
    the disk) truncates the tear first, so appends from a new run never
    glue onto it and readers still only ever see whole records.
    """

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if self.path.exists():
            data = self.path.read_bytes()
            if data and not data.endswith(b"\n"):
                keep = data.rfind(b"\n") + 1  # 0 when no newline at all
                with self.path.open("r+b") as fh:
                    fh.truncate(keep)
        self._fh = self.path.open("a", encoding="utf-8")

    def handle(self, record: dict) -> None:
        self._fh.write(json.dumps(record, sort_keys=True, default=str) + "\n")
        self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __repr__(self) -> str:
        return f"FlightRecorder({str(self.path)!r})"


def load_flight_record(path: str | os.PathLike) -> list[dict]:
    """Read a flight record back into dicts.

    A torn *trailing* line (the run was killed mid-append) is skipped;
    malformed records anywhere earlier indicate real damage and raise
    :class:`~repro.errors.ConfigurationError` — the same tolerance rule
    as the checkpoint store.
    """
    raw_lines = Path(path).read_bytes().splitlines()
    records: list[dict] = []
    for lineno, raw in enumerate(raw_lines, start=1):
        last = lineno == len(raw_lines)
        try:
            line = raw.decode("utf-8").strip()
            if not line:
                continue
            record = json.loads(line)
            if not isinstance(record, dict):
                raise ValueError("record is not an object")
        except (UnicodeDecodeError, ValueError) as exc:
            if last:
                break  # torn trailing record from a killed run
            raise ConfigurationError(
                f"{path}:{lineno}: corrupt flight record: {exc}"
            ) from exc
        records.append(record)
    return records


def _describe_record(record: dict) -> str:
    kind = record.get("kind", "?")
    index = record.get("index")
    attempt = record.get("attempt")
    where = f"scenario {index}" if index is not None else "sweep"
    if attempt:
        where += f" (attempt {attempt + 1})"
    if kind == "sweep.start":
        return f"sweep started: {record.get('total', '?')} work units"
    if kind == "sweep.finish":
        return (
            f"sweep finished: {record.get('completed', '?')}/"
            f"{record.get('total', '?')} in {record.get('wall_s', 0):.2f}s"
            f" (retries {record.get('retries', 0)},"
            f" timeouts {record.get('timeouts', 0)},"
            f" crashes {record.get('crashes', 0)},"
            f" errors {record.get('errors', 0)})"
        )
    if kind == "scenario.start":
        pid = record.get("pid")
        return f"{where} started" + (f" [pid {pid}]" if pid else "")
    if kind == "scenario.finish":
        duration = record.get("duration_s")
        took = f" in {duration:.3f}s" if duration is not None else ""
        cached = " (from checkpoint)" if record.get("cached") else ""
        return f"{where} finished{took}{cached}"
    if kind == "heartbeat":
        spans = record.get("spans") or []
        inside = " > ".join(spans) if spans else "(no open span)"
        return f"{where} heartbeat: {inside}"
    if kind == "scenario.timeout":
        spans = record.get("spans") or []
        inside = " > ".join(spans) if spans else "no heartbeat seen"
        return (
            f"{where} TIMED OUT after {record.get('timeout_s', '?')}s; "
            f"last heartbeat inside: {inside}"
        )
    if kind == "scenario.crash":
        return f"{where} CRASHED: {record.get('reason', '?')}"
    if kind == "scenario.error":
        return f"{where} errored: {record.get('reason', '?')}"
    if kind == "scenario.retry":
        return (
            f"{where} retrying after {record.get('reason', '?')} "
            f"(backoff {record.get('backoff_s', 0):g}s)"
        )
    fields = {
        k: v for k, v in record.items() if k not in ("v", "t", "kind")
    }
    return f"{kind}: {fields}" if fields else kind


def render_flight_record(records: list[dict], last: int | None = None) -> str:
    """Human-readable timeline of a flight record (the ``obs tail`` view)."""
    if not records:
        return "flight record: empty"
    lines = [f"flight record: {len(records)} records"]
    t0 = next((r["t"] for r in records if "t" in r), None)
    shown = records[-last:] if last is not None and last >= 0 else records
    if len(shown) < len(records):
        lines.append(f"  ... {len(records) - len(shown)} earlier records elided")
    for record in shown:
        t = record.get("t")
        stamp = f"+{t - t0:9.3f}s" if t is not None and t0 is not None else " " * 10
        lines.append(f"  {stamp}  {_describe_record(record)}")
    by_kind: dict[str, int] = {}
    for record in records:
        kind = record.get("kind", "?")
        by_kind[kind] = by_kind.get(kind, 0) + 1
    summary = ", ".join(f"{k}={by_kind[k]}" for k in sorted(by_kind))
    lines.append(f"record kinds: {summary}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# TTY progress
# ----------------------------------------------------------------------
def _format_eta(seconds: float | None) -> str:
    if seconds is None:
        return "--:--"
    seconds = int(round(seconds))
    if seconds >= 3600:
        return f"{seconds // 3600}:{seconds % 3600 // 60:02}:{seconds % 60:02}"
    return f"{seconds // 60}:{seconds % 60:02}"


class ProgressSink(TelemetrySink):
    """Rolling progress line on stderr.

    On a TTY the line is rewritten in place (``\\r``); elsewhere (CI
    logs, redirects) one full line is printed at a throttled interval so
    logs stay readable.  Nothing is ever written to stdout, keeping
    figure tables byte-identical under ``--progress``.
    """

    def __init__(
        self,
        stream=None,
        min_interval: float | None = None,
        monotonic=time.monotonic,
    ) -> None:
        self._stream = stream if stream is not None else sys.stderr
        self._tty = bool(getattr(self._stream, "isatty", lambda: False)())
        if min_interval is None:
            min_interval = 0.2 if self._tty else 5.0
        self._min_interval = min_interval
        self._monotonic = monotonic
        self._last_render = float("-inf")
        self._width = 0
        self._line_open = False

    def handle(self, record: dict) -> None:
        kind = record.get("kind")
        if kind == "sweep.start":
            self._write_line(
                f"sweep started: {record.get('total', '?')} work units",
                force=True,
            )
        elif kind == "sweep.finish":
            self._write_line(_describe_record(record), force=True)

    def tick(self, snapshot: dict) -> None:
        self._write_line(self._format(snapshot))

    @staticmethod
    def _format(snap: dict) -> str:
        total = snap.get("total", 0)
        completed = snap.get("completed", 0)
        pct = 100.0 * completed / total if total else 0.0
        parts = [
            f"{completed}/{total} ({pct:.0f}%)",
            f"{snap.get('rate_per_s', 0.0):.2f}/s",
            f"eta {_format_eta(snap.get('eta_s'))}",
        ]
        in_flight = snap.get("in_flight", 0)
        if in_flight:
            parts.append(f"in-flight {in_flight}")
        if snap.get("cached"):
            parts.append(f"cached {snap['cached']}")
        faults = [
            f"{name} {snap[name]}"
            for name in ("retries", "timeouts", "crashes", "errors")
            if snap.get(name)
        ]
        if faults:
            parts.append(" ".join(faults))
        return " | ".join(parts)

    def _write_line(self, line: str, force: bool = False) -> None:
        now = self._monotonic()
        if not force and now - self._last_render < self._min_interval:
            return
        self._last_render = now
        if self._tty:
            self._width = max(self._width, len(line))
            self._stream.write("\r" + line.ljust(self._width))
            if force:
                self._stream.write("\n")
                self._width = 0
                self._line_open = False
            else:
                self._line_open = True
        else:
            self._stream.write(line + "\n")
        self._stream.flush()

    def close(self) -> None:
        if self._tty and self._line_open:
            self._stream.write("\n")
            self._stream.flush()
            self._line_open = False


# ----------------------------------------------------------------------
# OpenMetrics textfile exporter
# ----------------------------------------------------------------------
class OpenMetricsSink(TelemetrySink):
    """Atomically rewritten OpenMetrics textfile of the hub's metrics.

    The file is written whole (temp file + ``os.replace``) so a scraper
    never reads a half-written exposition; rewrites are throttled to
    ``min_interval`` except at sweep boundaries and on close, which
    always flush the final state.
    """

    def __init__(
        self,
        path: str | os.PathLike,
        min_interval: float = 1.0,
        monotonic=time.monotonic,
    ) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._min_interval = min_interval
        self._monotonic = monotonic
        self._last_write = float("-inf")
        self._last_metrics: dict | None = None
        self._force = False

    def handle(self, record: dict) -> None:
        if record.get("kind") in ("sweep.start", "sweep.finish"):
            self._force = True

    def tick(self, snapshot: dict) -> None:
        metrics = snapshot.get("metrics")
        if metrics is not None:
            self._last_metrics = metrics
        now = self._monotonic()
        if self._force or now - self._last_write >= self._min_interval:
            self._write()
            self._last_write = now
            self._force = False

    def _write(self) -> None:
        if self._last_metrics is None:
            return
        from repro.obs.export import openmetrics_from_snapshot

        text = openmetrics_from_snapshot(self._last_metrics)
        tmp = self.path.with_name(self.path.name + ".tmp")
        tmp.write_text(text, encoding="utf-8")
        os.replace(tmp, self.path)

    def close(self) -> None:
        self._write()

    def __repr__(self) -> str:
        return f"OpenMetricsSink({str(self.path)!r})"
