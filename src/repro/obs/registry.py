"""The metrics registry: counters, gauges, and histograms.

Everything here is dependency-free and built for two regimes:

- **enabled** — instruments are plain mutable objects updated in place;
  reading them back (``snapshot``) is cheap and allocation happens only
  at registration time, never on the hot path;
- **disabled** — the registry hands out *shared no-op instruments*, so
  instrumented code keeps a single unconditional method call per event
  and pays no branching, formatting, or allocation cost.

Names are dotted strings (``"sim.engine.events_fired"``); per-message-type
series append the type as a final segment (``"sim.msg.sent.JoinReq"``).

Two histogram families coexist on purpose:

- :class:`Histogram` — fixed buckets, for small-integer quantities whose
  interesting edges are known up front (hop counts, §4.3/§4.4);
- :class:`HdrHistogram` — log-spaced buckets with bounded *relative*
  error, for latency-shaped metrics spanning orders of magnitude where
  tail quantiles (p99, p99.9) are the signal.
"""

from __future__ import annotations

from bisect import bisect_left
from math import ceil, floor, log
from typing import Sequence

from repro.errors import ConfigurationError

#: Default histogram bucket upper bounds, tuned for hop counts and other
#: small integer quantities the evaluation reports (§4.3/§4.4).
DEFAULT_BUCKETS: tuple[float, ...] = (1, 2, 3, 4, 6, 8, 12, 16, 24, 32)

#: Default geometric bucket growth for :class:`HdrHistogram`.  Bucket
#: ``i`` spans ``[growth**i, growth**(i+1))`` and reports its geometric
#: midpoint, so the worst-case relative error is ``growth**0.5 - 1`` —
#: just under 1% at 1.02 (~116 buckets per decade).
DEFAULT_HDR_GROWTH: float = 1.02


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A point-in-time value; the high-water mark is kept alongside."""

    __slots__ = ("name", "value", "high_water")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self.high_water = 0.0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.high_water:
            self.high_water = value

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self.value}, hwm={self.high_water})"


class Histogram:
    """Fixed-bucket histogram: ``bounds`` are inclusive upper edges.

    An observation lands in the first bucket whose bound is >= the value;
    anything beyond the last bound goes to the overflow bucket, so
    ``len(counts) == len(bounds) + 1`` and no observation is ever lost.
    """

    __slots__ = ("name", "bounds", "counts", "count", "total", "min", "max")

    def __init__(self, name: str, bounds: Sequence[float] = DEFAULT_BUCKETS) -> None:
        if not bounds or list(bounds) != sorted(bounds):
            raise ConfigurationError(
                f"histogram {name!r} needs ascending non-empty bounds, got {bounds!r}"
            )
        self.name = name
        self.bounds = tuple(float(b) for b in bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def __repr__(self) -> str:
        return f"Histogram({self.name}, n={self.count}, mean={self.mean:.3f})"


class HdrHistogram:
    """Log-bucketed histogram with bounded relative error (HDR-style).

    Positive observations land in geometric buckets
    ``[growth**i, growth**(i+1))`` stored sparsely (``index -> count``);
    non-positive ones collapse into a dedicated zero bucket.  Exact
    ``min``/``max`` are kept alongside, so ``quantile(0)`` and
    ``quantile(1)`` are exact and interior quantiles are off by at most
    a factor of ``growth**0.5`` (the bucket midpoint).

    The derived ``total``/``mean`` are computed from the bucket counts
    in ascending index order — never from a running float sum — so two
    histograms holding the same observations are *identical* regardless
    of observation or merge order.  That is what lets sharded runs merge
    worker histograms and still render byte-identical tables.

    Examples
    --------
    >>> h = HdrHistogram("demo.latency")
    >>> for v in (10, 20, 30, 40, 1000):
    ...     h.observe(v)
    >>> h.count
    5
    >>> h.quantile(1.0)
    1000
    >>> abs(h.quantile(0.5) - 30) / 30 < 0.01
    True
    """

    __slots__ = (
        "name", "growth", "counts", "zero_count", "count", "min", "max",
        "_log_growth",
    )

    def __init__(self, name: str, growth: float = DEFAULT_HDR_GROWTH) -> None:
        if not growth > 1.0:
            raise ConfigurationError(
                f"hdr histogram {name!r} needs growth > 1, got {growth!r}"
            )
        self.name = name
        self.growth = float(growth)
        self._log_growth = log(self.growth)
        self.counts: dict[int, int] = {}
        self.zero_count = 0
        self.count = 0
        self.min: float | None = None
        self.max: float | None = None

    def bucket_index(self, value: float) -> int:
        """Index ``i`` with ``growth**i <= value < growth**(i+1)``."""
        index = floor(log(value) / self._log_growth)
        # Snap float imprecision at bucket boundaries: log() can land a
        # value one bucket off its own edge, which would make indexing
        # (and therefore merged snapshots) platform-dependent.
        if value < self.growth ** index:
            index -= 1
        elif value >= self.growth ** (index + 1):
            index += 1
        return index

    def bucket_value(self, index: int) -> float:
        """The bucket's reported representative (geometric midpoint)."""
        return self.growth ** (index + 0.5)

    def observe(self, value: float) -> None:
        self.count += 1
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if value <= 0.0:
            self.zero_count += 1
            return
        index = self.bucket_index(value)
        self.counts[index] = self.counts.get(index, 0) + 1

    @property
    def total(self) -> float:
        """Approximate sum, derived from bucket counts (order-free)."""
        acc = 0.0
        for index in sorted(self.counts):
            acc += self.counts[index] * self.bucket_value(index)
        return acc

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float | None:
        """The value at rank ``ceil(q * count)``, or ``None`` when empty.

        The walk finds the bucket holding the target rank and reports
        its midpoint, clamped into the exact observed ``[min, max]`` —
        clamping can only move the estimate *within* the found bucket,
        so the relative-error bound survives it.
        """
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError(f"quantile q must be in [0, 1], got {q!r}")
        if not self.count:
            return None
        target = max(1, ceil(q * self.count))
        # The first and last ranks are the exact extrema — return them
        # directly so quantile(0) == min and quantile(1) == max.
        if target >= self.count:
            return self.max
        if target == 1:
            return self.min
        seen = self.zero_count
        if seen >= target:
            value = 0.0
        else:
            value = self.max
            for index in sorted(self.counts):
                seen += self.counts[index]
                if seen >= target:
                    value = self.bucket_value(index)
                    break
        return min(max(value, self.min), self.max)

    # -- serialization and merging --------------------------------------
    def to_dict(self) -> dict:
        """JSON-serializable state; :meth:`from_dict` round-trips it."""
        return {
            "growth": self.growth,
            "counts": [[i, self.counts[i]] for i in sorted(self.counts)],
            "zero_count": self.zero_count,
            "count": self.count,
            "min": self.min,
            "max": self.max,
        }

    @classmethod
    def from_dict(cls, name: str, payload: dict) -> "HdrHistogram":
        hist = cls(name, growth=payload["growth"])
        hist.merge_payload(payload)
        return hist

    def merge_payload(self, payload: dict) -> None:
        """Fold a :meth:`to_dict` produced elsewhere into this one."""
        if float(payload["growth"]) != self.growth:
            raise ConfigurationError(
                f"hdr histogram {self.name!r}: cannot merge growth "
                f"{payload['growth']!r} into {self.growth!r}"
            )
        for index, count in payload.get("counts", []):
            index = int(index)
            self.counts[index] = self.counts.get(index, 0) + count
        self.zero_count += payload.get("zero_count", 0)
        self.count += payload.get("count", 0)
        for attr in ("min", "max"):
            incoming = payload.get(attr)
            if incoming is None:
                continue
            current = getattr(self, attr)
            if (
                current is None
                or (attr == "min" and incoming < current)
                or (attr == "max" and incoming > current)
            ):
                setattr(self, attr, incoming)

    def merge(self, other: "HdrHistogram") -> None:
        self.merge_payload(other.to_dict())

    def __repr__(self) -> str:
        return f"HdrHistogram({self.name}, n={self.count}, mean={self.mean:.3f})"


class _NullCounter:
    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        pass


class _NullGauge:
    __slots__ = ()

    def set(self, value: float) -> None:
        pass


class _NullHistogram:
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


class MetricsRegistry:
    """Creates and owns instruments; disabled registries hand out no-ops.

    Examples
    --------
    >>> reg = MetricsRegistry()
    >>> reg.counter("smrp.joins").inc()
    >>> reg.counter("smrp.joins").value
    1
    >>> MetricsRegistry(enabled=False).counter("smrp.joins").inc()  # no-op
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._hdr_histograms: dict[str, HdrHistogram] = {}

    # ------------------------------------------------------------------
    # Registration (idempotent: same name returns the same instrument)
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        if not self.enabled:
            return _NULL_COUNTER  # type: ignore[return-value]
        instrument = self._counters.get(name)
        if instrument is None:
            self._check_free(
                name, self._gauges, self._histograms, self._hdr_histograms
            )
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        if not self.enabled:
            return _NULL_GAUGE  # type: ignore[return-value]
        instrument = self._gauges.get(name)
        if instrument is None:
            self._check_free(
                name, self._counters, self._histograms, self._hdr_histograms
            )
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(
        self, name: str, bounds: Sequence[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        if not self.enabled:
            return _NULL_HISTOGRAM  # type: ignore[return-value]
        instrument = self._histograms.get(name)
        if instrument is None:
            self._check_free(
                name, self._counters, self._gauges, self._hdr_histograms
            )
            instrument = self._histograms[name] = Histogram(name, bounds)
        elif instrument.bounds != tuple(float(b) for b in bounds):
            raise ConfigurationError(
                f"histogram {name!r} re-registered with different bounds"
            )
        return instrument

    def hdr_histogram(
        self, name: str, growth: float = DEFAULT_HDR_GROWTH
    ) -> HdrHistogram:
        if not self.enabled:
            return _NULL_HISTOGRAM  # type: ignore[return-value]
        instrument = self._hdr_histograms.get(name)
        if instrument is None:
            self._check_free(
                name, self._counters, self._gauges, self._histograms
            )
            instrument = self._hdr_histograms[name] = HdrHistogram(name, growth)
        elif instrument.growth != float(growth):
            raise ConfigurationError(
                f"hdr histogram {name!r} re-registered with different growth"
            )
        return instrument

    @staticmethod
    def _check_free(name: str, *families: dict) -> None:
        if any(name in family for family in families):
            raise ConfigurationError(
                f"metric {name!r} already registered as a different type"
            )

    # ------------------------------------------------------------------
    # Merging (parallel-run fan-in)
    # ------------------------------------------------------------------
    def merge_snapshot(self, snapshot: dict) -> None:
        """Fold a :meth:`snapshot` produced elsewhere into this registry.

        Used to aggregate per-worker metrics into the parent run's
        registry.  Merge semantics per instrument family:

        - **counters** — summed;
        - **gauges** — ``value`` takes the incoming reading (merge order
          is the caller's responsibility), ``high_water`` takes the max;
        - **histograms** — bucket counts, totals, and min/max are
          combined; bounds must match (:class:`ConfigurationError`
          otherwise, same rule as re-registration);
        - **hdr histograms** — sparse bucket counts, zero counts, and
          min/max are combined; growth factors must match.  Because
          their sums are derived from bucket counts (never a running
          float total), merge order cannot perturb any rendered value.

        A disabled registry ignores the merge, mirroring every other
        write path.
        """
        if not self.enabled:
            return
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, payload in snapshot.get("gauges", {}).items():
            gauge = self.gauge(name)
            gauge.set(payload["value"])
            if payload["high_water"] > gauge.high_water:
                gauge.high_water = payload["high_water"]
        for name, payload in snapshot.get("histograms", {}).items():
            hist = self.histogram(name, bounds=payload["bounds"])
            for i, count in enumerate(payload["counts"]):
                hist.counts[i] += count
            hist.count += payload["count"]
            hist.total += payload["sum"]
            for attr in ("min", "max"):
                incoming = payload[attr]
                if incoming is None:
                    continue
                current = getattr(hist, attr)
                if (
                    current is None
                    or (attr == "min" and incoming < current)
                    or (attr == "max" and incoming > current)
                ):
                    setattr(hist, attr, incoming)
        for name, payload in snapshot.get("hdr_histograms", {}).items():
            self.hdr_histogram(name, growth=payload["growth"]).merge_payload(
                payload
            )

    # ------------------------------------------------------------------
    # Reading back
    # ------------------------------------------------------------------
    def counters(self, prefix: str = "") -> dict[str, int]:
        """Counter values, optionally restricted to a dotted prefix."""
        return {
            name: c.value
            for name, c in sorted(self._counters.items())
            if name.startswith(prefix)
        }

    def snapshot(self) -> dict:
        """JSON-serializable view of every instrument."""
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {
                n: {"value": g.value, "high_water": g.high_water}
                for n, g in sorted(self._gauges.items())
            },
            "histograms": {
                n: {
                    "bounds": list(h.bounds),
                    "counts": list(h.counts),
                    "count": h.count,
                    "sum": h.total,
                    "min": h.min,
                    "max": h.max,
                }
                for n, h in sorted(self._histograms.items())
            },
            "hdr_histograms": {
                n: h.to_dict() for n, h in sorted(self._hdr_histograms.items())
            },
        }
