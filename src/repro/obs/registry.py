"""The metrics registry: counters, gauges, and fixed-bucket histograms.

Everything here is dependency-free and built for two regimes:

- **enabled** — instruments are plain mutable objects updated in place;
  reading them back (``snapshot``) is cheap and allocation happens only
  at registration time, never on the hot path;
- **disabled** — the registry hands out *shared no-op instruments*, so
  instrumented code keeps a single unconditional method call per event
  and pays no branching, formatting, or allocation cost.

Names are dotted strings (``"sim.engine.events_fired"``); per-message-type
series append the type as a final segment (``"sim.msg.sent.JoinReq"``).
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Sequence

from repro.errors import ConfigurationError

#: Default histogram bucket upper bounds, tuned for hop counts and other
#: small integer quantities the evaluation reports (§4.3/§4.4).
DEFAULT_BUCKETS: tuple[float, ...] = (1, 2, 3, 4, 6, 8, 12, 16, 24, 32)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A point-in-time value; the high-water mark is kept alongside."""

    __slots__ = ("name", "value", "high_water")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self.high_water = 0.0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.high_water:
            self.high_water = value

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self.value}, hwm={self.high_water})"


class Histogram:
    """Fixed-bucket histogram: ``bounds`` are inclusive upper edges.

    An observation lands in the first bucket whose bound is >= the value;
    anything beyond the last bound goes to the overflow bucket, so
    ``len(counts) == len(bounds) + 1`` and no observation is ever lost.
    """

    __slots__ = ("name", "bounds", "counts", "count", "total", "min", "max")

    def __init__(self, name: str, bounds: Sequence[float] = DEFAULT_BUCKETS) -> None:
        if not bounds or list(bounds) != sorted(bounds):
            raise ConfigurationError(
                f"histogram {name!r} needs ascending non-empty bounds, got {bounds!r}"
            )
        self.name = name
        self.bounds = tuple(float(b) for b in bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def __repr__(self) -> str:
        return f"Histogram({self.name}, n={self.count}, mean={self.mean:.3f})"


class _NullCounter:
    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        pass


class _NullGauge:
    __slots__ = ()

    def set(self, value: float) -> None:
        pass


class _NullHistogram:
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


class MetricsRegistry:
    """Creates and owns instruments; disabled registries hand out no-ops.

    Examples
    --------
    >>> reg = MetricsRegistry()
    >>> reg.counter("smrp.joins").inc()
    >>> reg.counter("smrp.joins").value
    1
    >>> MetricsRegistry(enabled=False).counter("smrp.joins").inc()  # no-op
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    # Registration (idempotent: same name returns the same instrument)
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        if not self.enabled:
            return _NULL_COUNTER  # type: ignore[return-value]
        instrument = self._counters.get(name)
        if instrument is None:
            self._check_free(name, self._gauges, self._histograms)
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        if not self.enabled:
            return _NULL_GAUGE  # type: ignore[return-value]
        instrument = self._gauges.get(name)
        if instrument is None:
            self._check_free(name, self._counters, self._histograms)
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(
        self, name: str, bounds: Sequence[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        if not self.enabled:
            return _NULL_HISTOGRAM  # type: ignore[return-value]
        instrument = self._histograms.get(name)
        if instrument is None:
            self._check_free(name, self._counters, self._gauges)
            instrument = self._histograms[name] = Histogram(name, bounds)
        elif instrument.bounds != tuple(float(b) for b in bounds):
            raise ConfigurationError(
                f"histogram {name!r} re-registered with different bounds"
            )
        return instrument

    @staticmethod
    def _check_free(name: str, *families: dict) -> None:
        if any(name in family for family in families):
            raise ConfigurationError(
                f"metric {name!r} already registered as a different type"
            )

    # ------------------------------------------------------------------
    # Merging (parallel-run fan-in)
    # ------------------------------------------------------------------
    def merge_snapshot(self, snapshot: dict) -> None:
        """Fold a :meth:`snapshot` produced elsewhere into this registry.

        Used to aggregate per-worker metrics into the parent run's
        registry.  Merge semantics per instrument family:

        - **counters** — summed;
        - **gauges** — ``value`` takes the incoming reading (merge order
          is the caller's responsibility), ``high_water`` takes the max;
        - **histograms** — bucket counts, totals, and min/max are
          combined; bounds must match (:class:`ConfigurationError`
          otherwise, same rule as re-registration).

        A disabled registry ignores the merge, mirroring every other
        write path.
        """
        if not self.enabled:
            return
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, payload in snapshot.get("gauges", {}).items():
            gauge = self.gauge(name)
            gauge.set(payload["value"])
            if payload["high_water"] > gauge.high_water:
                gauge.high_water = payload["high_water"]
        for name, payload in snapshot.get("histograms", {}).items():
            hist = self.histogram(name, bounds=payload["bounds"])
            for i, count in enumerate(payload["counts"]):
                hist.counts[i] += count
            hist.count += payload["count"]
            hist.total += payload["sum"]
            for attr in ("min", "max"):
                incoming = payload[attr]
                if incoming is None:
                    continue
                current = getattr(hist, attr)
                if (
                    current is None
                    or (attr == "min" and incoming < current)
                    or (attr == "max" and incoming > current)
                ):
                    setattr(hist, attr, incoming)

    # ------------------------------------------------------------------
    # Reading back
    # ------------------------------------------------------------------
    def counters(self, prefix: str = "") -> dict[str, int]:
        """Counter values, optionally restricted to a dotted prefix."""
        return {
            name: c.value
            for name, c in sorted(self._counters.items())
            if name.startswith(prefix)
        }

    def snapshot(self) -> dict:
        """JSON-serializable view of every instrument."""
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {
                n: {"value": g.value, "high_water": g.high_water}
                for n, g in sorted(self._gauges.items())
            },
            "histograms": {
                n: {
                    "bounds": list(h.bounds),
                    "counts": list(h.counts),
                    "count": h.count,
                    "sum": h.total,
                    "min": h.min,
                    "max": h.max,
                }
                for n, h in sorted(self._histograms.items())
            },
        }
