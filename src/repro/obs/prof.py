"""Self-time profiling: flat profiles and flamegraphs from span trees.

The span profiler (:mod:`repro.obs.spans`) records *inclusive* time: a
``scenario.measure`` span contains every ``smrp.join`` nested under it.
Attributing wall clock therefore needs the **exclusive** (self) view —
``self = total − sum(children.total)`` per node — which this module
derives from a report's span tree:

- :func:`flat_profile` — one row per span name (summed across depths),
  sorted by self time: "where did the wall clock actually go?";
- :func:`collapse_stacks` — Brendan Gregg collapsed-stack lines
  (``a;b;c <µs>``) consumable by ``flamegraph.pl``, speedscope, or any
  flamegraph viewer (``repro obs flame``);
- :func:`render_profile` — the human-readable table behind the CLI's
  ``--profile`` flag, with wall-clock coverage when the caller measured
  the run (the ``prof.run`` span wraps the whole command body, so the
  tree's self-time total matches the measured wall clock).

All functions take the *report dict* form of the tree
(:meth:`SpanProfiler.report` / the ``"spans"`` section of a run report)
so they work on live runs and loaded ``--obs-out`` files alike.
Exclusive times are recomputed from the tree shape rather than read
from the stored ``self_s``, so hand-built or merged trees need not
carry it.

One caveat for parallel runs: worker span trees merge at the *root* of
the parent's tree (:meth:`SpanProfiler.merge_report`), beside — not
inside — the parent's ``prof.run`` span.  Their self time is worker
wall clock, which overlaps the parent's, so a pooled run's self-time
total legitimately exceeds the parent's elapsed time.  Profile serial
runs when attributing single-machine wall clock.
"""

from __future__ import annotations

#: Collapsed-stack weights are integers by convention; microseconds
#: keep sub-millisecond spans visible without floats.
COLLAPSE_SCALE = 1_000_000


def _children(node: dict) -> list:
    return node.get("children", []) if node else []


def _self_s(node: dict) -> float:
    """Exclusive seconds of one tree node (total minus children)."""
    return node.get("total_s", 0.0) - sum(
        child.get("total_s", 0.0) for child in _children(node)
    )


def flat_profile(spans: dict) -> list[dict]:
    """One row per span name: calls, inclusive and exclusive seconds.

    A name appearing at several depths (recursion, or the same span
    reached from different parents) is summed into one row.  Rows are
    sorted by exclusive time, hottest first; ties break on name so the
    order is deterministic.
    """
    rows: dict[str, dict] = {}

    def visit(node: dict) -> None:
        for child in _children(node):
            row = rows.get(child["name"])
            if row is None:
                row = rows[child["name"]] = {
                    "name": child["name"],
                    "calls": 0,
                    "total_s": 0.0,
                    "self_s": 0.0,
                }
            row["calls"] += child.get("calls", 0)
            row["total_s"] += child.get("total_s", 0.0)
            row["self_s"] += _self_s(child)
            visit(child)

    visit(spans or {})
    return sorted(rows.values(), key=lambda row: (-row["self_s"], row["name"]))


def self_time_total(spans: dict) -> float:
    """Sum of exclusive time over the whole tree.

    Self times telescope: every node's children subtract from it and add
    themselves back, so the tree-wide sum equals the sum of the
    top-level spans' inclusive totals.
    """
    return sum(child.get("total_s", 0.0) for child in _children(spans or {}))


def collapse_stacks(spans: dict, scale: int = COLLAPSE_SCALE) -> list[str]:
    """Collapsed-stack lines (``outer;inner <weight>``) of a span tree.

    ``weight`` is the frame's *exclusive* time in ``1/scale`` seconds,
    rounded to an integer; frames that round to zero are dropped (they
    would render as nothing anyway).  Stacks come out in depth-first
    name order — the same order the tree serializes in — so two
    identical trees always collapse to identical lines.
    """
    lines: list[str] = []

    def visit(node: dict, prefix: str) -> None:
        for child in _children(node):
            stack = f"{prefix};{child['name']}" if prefix else child["name"]
            weight = int(round(max(0.0, _self_s(child)) * scale))
            if weight > 0:
                lines.append(f"{stack} {weight}")
            visit(child, stack)

    visit(spans or {}, "")
    return lines


def render_collapsed(spans: dict, scale: int = COLLAPSE_SCALE) -> str:
    """The collapsed-stack profile as one writable text blob."""
    lines = collapse_stacks(spans, scale=scale)
    return "\n".join(lines) + ("\n" if lines else "")


def render_profile(
    spans: dict, wall_s: float | None = None, top: int = 20
) -> str:
    """Human-readable flat profile, hottest self-time first.

    With ``wall_s`` (the caller's measured wall clock) the header states
    how much of it the spans cover — the unattributed remainder is time
    outside any span (imports, argument parsing, rendering).
    """
    rows = flat_profile(spans)
    covered = self_time_total(spans)
    lines = ["self-time profile (exclusive = total - children):"]
    if wall_s is not None and wall_s > 0:
        lines.append(
            f"  wall {wall_s:.3f}s, spans cover {covered:.3f}s "
            f"({covered / wall_s:.1%})"
        )
    else:
        lines.append(f"  spans cover {covered:.3f}s")
    if not rows:
        lines.append("  (no spans recorded)")
        return "\n".join(lines)
    lines.append(
        f"  {'self':>10}  {'%':>6}  {'calls':>8}  {'total':>10}  name"
    )
    for row in rows[:top]:
        share = row["self_s"] / covered if covered > 0 else 0.0
        lines.append(
            f"  {row['self_s']:>9.4f}s  {share:>6.1%}  {row['calls']:>8}  "
            f"{row['total_s']:>9.4f}s  {row['name']}"
        )
    if len(rows) > top:
        rest = sum(row["self_s"] for row in rows[top:])
        lines.append(f"  ... {len(rows) - top} more spans ({rest:.4f}s self)")
    return "\n".join(lines)
