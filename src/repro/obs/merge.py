"""Fan-in of observability state from parallel workers.

The process-parallel execution engine
(:mod:`repro.experiments.exec.executor`) runs each scenario in a worker
process with its own :class:`~repro.obs.Observability`; the worker ships
back a run report (plain JSON-serializable dicts — no live objects cross
the process boundary) and the parent folds it into its own instance so
``--obs-out`` still produces **one** run report for the whole run:

- metric counters sum, gauges keep the max high-water mark, histograms
  combine bucket-wise (:meth:`MetricsRegistry.merge_snapshot`);
- span trees accumulate calls/seconds by name
  (:meth:`SpanProfiler.merge_report`);
- event accounting (recorded/dropped totals) is absorbed without shipping
  the event records themselves (:meth:`EventLog.absorb_counts`);
- restoration-trace episodes append and their drop/trim counts **sum**
  (:meth:`~repro.obs.tracing.RestorationTracer.absorb`) — the parent ends
  up with exactly the episode set a serial run would have produced.

Merging is deterministic when reports are folded in a deterministic
order; the executors merge in seed order regardless of completion order.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Sequence

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs import Observability


def merge_report_into(obs: "Observability", report: dict) -> None:
    """Fold one worker run report into ``obs`` in place.

    Accepts any dict shaped like :func:`repro.obs.export.build_run_report`
    output; missing sections are skipped so partial worker payloads
    (e.g. metrics-only) merge cleanly.
    """
    if not isinstance(report, dict):
        raise ConfigurationError(
            f"worker report must be a dict, got {type(report).__name__}"
        )
    metrics = report.get("metrics")
    if metrics is not None:
        obs.metrics.merge_snapshot(metrics)
    spans = report.get("spans")
    if spans is not None:
        obs.spans.merge_report(spans)
    events = report.get("events")
    if events is not None:
        obs.events.absorb_counts(
            events.get("recorded", 0), events.get("dropped", 0)
        )
    tracing = report.get("tracing")
    if tracing is not None:
        tracer = getattr(obs, "tracer", None)
        if tracer is not None:
            # Episodes append in merge (= seed) order; drop counts sum.
            tracer.absorb(tracing)


def merge_reports_into(obs: "Observability", reports: Iterable[dict]) -> int:
    """Fold many worker reports into ``obs``; returns how many merged."""
    merged = 0
    for report in reports:
        merge_report_into(obs, report)
        merged += 1
    return merged


def merge_run_reports(reports: Sequence[dict], meta: dict | None = None) -> dict:
    """Combine standalone run reports into one fresh report document.

    The report-level counterpart of :func:`merge_report_into`, for
    aggregating already-written ``--obs-out`` artifacts after the fact.
    """
    from repro.obs import Observability
    from repro.obs.export import build_run_report

    combined = Observability()
    merge_reports_into(combined, reports)
    merged_meta = {"merged_reports": len(reports)}
    merged_meta.update(meta or {})
    return build_run_report(combined, meta=merged_meta)
