"""Observability: metrics, span profiling, and structured run artifacts.

The paper's evaluation is entirely empirical — recovery latency, message
overhead (§4.4), tree cost — so this package makes those quantities
first-class measured outputs of any run instead of ad-hoc return values:

- :class:`MetricsRegistry` — counters, gauges, fixed-bucket histograms
  (hop counts), and log-bucketed :class:`HdrHistogram` quantile trackers
  for latency-shaped metrics;
- :class:`SpanProfiler` — hierarchical ``perf_counter`` timing tree;
- :class:`EventLog` — bounded structured events, exportable as JSONL;
- run reports — one JSON document per run (``repro obs report`` renders it).

The :class:`Observability` facade bundles the three and is what the
instrumented layers accept (``obs=`` keyword).  Passing nothing means the
module-level :data:`NULL_OBS` is used: every instrument is a shared no-op
object, so disabled instrumentation costs one attribute access and an
empty call per event — nothing measurable on the hot paths
(``benchmarks/test_micro_obs_overhead.py`` guards this).

Examples
--------
>>> obs = Observability()
>>> with obs.span("demo.work"):
...     obs.counter("demo.widgets").inc(3)
>>> obs.metrics.counters("demo.")
{'demo.widgets': 3}
>>> report = obs.run_report(meta={"title": "demo"})
>>> report["metrics"]["counters"]["demo.widgets"]
3
"""

from __future__ import annotations

from repro.obs.diff import (
    diff_run_reports,
    hdr_quantiles,
    max_quantile_ratio,
    max_regression_ratio,
    max_span_ratio,
    render_report_diff,
    span_totals,
)
from repro.obs.events import DEFAULT_MAX_EVENTS, EventLog, load_jsonl, read_jsonl
from repro.obs.export import (
    OPENMETRICS_PREFIX,
    REPORT_VERSION,
    build_run_report,
    load_run_report,
    openmetrics_from_snapshot,
    render_openmetrics,
    render_run_report,
    write_run_report,
)
from repro.obs.live import RECORD_VERSION, TelemetryHub
from repro.obs.sinks import (
    FlightRecorder,
    OpenMetricsSink,
    ProgressSink,
    TelemetrySink,
    load_flight_record,
    render_flight_record,
)
from repro.obs.merge import (
    merge_report_into,
    merge_reports_into,
    merge_run_reports,
)
from repro.obs.prof import (
    collapse_stacks,
    flat_profile,
    render_collapsed,
    render_profile,
    self_time_total,
)
from repro.obs.registry import (
    DEFAULT_BUCKETS,
    DEFAULT_HDR_GROWTH,
    Counter,
    Gauge,
    HdrHistogram,
    Histogram,
    MetricsRegistry,
)
from repro.obs.spans import SpanNode, SpanProfiler
from repro.obs.tracing import (
    Episode,
    RestorationTracer,
    TraceAnalyzer,
    TraceSpan,
    chrome_trace_document,
    critical_path,
    episodes_from_chrome,
    read_trace_ndjson,
    validate_episode,
    write_chrome_trace,
    write_trace_ndjson,
)


class Observability:
    """Facade bundling a registry, a span profiler, and an event log.

    ``tracer`` is the optional fourth instrument: a
    :class:`~repro.obs.tracing.RestorationTracer` collecting causal
    restoration episodes in simulated time.  It defaults to ``None`` —
    unlike the always-present metrics/spans/events, tracing is attached
    explicitly (``--trace-out``) and instrumented code guards on
    ``obs.tracer is not None``.
    """

    __slots__ = ("enabled", "metrics", "spans", "events", "tracer")

    def __init__(
        self,
        enabled: bool = True,
        max_events: int | None = DEFAULT_MAX_EVENTS,
        tracer: "RestorationTracer | None" = None,
    ) -> None:
        self.enabled = enabled
        self.metrics = MetricsRegistry(enabled=enabled)
        self.spans = SpanProfiler(enabled=enabled)
        self.events = EventLog(enabled=enabled, max_records=max_events)
        self.tracer = tracer

    # -- delegation shorthands ------------------------------------------
    def counter(self, name: str):
        return self.metrics.counter(name)

    def gauge(self, name: str):
        return self.metrics.gauge(name)

    def histogram(self, name: str, bounds=DEFAULT_BUCKETS):
        return self.metrics.histogram(name, bounds)

    def hdr_histogram(self, name: str, growth=DEFAULT_HDR_GROWTH):
        return self.metrics.hdr_histogram(name, growth)

    def span(self, name: str):
        return self.spans.span(name)

    def emit(self, kind: str, **fields) -> None:
        self.events.emit(kind, **fields)

    def run_report(self, meta: dict | None = None) -> dict:
        return build_run_report(self, meta)


#: Shared disabled instance; ``obs or NULL_OBS`` is the idiom for optional
#: instrumentation parameters.
NULL_OBS = Observability(enabled=False)

__all__ = [
    "Observability",
    "NULL_OBS",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "HdrHistogram",
    "DEFAULT_BUCKETS",
    "DEFAULT_HDR_GROWTH",
    "SpanProfiler",
    "SpanNode",
    # Self-time profiling (repro.obs.prof)
    "flat_profile",
    "self_time_total",
    "collapse_stacks",
    "render_collapsed",
    "render_profile",
    "EventLog",
    "DEFAULT_MAX_EVENTS",
    "read_jsonl",
    "load_jsonl",
    "REPORT_VERSION",
    "build_run_report",
    "write_run_report",
    "load_run_report",
    "render_run_report",
    "merge_report_into",
    "merge_reports_into",
    "merge_run_reports",
    # Live telemetry (repro.obs.live / repro.obs.sinks)
    "RECORD_VERSION",
    "TelemetryHub",
    "TelemetrySink",
    "ProgressSink",
    "FlightRecorder",
    "OpenMetricsSink",
    "load_flight_record",
    "render_flight_record",
    # OpenMetrics export
    "OPENMETRICS_PREFIX",
    "openmetrics_from_snapshot",
    "render_openmetrics",
    # Run-report diffing
    "diff_run_reports",
    "hdr_quantiles",
    "max_quantile_ratio",
    "max_regression_ratio",
    "max_span_ratio",
    "render_report_diff",
    "span_totals",
    # Causal restoration tracing (repro.obs.tracing)
    "RestorationTracer",
    "Episode",
    "TraceSpan",
    "TraceAnalyzer",
    "critical_path",
    "validate_episode",
    "read_trace_ndjson",
    "write_trace_ndjson",
    "chrome_trace_document",
    "write_chrome_trace",
    "episodes_from_chrome",
]
