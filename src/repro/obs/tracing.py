"""Causal restoration tracing in *simulated* time.

The rest of :mod:`repro.obs` measures the reproduction itself (wall-clock
spans, Python counters).  This module measures the *modelled system*: it
records what the paper's §4.3 restoration latency is made of.  Every
injected failure opens an **episode** — a tree of spans on the simulated
clock — and every protocol action that contributes to restoring service
(failure detection, unicast re-convergence, candidate search, graft
signaling hop by hop, tree reshaping) appends a child span carrying
``(episode_id, parent_span_id, sim_time_start/end, node, phase, payload)``.

Episodes come from three origins:

``measure``
    The closed-form worst-case measurement path
    (:func:`repro.core.recovery.local_detour_recovery` /
    ``global_detour_recovery``): spans are synthesized from the same
    latency model as :func:`~repro.core.recovery.estimate_restoration_latency`,
    so the episode's critical path sums *exactly* to the reported
    restoration latency.
``repair``
    :func:`repro.core.recovery.repair_tree` (and the hierarchical layers
    that call it) emits one episode per member it actually re-attaches.
``des``
    The discrete-event simulation opens an episode when a node detects
    the loss of its upstream and closes it when service is restored;
    message hops observed by :class:`~repro.sim.network.SimNetwork`
    appear as ``signal.hop`` children with real simulated send/receive
    times.

The **critical path** of an episode is the chain of spans whose sim-time
durations sum to the episode's total latency: starting from the root,
a span is replaced by its children whenever they tile its interval
exactly (each child starting where the previous ended).  Phase
attribution over critical paths is what :class:`TraceAnalyzer` reports.

Tracing is observe-only by contract: enabling it never changes computed
results, rendered tables, or RNG state.  All identifiers are derived
from scenario content keys and per-scenario sequence numbers — never
from wall clocks or pids — so serial, process-parallel, and resilient
runs produce byte-identical trace files and analyses.
"""

from __future__ import annotations

import json
import math
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.errors import ConfigurationError

#: Schema marker for trace files (NDJSON and Chrome JSON ``otherData``).
TRACE_VERSION = 1

#: Relative tolerance for sim-time comparisons (tiling, nesting).
_EPS = 1e-9

#: The root span of every episode uses this phase name.
ROOT_PHASE = "episode"

#: Default bound on retained episodes; beyond it new episodes are dropped
#: (and counted), mirroring the bounded event log.
DEFAULT_MAX_EPISODES = 100_000


def _close_enough(a: float, b: float) -> bool:
    return abs(a - b) <= _EPS * max(1.0, abs(a), abs(b))


@dataclass
class TraceSpan:
    """One causally-linked span on the simulated clock."""

    span_id: int
    parent_id: int  # -1 marks the episode root
    phase: str
    node: int
    start: float
    end: float
    payload: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_dict(self) -> dict:
        return {
            "id": self.span_id,
            "parent": self.parent_id,
            "phase": self.phase,
            "node": self.node,
            "start": self.start,
            "end": self.end,
            "payload": self.payload,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "TraceSpan":
        return cls(
            span_id=payload["id"],
            parent_id=payload["parent"],
            phase=payload["phase"],
            node=payload["node"],
            start=payload["start"],
            end=payload["end"],
            payload=dict(payload.get("payload", {})),
        )


@dataclass
class Episode:
    """One restoration episode: a span tree for one member's recovery.

    ``spans[0]`` is the root (phase :data:`ROOT_PHASE`, ``parent_id=-1``);
    its interval covers the whole restoration and its duration *is* the
    episode's restoration latency.
    """

    episode_id: str
    scenario_key: str
    member: int
    strategy: str  # "local" | "global"
    origin: str  # "measure" | "repair" | "des"
    failure: str
    outcome: str = "restored"  # | "already_connected" | "unrecoverable" | "incomplete"
    spans: list[TraceSpan] = field(default_factory=list)

    @classmethod
    def new(
        cls,
        episode_id: str,
        scenario_key: str,
        member: int,
        strategy: str,
        origin: str,
        failure: str,
        start: float,
        outcome: str = "restored",
    ) -> "Episode":
        episode = cls(
            episode_id=episode_id,
            scenario_key=scenario_key,
            member=member,
            strategy=strategy,
            origin=origin,
            failure=failure,
            outcome=outcome,
        )
        episode.spans.append(
            TraceSpan(span_id=0, parent_id=-1, phase=ROOT_PHASE, node=member,
                      start=start, end=start)
        )
        return episode

    @property
    def root(self) -> TraceSpan:
        return self.spans[0]

    @property
    def start(self) -> float:
        return self.root.start

    @property
    def end(self) -> float:
        return self.root.end

    @property
    def latency(self) -> float:
        """Restoration latency in simulated time units."""
        return self.root.end - self.root.start

    def add(
        self,
        phase: str,
        node: int,
        start: float,
        end: float,
        parent: int = 0,
        payload: dict | None = None,
    ) -> int:
        """Append a child span; returns its span id."""
        span_id = len(self.spans)
        self.spans.append(
            TraceSpan(span_id=span_id, parent_id=parent, phase=phase,
                      node=node, start=start, end=end,
                      payload=dict(payload or {}))
        )
        return span_id

    def close(self, end: float) -> None:
        """Set the root interval's end (the restoration time)."""
        self.root.end = end

    def children(self, parent_id: int) -> list[TraceSpan]:
        kids = [s for s in self.spans if s.parent_id == parent_id]
        kids.sort(key=lambda s: (s.start, s.end, s.span_id))
        return kids

    def to_dict(self) -> dict:
        return {
            "id": self.episode_id,
            "scenario": self.scenario_key,
            "member": self.member,
            "strategy": self.strategy,
            "origin": self.origin,
            "failure": self.failure,
            "outcome": self.outcome,
            "spans": [s.to_dict() for s in self.spans],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Episode":
        try:
            episode = cls(
                episode_id=payload["id"],
                scenario_key=payload.get("scenario", ""),
                member=payload["member"],
                strategy=payload["strategy"],
                origin=payload.get("origin", ""),
                failure=payload.get("failure", ""),
                outcome=payload.get("outcome", "restored"),
                spans=[TraceSpan.from_dict(s) for s in payload.get("spans", [])],
            )
        except (KeyError, TypeError) as exc:
            raise ConfigurationError(f"malformed trace episode: {exc}") from exc
        if not episode.spans:
            raise ConfigurationError(
                f"trace episode {episode.episode_id!r} has no spans"
            )
        return episode


# ----------------------------------------------------------------------
# Critical path and validation
# ----------------------------------------------------------------------
def _tiles_exactly(span: TraceSpan, kids: Sequence[TraceSpan]) -> bool:
    """True when ``kids`` partition ``span``'s interval with no gaps."""
    if not kids:
        return False
    if not _close_enough(kids[0].start, span.start):
        return False
    cursor = kids[0].start
    for kid in kids:
        if not _close_enough(kid.start, cursor):
            return False
        if kid.end < kid.start - _EPS:
            return False
        cursor = kid.end
    return _close_enough(cursor, span.end)


def critical_path(episode: Episode) -> list[TraceSpan]:
    """The chain of spans whose sim-time durations sum to the latency.

    Starting at the root, a span is refined into its children whenever
    they tile its interval exactly; spans whose children leave gaps
    (e.g. a DES ``repair`` window with sparse message hops inside) stay
    unrefined, so the returned chain always covers ``[start, end]``
    contiguously and its durations sum to :attr:`Episode.latency`.
    """

    def refine(span: TraceSpan) -> list[TraceSpan]:
        kids = episode.children(span.span_id)
        if _tiles_exactly(span, kids):
            out: list[TraceSpan] = []
            for kid in kids:
                out.extend(refine(kid))
            return out
        return [span]

    return refine(episode.root)


def validate_episode(episode: Episode) -> list[str]:
    """Structural and causal invariant violations (empty = valid)."""
    problems: list[str] = []
    eid = episode.episode_id
    roots = [s for s in episode.spans if s.parent_id == -1]
    if len(roots) != 1 or episode.spans[0].parent_id != -1:
        problems.append(f"{eid}: expected exactly one root span first")
        return problems
    if episode.root.phase != ROOT_PHASE:
        problems.append(f"{eid}: root phase is {episode.root.phase!r}")
    by_id = {s.span_id: s for s in episode.spans}
    if len(by_id) != len(episode.spans):
        problems.append(f"{eid}: duplicate span ids")
    for span in episode.spans:
        if span.end < span.start - _EPS:
            problems.append(
                f"{eid}: span {span.span_id} ({span.phase}) ends before it starts"
            )
        if span.parent_id == -1:
            continue
        parent = by_id.get(span.parent_id)
        if parent is None:
            problems.append(
                f"{eid}: span {span.span_id} has unknown parent {span.parent_id}"
            )
            continue
        if span.start < parent.start - _EPS or span.end > parent.end + _EPS:
            problems.append(
                f"{eid}: span {span.span_id} ({span.phase}) "
                f"[{span.start:g}, {span.end:g}] escapes parent "
                f"{parent.span_id} ({parent.phase}) "
                f"[{parent.start:g}, {parent.end:g}]"
            )
    path = critical_path(episode)
    total = math.fsum(s.duration for s in path)
    if not _close_enough(total, episode.latency):
        problems.append(
            f"{eid}: critical path sums to {total:g}, latency is "
            f"{episode.latency:g}"
        )
    return problems


# ----------------------------------------------------------------------
# The tracer
# ----------------------------------------------------------------------
class _OpenEpisode:
    """Handle for an episode whose end is not yet known (DES origin)."""

    __slots__ = ("episode", "_open_span_ids")

    def __init__(self, episode: Episode) -> None:
        self.episode = episode
        self._open_span_ids: list[int] = []

    def child(
        self,
        phase: str,
        node: int,
        start: float,
        end: float,
        parent: int = 0,
        payload: dict | None = None,
    ) -> int:
        return self.episode.add(phase, node, start, end, parent, payload)

    def open_phase(
        self, phase: str, node: int, start: float, payload: dict | None = None
    ) -> int:
        """Start a span whose end is filled in when the episode closes."""
        span_id = self.episode.add(phase, node, start, start, 0, payload)
        self._open_span_ids.append(span_id)
        return span_id

    def current_phase(self) -> int:
        """Span id new children should parent to (latest open phase, else
        the episode root)."""
        return self._open_span_ids[-1] if self._open_span_ids else 0

    def instant(
        self, phase: str, node: int, at: float, payload: dict | None = None,
        parent: int = 0,
    ) -> int:
        return self.episode.add(phase, node, at, at, parent, payload)

    def finalize(self, end: float, outcome: str) -> int:
        """Close the episode at ``end``; returns how many spans were
        trimmed (spans extending past the restoration time — e.g. message
        hops still in flight — are discarded so nesting stays valid)."""
        episode = self.episode
        for span_id in self._open_span_ids:
            episode.spans[span_id].end = end
        self._open_span_ids.clear()
        episode.close(end)
        episode.outcome = outcome
        kept = [episode.spans[0]]
        dropped_ids: set[int] = set()
        for span in episode.spans[1:]:
            if span.end > end + _EPS or span.parent_id in dropped_ids:
                dropped_ids.add(span.span_id)
            else:
                kept.append(span)
        trimmed = len(episode.spans) - len(kept)
        episode.spans = kept
        return trimmed


class RestorationTracer:
    """Collects restoration episodes; bounded, mergeable, deterministic.

    One tracer lives on the :class:`~repro.obs.Observability` facade
    (``obs.tracer``).  Worker processes ship their episodes home inside
    the run report's ``tracing`` section; :func:`absorb` folds them in
    with *summed* drop accounting, so parallel and resilient executors
    produce exactly the episodes a serial run would.
    """

    def __init__(self, max_episodes: int | None = DEFAULT_MAX_EPISODES) -> None:
        if max_episodes is not None and max_episodes <= 0:
            raise ConfigurationError(
                f"max_episodes must be positive, got {max_episodes}"
            )
        self.episodes: list[Episode] = []
        self.max_episodes = max_episodes
        #: Episodes discarded because the bound was reached (sums on merge).
        self.dropped = 0
        #: Spans discarded when closing an episode (e.g. hops in flight).
        self.trimmed = 0
        #: Episodes opened but discarded (superseded or unrecoverable DES).
        self.abandoned = 0
        self.scenario_key = ""
        self._seq = 0
        self._origin = ""
        self._clock: Callable[[], float] | None = None
        self._open: dict[int, _OpenEpisode] = {}
        #: base episode id -> times emitted, for collision renaming when
        #: the same scenario config runs more than once in a batch (the
        #: quick figures grid shares points across figures 8-10).
        self._seen: dict[str, int] = {}

    # -- identity and context -------------------------------------------
    def begin_scenario(self, key: str) -> None:
        """Bind subsequent episodes to a scenario content key.

        Resets the per-scenario sequence counter so episode ids depend
        only on (scenario key, emission order) — identical in serial and
        worker processes.
        """
        self.scenario_key = key
        self._seq = 0

    def next_episode_id(self, member: int, strategy: str) -> str:
        seq = self._seq
        self._seq += 1
        key = self.scenario_key or "adhoc"
        return f"ep-{key}-{seq:06d}-{strategy}-{member}"

    @contextmanager
    def origin(self, name: str):
        """Label episodes opened in this context with ``origin=name``."""
        previous = self._origin
        self._origin = name
        try:
            yield
        finally:
            self._origin = previous

    def current_origin(self, default: str) -> str:
        return self._origin or default

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Attach a simulated-time source (used by ambient instants)."""
        self._clock = clock

    def now(self) -> float | None:
        return self._clock() if self._clock is not None else None

    # -- closed-form episodes (measure / repair origins) ----------------
    def emit(self, episode: Episode) -> None:
        """Record a fully-built episode (bounded; drops count).

        Re-runs of the same scenario config produce the same base episode
        ids; the second and later emissions are renamed ``<id>#<n>`` so
        ids stay unique across a batch.  Episodes arrive in seed order in
        every executor (serial emits in run order, parallel/resilient
        merge worker reports by batch index), so the renaming — and with
        it the trace file — is identical regardless of how the batch ran.
        """
        if (
            self.max_episodes is not None
            and len(self.episodes) >= self.max_episodes
        ):
            self.dropped += 1
            return
        count = self._seen.get(episode.episode_id, 0)
        self._seen[episode.episode_id] = count + 1
        if count:
            episode.episode_id = f"{episode.episode_id}#{count}"
        self.episodes.append(episode)

    # -- open episodes (DES origin) -------------------------------------
    def open(
        self,
        member: int,
        strategy: str,
        failure: str,
        start: float,
        origin: str = "des",
    ) -> _OpenEpisode:
        """Open an episode whose end arrives later (service restoration)."""
        stale = self._open.pop(member, None)
        if stale is not None:
            self.abandoned += 1
        episode = Episode.new(
            self.next_episode_id(member, strategy),
            self.scenario_key,
            member,
            strategy,
            self.current_origin(origin),
            failure,
            start,
        )
        handle = _OpenEpisode(episode)
        self._open[member] = handle
        return handle

    def open_for(self, member: int) -> _OpenEpisode | None:
        return self._open.get(member)

    def close(self, member: int, end: float, outcome: str = "restored") -> None:
        handle = self._open.pop(member, None)
        if handle is None:
            return
        self.trimmed += handle.finalize(end, outcome)
        self.emit(handle.episode)

    def abandon(self, member: int) -> None:
        if self._open.pop(member, None) is not None:
            self.abandoned += 1

    def finalize(self, at: float | None = None) -> None:
        """Close any still-open episodes as ``incomplete``.

        ``at`` defaults to each episode's latest span end — an episode
        whose member never saw service restored still exports with its
        observed activity window.
        """
        for member in sorted(self._open):
            handle = self._open[member]
            end = at
            if end is None:
                end = max(s.end for s in handle.episode.spans)
            self._open.pop(member)
            self.trimmed += handle.finalize(end, "incomplete")
            self.emit(handle.episode)

    def ambient_instant(
        self, phase: str, node: int, payload: dict | None = None
    ) -> None:
        """Record an instant span into whichever episode is open.

        Attributed to the open episode for ``node`` when there is one,
        else to the most recently opened episode (e.g. a reshape pass
        touching a relay while a member's recovery is in progress).
        No-op when nothing is open or no simulated clock is bound.
        """
        handle = self._open.get(node)
        if handle is None and self._open:
            handle = self._open[next(reversed(self._open))]
        if handle is None:
            return
        at = self.now()
        if at is None:
            at = handle.episode.root.end
        handle.instant(phase, node, at, payload)

    # -- merge / report --------------------------------------------------
    def report(self) -> dict:
        """JSON-serializable payload for the run report's ``tracing``
        section (consumed by :func:`absorb` in the parent process)."""
        return {
            "version": TRACE_VERSION,
            "episodes": [e.to_dict() for e in self.episodes],
            "dropped": self.dropped,
            "trimmed": self.trimmed,
            "abandoned": self.abandoned,
        }

    def absorb(self, payload: dict) -> None:
        """Fold a worker's ``tracing`` report section into this tracer.

        Drop/trim/abandon counts **sum** across workers (a last-write-win
        here would silently under-report loss — the same bug class as the
        ``Trace.dropped`` merge fixed alongside this module).
        """
        for episode in payload.get("episodes", []):
            self.emit(Episode.from_dict(episode))
        self.dropped += payload.get("dropped", 0)
        self.trimmed += payload.get("trimmed", 0)
        self.abandoned += payload.get("abandoned", 0)


# ----------------------------------------------------------------------
# Analysis
# ----------------------------------------------------------------------
@dataclass
class PhaseStat:
    """Aggregate of one phase's critical-path spans."""

    count: int = 0
    total: float = 0.0

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class TraceAnalyzer:
    """Per-phase latency breakdowns and distributions over episodes.

    Episodes are sorted by id before aggregation, so the analysis is a
    pure function of the episode *set* — independent of executor kind,
    merge order, or file line order.
    """

    def __init__(self, episodes: Iterable[Episode]) -> None:
        self.episodes = sorted(episodes, key=lambda e: e.episode_id)

    def _measurable(self) -> list[Episode]:
        return [
            e for e in self.episodes
            if e.outcome in ("restored", "already_connected")
        ]

    def latency_stats(self) -> dict[str, dict]:
        """Per-strategy restoration latency distribution."""
        stats: dict[str, dict] = {}
        for episode in self._measurable():
            entry = stats.setdefault(
                episode.strategy,
                {"count": 0, "total": 0.0, "min": None, "max": None},
            )
            latency = episode.latency
            entry["count"] += 1
            entry["total"] += latency
            if entry["min"] is None or latency < entry["min"]:
                entry["min"] = latency
            if entry["max"] is None or latency > entry["max"]:
                entry["max"] = latency
        return stats

    def phase_breakdown(self) -> dict[str, dict[str, PhaseStat]]:
        """strategy -> phase -> aggregate over critical-path spans."""
        breakdown: dict[str, dict[str, PhaseStat]] = {}
        for episode in self._measurable():
            phases = breakdown.setdefault(episode.strategy, {})
            for span in critical_path(episode):
                stat = phases.setdefault(span.phase, PhaseStat())
                stat.count += 1
                stat.total += span.duration
        return breakdown

    def outcome_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for episode in self.episodes:
            counts[episode.outcome] = counts.get(episode.outcome, 0) + 1
        return counts

    def check(self) -> list[str]:
        """Causality-invariant violations across all episodes."""
        problems: list[str] = []
        seen: set[str] = set()
        for episode in self.episodes:
            if episode.episode_id in seen:
                problems.append(f"duplicate episode id {episode.episode_id}")
            seen.add(episode.episode_id)
            problems.extend(validate_episode(episode))
        return problems

    def render(self) -> str:
        """Deterministic text rendering (the ``repro trace analyze`` output)."""
        lines: list[str] = []
        lines.append("== restoration trace analysis ==")
        outcomes = self.outcome_counts()
        total = len(self.episodes)
        outcome_text = ", ".join(
            f"{name} {outcomes[name]}" for name in sorted(outcomes)
        )
        lines.append(f"episodes: {total}" + (f" ({outcome_text})" if total else ""))
        stats = self.latency_stats()
        if stats:
            lines.append("")
            lines.append("restoration latency by strategy (sim time units):")
            lines.append(
                f"  {'strategy':<10} {'n':>6} {'mean':>10} {'min':>10} {'max':>10}"
            )
            for strategy in sorted(stats):
                entry = stats[strategy]
                mean = entry["total"] / entry["count"]
                lines.append(
                    f"  {strategy:<10} {entry['count']:>6} {mean:>10.3f} "
                    f"{entry['min']:>10.3f} {entry['max']:>10.3f}"
                )
        breakdown = self.phase_breakdown()
        if breakdown:
            lines.append("")
            lines.append("critical-path phase breakdown:")
            lines.append(
                f"  {'strategy':<10} {'phase':<12} {'n':>6} {'total':>12} "
                f"{'mean':>10} {'share':>7}"
            )
            for strategy in sorted(breakdown):
                phases = breakdown[strategy]
                strategy_total = math.fsum(s.total for s in phases.values())
                for phase in sorted(phases):
                    stat = phases[phase]
                    share = (
                        stat.total / strategy_total if strategy_total else 0.0
                    )
                    lines.append(
                        f"  {strategy:<10} {phase:<12} {stat.count:>6} "
                        f"{stat.total:>12.3f} {stat.mean:>10.3f} {share:>7.1%}"
                    )
        return "\n".join(lines)


def diff_analyses(
    a: TraceAnalyzer, b: TraceAnalyzer
) -> tuple[str, float]:
    """Compare two analyses; returns (rendered diff, max |relative mean delta|).

    The relative delta of a (strategy, phase) cell is
    ``(mean_b - mean_a) / mean_a`` (``inf`` when a phase appears on one
    side only, 0 when both means are zero).
    """
    breakdown_a = a.phase_breakdown()
    breakdown_b = b.phase_breakdown()
    lines: list[str] = []
    lines.append("== restoration trace diff (a -> b) ==")
    lines.append(f"episodes: {len(a.episodes)} -> {len(b.episodes)}")
    lines.append(
        f"  {'strategy':<10} {'phase':<12} {'mean a':>10} {'mean b':>10} "
        f"{'delta':>9}"
    )
    worst = 0.0
    strategies = sorted(set(breakdown_a) | set(breakdown_b))
    for strategy in strategies:
        phases_a = breakdown_a.get(strategy, {})
        phases_b = breakdown_b.get(strategy, {})
        for phase in sorted(set(phases_a) | set(phases_b)):
            stat_a = phases_a.get(phase)
            stat_b = phases_b.get(phase)
            mean_a = stat_a.mean if stat_a is not None else None
            mean_b = stat_b.mean if stat_b is not None else None
            if mean_a is None or mean_b is None:
                delta_text = "only a" if mean_b is None else "only b"
                worst = math.inf
            elif mean_a == 0.0 and mean_b == 0.0:
                delta_text = "+0.0%"
            elif mean_a == 0.0:
                delta_text = "inf"
                worst = math.inf
            else:
                delta = (mean_b - mean_a) / mean_a
                worst = max(worst, abs(delta))
                delta_text = f"{delta:+.1%}"
            fmt = lambda v: f"{v:>10.3f}" if v is not None else f"{'—':>10}"
            lines.append(
                f"  {strategy:<10} {phase:<12} {fmt(mean_a)} {fmt(mean_b)} "
                f"{delta_text:>9}"
            )
    return "\n".join(lines), worst


# ----------------------------------------------------------------------
# NDJSON export / import
# ----------------------------------------------------------------------
@dataclass
class TraceFile:
    """A loaded trace: episodes plus loss accounting from the header."""

    episodes: list[Episode]
    dropped: int = 0
    trimmed: int = 0
    abandoned: int = 0


def write_trace_ndjson(
    episodes: Iterable[Episode],
    path: str,
    *,
    dropped: int = 0,
    trimmed: int = 0,
    abandoned: int = 0,
) -> int:
    """Write a trace as NDJSON: one header line, one line per episode.

    Episodes are sorted by id so the file is byte-identical no matter
    which executor produced them (no wall-clock data is ever written).
    Returns the number of episodes written.
    """
    ordered = sorted(episodes, key=lambda e: e.episode_id)
    with open(path, "w", encoding="utf-8") as fh:
        header = {
            "v": TRACE_VERSION,
            "kind": "trace-header",
            "clock": "sim",
            "episodes": len(ordered),
            "dropped": dropped,
            "trimmed": trimmed,
            "abandoned": abandoned,
        }
        fh.write(json.dumps(header, sort_keys=True, separators=(",", ":")))
        fh.write("\n")
        for episode in ordered:
            line = {"v": TRACE_VERSION, "kind": "episode", **episode.to_dict()}
            fh.write(json.dumps(line, sort_keys=True, separators=(",", ":")))
            fh.write("\n")
    return len(ordered)


def read_trace_ndjson(path: str) -> TraceFile:
    """Load a trace written by :func:`write_trace_ndjson`.

    Tolerates a missing header (a raw episode-per-line file still loads);
    unknown line kinds are skipped so the format can grow.
    """
    trace = TraceFile(episodes=[])
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, raw in enumerate(fh, start=1):
            raw = raw.strip()
            if not raw:
                continue
            try:
                payload = json.loads(raw)
            except json.JSONDecodeError as exc:
                raise ConfigurationError(
                    f"{path}:{lineno}: not valid JSON ({exc})"
                ) from exc
            if not isinstance(payload, dict):
                raise ConfigurationError(
                    f"{path}:{lineno}: expected a JSON object"
                )
            kind = payload.get("kind")
            if kind == "trace-header":
                trace.dropped = payload.get("dropped", 0)
                trace.trimmed = payload.get("trimmed", 0)
                trace.abandoned = payload.get("abandoned", 0)
            elif kind == "episode" or ("spans" in payload and "id" in payload):
                trace.episodes.append(Episode.from_dict(payload))
    return trace


# ----------------------------------------------------------------------
# Chrome trace-event JSON (Perfetto-loadable)
# ----------------------------------------------------------------------
def chrome_trace_document(episodes: Iterable[Episode]) -> dict:
    """Render episodes as a Chrome trace-event JSON document.

    Layout: one *process* per episode (named after the episode id) with
    one *track* (thread) per node; the clock is simulated time, written
    as-is into the microsecond ``ts``/``dur`` fields, so 1 sim time unit
    displays as 1 µs in Perfetto.  Span payloads travel in ``args`` and
    the root span's ``args`` carries the full episode header, which is
    enough to reconstruct episodes (:func:`episodes_from_chrome`).
    """
    events: list[dict] = []
    ordered = sorted(episodes, key=lambda e: e.episode_id)
    for index, episode in enumerate(ordered):
        pid = index + 1
        events.append({
            "ph": "M", "pid": pid, "tid": 0, "name": "process_name",
            "args": {"name": f"{episode.episode_id} [{episode.strategy}]"},
        })
        events.append({
            "ph": "M", "pid": pid, "tid": 0, "name": "process_sort_index",
            "args": {"sort_index": index},
        })
        nodes = sorted({span.node for span in episode.spans})
        for node in nodes:
            events.append({
                "ph": "M", "pid": pid, "tid": int(node) + 1,
                "name": "thread_name", "args": {"name": f"node {node}"},
            })
        for span in episode.spans:
            args: dict = {
                "episode": episode.episode_id,
                "span": span.span_id,
                "parent": span.parent_id,
                "node": span.node,
                "data": span.payload,
            }
            if span.parent_id == -1:
                args.update({
                    "scenario": episode.scenario_key,
                    "member": episode.member,
                    "strategy": episode.strategy,
                    "origin": episode.origin,
                    "failure": episode.failure,
                    "outcome": episode.outcome,
                })
            events.append({
                "name": span.phase,
                "cat": f"{episode.origin}.{episode.strategy}",
                "ph": "X",
                "ts": span.start,
                "dur": span.end - span.start,
                "pid": pid,
                "tid": int(span.node) + 1,
                "args": args,
            })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "format": "repro-restoration-trace",
            "v": TRACE_VERSION,
            "clock": "simulated time units (1 unit rendered as 1us)",
        },
    }


def write_chrome_trace(episodes: Iterable[Episode], path: str) -> int:
    document = chrome_trace_document(episodes)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(document, fh, sort_keys=True, separators=(",", ":"))
        fh.write("\n")
    return sum(1 for e in document["traceEvents"] if e.get("ph") == "X" and
               e["args"].get("parent") == -1)


def episodes_from_chrome(document: dict) -> list[Episode]:
    """Reconstruct episodes from a :func:`chrome_trace_document` output."""
    if not isinstance(document, dict) or "traceEvents" not in document:
        raise ConfigurationError(
            "not a Chrome trace document (missing 'traceEvents')"
        )
    spans_by_episode: dict[str, list[TraceSpan]] = {}
    headers: dict[str, dict] = {}
    for event in document["traceEvents"]:
        if event.get("ph") != "X":
            continue
        args = event.get("args", {})
        eid = args.get("episode")
        if eid is None:
            continue
        span = TraceSpan(
            span_id=args["span"],
            parent_id=args["parent"],
            phase=event["name"],
            node=args["node"],
            start=event["ts"],
            end=event["ts"] + event["dur"],
            payload=dict(args.get("data", {})),
        )
        spans_by_episode.setdefault(eid, []).append(span)
        if span.parent_id == -1:
            headers[eid] = args
    episodes: list[Episode] = []
    for eid in sorted(spans_by_episode):
        header = headers.get(eid)
        if header is None:
            raise ConfigurationError(
                f"chrome trace episode {eid!r} has no root span"
            )
        spans = sorted(spans_by_episode[eid], key=lambda s: s.span_id)
        episodes.append(Episode(
            episode_id=eid,
            scenario_key=header.get("scenario", ""),
            member=header.get("member", spans[0].node),
            strategy=header.get("strategy", ""),
            origin=header.get("origin", ""),
            failure=header.get("failure", ""),
            outcome=header.get("outcome", "restored"),
            spans=spans,
        ))
    return episodes
