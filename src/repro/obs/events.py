"""The structured event stream: an in-memory log exportable as JSONL.

Where :class:`~repro.obs.registry.MetricsRegistry` keeps *aggregates*,
the event log keeps *individual occurrences* with arbitrary structured
fields — suitable for post-hoc analysis of a single run (``jq`` over a
``.jsonl`` file, or :func:`read_jsonl` back into dicts).

The log is bounded by default so instrumenting a long DES run cannot grow
memory without limit; the oldest events are dropped first and the drop
count is retained.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Iterator

from repro.errors import ConfigurationError

#: Default cap on retained events (drop-oldest beyond this).
DEFAULT_MAX_EVENTS = 100_000


class EventLog:
    """Append-only structured events with drop-oldest bounding."""

    def __init__(
        self, enabled: bool = True, max_records: int | None = DEFAULT_MAX_EVENTS
    ) -> None:
        if max_records is not None and max_records < 1:
            raise ConfigurationError("max_records must be positive or None")
        self.enabled = enabled
        self.max_records = max_records
        self.dropped = 0
        #: Event totals folded in from other logs (parallel workers keep
        #: their events local and ship only the accounting).
        self.absorbed_records = 0
        self.absorbed_dropped = 0
        self._records: deque[dict] = deque(maxlen=max_records)

    def emit(self, kind: str, **fields) -> None:
        """Record one event; ``kind`` names the event type."""
        if not self.enabled:
            return
        if (
            self.max_records is not None
            and len(self._records) == self.max_records
        ):
            self.dropped += 1  # deque evicts the oldest on append
        record = {"kind": kind}
        record.update(fields)
        self._records.append(record)

    def absorb_counts(self, recorded: int, dropped: int) -> None:
        """Fold another log's accounting into this one (records stay
        remote; run reports surface the combined totals)."""
        if not self.enabled:
            return
        self.absorbed_records += recorded
        self.absorbed_dropped += dropped

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[dict]:
        return iter(self._records)

    def to_jsonl(self) -> str:
        """One JSON object per line (empty string for an empty log)."""
        return "\n".join(
            json.dumps(r, sort_keys=True, default=str) for r in self._records
        )

    def write_jsonl(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            text = self.to_jsonl()
            if text:
                fh.write(text + "\n")


def read_jsonl(text: str) -> list[dict]:
    """Parse JSONL text back into event dicts (inverse of ``to_jsonl``)."""
    return [json.loads(line) for line in text.splitlines() if line.strip()]


def load_jsonl(path: str) -> list[dict]:
    with open(path, "r", encoding="utf-8") as fh:
        return read_jsonl(fh.read())
