"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``figures``
    Regenerate the paper's evaluation figures (7–10) as text tables.
``scenario``
    Run a single seeded scenario and print the per-member comparison of
    SMRP against the SPF baseline.
``simulate``
    Run the message-level simulator on a random topology, optionally
    injecting a worst-case failure, and print the event summary.
``controller`` (alias ``serve``)
    Host a whole multicast service: hundreds-to-thousands of groups on
    one topology (Zipf source popularity, heavy-tailed sizes, optional
    churn or flash-crowd workloads), inject a failure, restore every
    affected group in one pass, and print the per-group restoration
    table.  The run is declarative (``--spec service.json`` or
    individual flags) and shards over the standard executors —
    ``--jobs 4`` output is byte-identical to serial output.
``protection``
    Run the protection-family figure: restoration latency, recovery
    distance, and standing reserved state for local detour, global
    detour, precomputed per-link backup trees, hybrid, and
    alternate-path recovery across link failure rates.
``distribution``
    Restoration-latency *distribution* figure: host thousands of
    controller groups per engine, inject the same failure everywhere,
    and print p50/p90/p99/p99.9/max latency per engine from
    log-bucketed HDR histograms — the tail-behaviour companion to the
    mean-based figures.  Shards over the standard executors with
    byte-identical output.
``obs``
    Observability artifacts: ``report`` renders a captured run report,
    ``tail`` replays a telemetry flight record, ``export`` renders a run
    report as OpenMetrics text, ``diff`` compares two run reports
    (counters, span self-times, latency quantiles), ``flame`` emits a
    collapsed-stack self-time profile of a run report for flamegraph
    tooling.
``trace``
    Causal restoration traces: ``analyze`` prints per-phase latency
    breakdowns and critical paths, ``export`` converts an NDJSON trace
    to Chrome trace-event JSON (open it at https://ui.perfetto.dev),
    ``diff`` compares two analyses, ``figure`` renders the
    restoration-latency-by-phase figure family.
``info``
    Version and component inventory.

The run-producing commands accept ``--obs-out PATH`` to capture a
structured run report (metric counters, span timings, event accounting)
as JSON; ``repro obs report PATH`` renders it afterwards.  They also
accept ``--trace-out PATH`` to record causal restoration episodes in
simulated time (:mod:`repro.obs.tracing`) as an NDJSON trace; tracing
is observe-only, so stdout tables stay byte-identical with or without
it, and the confirmation line goes to stderr.

``figures``, ``controller``/``serve``, ``protection``, and
``distribution`` additionally accept ``--profile``: the run body is
wrapped in a ``prof.run`` span and an exclusive-self-time profile
(where the wall clock actually went) is printed to stderr afterwards.
``--profile`` works with or without ``--obs-out``; combined with it,
the captured report carries the span tree plus a ``profile_wall_s``
meta field, and ``repro obs flame REPORT`` turns it into collapsed
stacks.  Profiling is observe-only: stdout stays byte-identical.

Live telemetry
--------------
``figures`` and ``scenario`` also stream while running: ``--progress``
renders a live progress line to stderr (throughput, ETA, in-flight,
fault counts), ``--telemetry-out PATH`` appends every lifecycle record
(scenario started / finished / retried / timed out / crashed, worker
heartbeats with span-stack snapshots) to an NDJSON flight record, and
``--openmetrics-out PATH`` keeps an OpenMetrics textfile refreshed for
node-exporter-style scraping.  All three are observe-only: stdout tables
are byte-identical with or without them.  ``repro obs tail`` replays a
flight record after the fact.

Parallel execution
------------------
``figures``, ``scenario``, and ``simulate`` accept ``--jobs N`` and
``--executor {serial,process,resilient}``.  ``--jobs N`` with ``N > 1``
fans scenario work units out over a process pool (implying
``--executor process``); results are merged deterministically in seed
order, so parallel output is byte-identical to serial output.
``--jobs`` below 1 is rejected, as is ``--executor serial`` combined
with ``--jobs`` above 1.  A ``simulate`` run is a single discrete-event
work unit, so it gains nothing from ``--jobs`` — the flags are accepted
for consistency and validated the same way.

Resilient execution
-------------------
``--timeout S``, ``--retries N``, ``--checkpoint-dir DIR``, and
``--resume`` select the fault-tolerant executor (each implies
``--executor resilient``): every scenario attempt runs in its own worker
process, a crashed or timed-out attempt is retried with exponential
backoff, and completed results persist to a content-keyed checkpoint
store so an interrupted sweep resumes instead of restarting.  Output
stays byte-identical to a clean serial run regardless of faults.
``--inject-fault KIND:INDEX`` (testing/CI) arms a deliberate crash,
hang, or transient error against one work unit.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Sequence

import numpy as np


def _add_executor_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes (N > 1 implies --executor process)",
    )
    parser.add_argument(
        "--executor", choices=["serial", "process", "resilient"],
        help="how scenario work units run (default: serial; process when "
             "--jobs > 1; resilient when any resilience flag is given)",
    )
    parser.add_argument(
        "--timeout", type=float, metavar="S",
        help="per-scenario wall-clock limit in seconds; a hung attempt "
             "is killed and retried (implies --executor resilient)",
    )
    parser.add_argument(
        "--retries", type=int, metavar="N",
        help="re-attempts per scenario after a crash, timeout, or "
             "transient error (default 2; implies --executor resilient)",
    )
    parser.add_argument(
        "--checkpoint-dir", metavar="DIR",
        help="persist completed scenarios to a content-keyed store in DIR "
             "(implies --executor resilient)",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="serve scenarios already in --checkpoint-dir from disk "
             "instead of recomputing them",
    )
    parser.add_argument(
        "--inject-fault", action="append", default=[], metavar="KIND:INDEX",
        help=argparse.SUPPRESS,  # testing/CI hook: crash|hang|error:INDEX
    )
    parser.add_argument(
        "--progress", action="store_true",
        help="render a live progress line to stderr while the sweep runs",
    )
    parser.add_argument(
        "--telemetry-out", metavar="PATH",
        help="append live telemetry records (lifecycle events, worker "
             "heartbeats) to an NDJSON flight record at PATH",
    )
    parser.add_argument(
        "--openmetrics-out", metavar="PATH",
        help="keep an OpenMetrics textfile at PATH refreshed with live "
             "sweep metrics (atomic replace, scrape-safe)",
    )


def _add_profile_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--profile", action="store_true",
        help="wrap the run in a prof.run span and print a self-time "
             "profile to stderr (where did the wall clock go?)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SMRP (Wu & Shin, DSN 2005) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    figures = sub.add_parser("figures", help="regenerate evaluation figures")
    figures.add_argument("--quick", action="store_true",
                         help="reduced grid (4x2 scenarios per point)")
    figures.add_argument("--figure", type=int, choices=[7, 8, 9, 10],
                         help="only this figure")
    figures.add_argument("--obs-out", metavar="PATH",
                         help="write an observability run report (JSON)")
    figures.add_argument("--trace-out", metavar="PATH",
                         help="write causal restoration episodes (NDJSON)")
    _add_profile_arg(figures)
    _add_executor_args(figures)

    scenario = sub.add_parser("scenario", help="run one seeded scenario")
    scenario.add_argument("--n", type=int, default=100)
    scenario.add_argument("--group-size", type=int, default=30)
    scenario.add_argument("--alpha", type=float, default=0.2)
    scenario.add_argument("--d-thresh", type=float, default=0.3)
    scenario.add_argument("--topology-seed", type=int, default=0)
    scenario.add_argument("--member-seed", type=int, default=0)
    scenario.add_argument("--knowledge", choices=["full", "query"],
                          default="full")
    scenario.add_argument("--no-reshape", action="store_true")
    scenario.add_argument("--obs-out", metavar="PATH",
                          help="write an observability run report (JSON)")
    scenario.add_argument("--trace-out", metavar="PATH",
                          help="write causal restoration episodes (NDJSON)")
    _add_executor_args(scenario)

    simulate = sub.add_parser("simulate", help="message-level simulation")
    simulate.add_argument("--n", type=int, default=40)
    simulate.add_argument("--members", type=int, default=6)
    simulate.add_argument("--seed", type=int, default=1)
    simulate.add_argument("--d-thresh", type=float, default=0.3)
    simulate.add_argument("--fail-worst", action="store_true",
                          help="inject the first member's worst-case failure")
    simulate.add_argument("--obs-out", metavar="PATH",
                          help="write an observability run report (JSON)")
    simulate.add_argument("--trace-out", metavar="PATH",
                          help="write causal restoration episodes (NDJSON)")
    _add_executor_args(simulate)

    controller = sub.add_parser(
        "controller", aliases=["serve"],
        help="host a multi-group multicast service, fail it, restore it",
    )
    controller.add_argument(
        "--spec", metavar="PATH",
        help="load the full ServiceSpec from a JSON file (individual "
             "spec flags below are then rejected)",
    )
    controller.add_argument("--groups", type=int, default=200,
                            help="hosted (source, group) sessions")
    controller.add_argument("--sources", type=int, default=8,
                            help="source pool size (Zipf popularity)")
    controller.add_argument("--n", type=int, default=100)
    controller.add_argument("--alpha", type=float, default=0.2)
    controller.add_argument("--topology-seed", type=int, default=0)
    controller.add_argument("--member-seed", type=int, default=0)
    controller.add_argument(
        "--protocol",
        choices=["smrp", "spf", "protection", "hybrid", "alternate"],
        default="smrp",
    )
    controller.add_argument(
        "--protect-budget", type=int, default=4, metavar="F",
        help="protected-link budget for protection/hybrid groups "
             "(backup trees precomputed for the F most-loaded tree links)",
    )
    controller.add_argument("--d-thresh", type=float, default=0.3)
    controller.add_argument(
        "--workload", choices=["static", "poisson", "flash"],
        default="static",
    )
    controller.add_argument(
        "--failure", default="auto", metavar="MODE",
        help="none, auto (busiest hot-source link), link:U-V, or node:X",
    )
    controller.add_argument(
        "--shard-size", type=int, default=50, metavar="N",
        help="groups per shard work unit (part of the spec: checkpoint "
             "identities do not depend on --jobs)",
    )
    controller.add_argument("--obs-out", metavar="PATH",
                            help="write an observability run report (JSON)")
    controller.add_argument("--trace-out", metavar="PATH",
                            help="write causal restoration episodes (NDJSON)")
    _add_profile_arg(controller)
    _add_executor_args(controller)

    protection = sub.add_parser(
        "protection",
        help="protection-family figure: reactive vs precomputed recovery",
    )
    protection.add_argument("--quick", action="store_true",
                            help="reduced grid (2x1 scenarios, 2 trials)")
    protection.add_argument(
        "--budget", type=int, default=4, metavar="F",
        help="protected-link budget for the backup/hybrid modes",
    )
    protection.add_argument(
        "--rates", type=float, nargs="+", metavar="R",
        help="link failure rates to sweep (default 0.02 0.05 0.1; "
             "quick mode defaults to 0.02 0.1)",
    )
    protection.add_argument("--obs-out", metavar="PATH",
                            help="write an observability run report (JSON)")
    protection.add_argument("--trace-out", metavar="PATH",
                            help="write causal restoration episodes (NDJSON)")
    _add_profile_arg(protection)
    _add_executor_args(protection)

    distribution = sub.add_parser(
        "distribution",
        help="restoration-latency distribution: per-engine percentiles "
             "over thousands of controller groups",
    )
    distribution.add_argument(
        "--quick", action="store_true",
        help="reduced grid (engines smrp+spf, 1000 groups each)",
    )
    distribution.add_argument(
        "--engines", nargs="+", metavar="ENGINE",
        choices=["smrp", "spf", "protection", "hybrid", "alternate"],
        help="restoration engines to compare (default: all five; "
             "--quick default: smrp spf)",
    )
    distribution.add_argument(
        "--groups", type=int, metavar="N",
        help="hosted (source, group) sessions per engine "
             "(default 2000; --quick default 1000)",
    )
    distribution.add_argument(
        "--workload", choices=["static", "poisson", "flash"],
        default="static",
    )
    distribution.add_argument(
        "--failure", default="auto", metavar="MODE",
        help="none, auto (busiest hot-source link), link:U-V, or node:X",
    )
    distribution.add_argument(
        "--shard-size", type=int, default=250, metavar="N",
        help="groups per shard work unit (part of the spec: checkpoint "
             "identities do not depend on --jobs)",
    )
    distribution.add_argument("--obs-out", metavar="PATH",
                              help="write an observability run report (JSON)")
    _add_profile_arg(distribution)
    _add_executor_args(distribution)

    obs = sub.add_parser("obs", help="observability run artifacts")
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)
    obs_report = obs_sub.add_parser(
        "report", help="render a run report captured with --obs-out"
    )
    obs_report.add_argument("path", help="run report JSON file")
    obs_tail = obs_sub.add_parser(
        "tail", help="replay a telemetry flight record (--telemetry-out)"
    )
    obs_tail.add_argument("path", help="NDJSON flight record file")
    obs_tail.add_argument(
        "--last", type=int, metavar="N",
        help="only the last N records (the full kind summary still prints)",
    )
    obs_export = obs_sub.add_parser(
        "export", help="render a run report in an exchange format"
    )
    obs_export.add_argument("path", help="run report JSON file")
    obs_export.add_argument(
        "--format", choices=["openmetrics"], default="openmetrics",
        help="output format (default: openmetrics)",
    )
    obs_export.add_argument(
        "--out", metavar="PATH",
        help="write to PATH instead of stdout",
    )
    obs_diff = obs_sub.add_parser(
        "diff", help="compare two run reports (counters, span-time and "
                     "latency-quantile ratios)"
    )
    obs_diff.add_argument("path_a", help="baseline run report JSON file")
    obs_diff.add_argument("path_b", help="candidate run report JSON file")
    obs_diff.add_argument(
        "--fail-over", type=float, metavar="RATIO",
        help="exit nonzero when any span-time or latency-quantile "
             "(p50/p99) ratio (b/a) exceeds RATIO",
    )
    obs_flame = obs_sub.add_parser(
        "flame", help="collapsed-stack self-time profile of a run report "
                      "(flamegraph.pl / speedscope input)"
    )
    obs_flame.add_argument("path", help="run report JSON file (--obs-out)")
    obs_flame.add_argument(
        "--out", metavar="PATH",
        help="write collapsed stacks to PATH instead of stdout",
    )

    trace = sub.add_parser("trace", help="causal restoration traces")
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    trace_analyze = trace_sub.add_parser(
        "analyze", help="per-phase latency breakdown of a trace"
    )
    trace_analyze.add_argument("path", help="NDJSON trace (--trace-out)")
    trace_analyze.add_argument(
        "--check", action="store_true",
        help="validate span nesting and critical-path sums; exit 1 on "
             "any violation",
    )
    trace_export = trace_sub.add_parser(
        "export", help="convert a trace to another format"
    )
    trace_export.add_argument("path", help="NDJSON trace (--trace-out)")
    trace_export.add_argument(
        "--format", choices=["chrome", "ndjson"], default="chrome",
        help="output format (default: chrome trace-event JSON, loadable "
             "at https://ui.perfetto.dev)",
    )
    trace_export.add_argument(
        "--out", metavar="PATH",
        help="write to PATH instead of stdout",
    )
    trace_diff = trace_sub.add_parser(
        "diff", help="compare the phase breakdowns of two traces"
    )
    trace_diff.add_argument("path_a", help="baseline NDJSON trace")
    trace_diff.add_argument("path_b", help="candidate NDJSON trace")
    trace_diff.add_argument(
        "--fail-over", type=float, metavar="RATIO",
        help="exit nonzero when any per-phase relative delta exceeds RATIO",
    )
    trace_figure = trace_sub.add_parser(
        "figure", help="restoration latency breakdown by phase"
    )
    trace_figure.add_argument("--quick", action="store_true",
                              help="reduced grid (4x2 scenarios)")
    trace_figure.add_argument(
        "--trace-out", metavar="PATH",
        help="also write the episodes behind the figure (NDJSON)",
    )
    _add_executor_args(trace_figure)

    sub.add_parser("info", help="version and component inventory")
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "figures": _cmd_figures,
        "scenario": _cmd_scenario,
        "simulate": _cmd_simulate,
        "controller": _cmd_controller,
        "serve": _cmd_controller,
        "protection": _cmd_protection,
        "distribution": _cmd_distribution,
        "obs": _cmd_obs,
        "trace": _cmd_trace,
        "info": _cmd_info,
    }
    return handlers[args.command](args)


def _make_obs(args: argparse.Namespace):
    """The run's Observability, or None when no capture flag was given.

    ``--obs-out`` (or ``--profile``, which needs the span profiler)
    enables the metrics/spans/events instruments; ``--trace-out``
    attaches a restoration tracer.  A trace-only run keeps the other
    instruments disabled, so the tracer is the only live
    instrumentation.
    """
    obs_out = getattr(args, "obs_out", None)
    trace_out = getattr(args, "trace_out", None)
    profile = bool(getattr(args, "profile", False))
    if obs_out is None and trace_out is None and not profile:
        return None
    # Fail fast on an unwritable destination rather than after the run.
    if obs_out is not None:
        _check_out_dir("--obs-out", obs_out)
    if trace_out is not None:
        _check_out_dir("--trace-out", trace_out)
    from repro.obs import Observability, RestorationTracer

    return Observability(
        enabled=obs_out is not None or profile,
        tracer=RestorationTracer() if trace_out is not None else None,
    )


def _check_out_dir(flag: str, path: str) -> None:
    """Fail fast (exit 2) when an output path's directory is missing."""
    parent = os.path.dirname(os.path.abspath(path))
    if not os.path.isdir(parent):
        print(
            f"repro: error: {flag} directory does not exist: {parent}",
            file=sys.stderr,
        )
        raise SystemExit(2)


def _make_telemetry(args: argparse.Namespace):
    """A TelemetryHub wired to the sinks the flags asked for, else None.

    ``--progress`` adds a stderr progress renderer, ``--telemetry-out``
    an NDJSON flight recorder, ``--openmetrics-out`` an OpenMetrics
    textfile exporter.  No flags, no hub — the executors then skip all
    telemetry work.
    """
    progress = getattr(args, "progress", False)
    telemetry_out = getattr(args, "telemetry_out", None)
    openmetrics_out = getattr(args, "openmetrics_out", None)
    if not progress and telemetry_out is None and openmetrics_out is None:
        return None
    from repro.obs import (
        FlightRecorder,
        OpenMetricsSink,
        ProgressSink,
        TelemetryHub,
    )

    sinks = []
    if progress:
        sinks.append(ProgressSink())
    if telemetry_out is not None:
        _check_out_dir("--telemetry-out", telemetry_out)
        sinks.append(FlightRecorder(telemetry_out))
    if openmetrics_out is not None:
        _check_out_dir("--openmetrics-out", openmetrics_out)
        sinks.append(OpenMetricsSink(openmetrics_out))
    return TelemetryHub(sinks=sinks)


def _make_executor(args: argparse.Namespace, telemetry=None):
    """Build the executor requested by ``--jobs`` / ``--executor`` and the
    resilience flags.

    Any of ``--timeout`` / ``--retries`` / ``--checkpoint-dir`` /
    ``--resume`` / ``--inject-fault`` implies ``--executor resilient``;
    combining them with an explicit serial/process executor is a usage
    error.  Exits with status 2 (usage error) on invalid combinations:
    ``--jobs`` below 1, an explicit ``--executor serial`` with ``--jobs``
    above 1, ``--resume`` without ``--checkpoint-dir``, or a malformed
    ``--inject-fault``.
    """
    from repro.errors import ConfigurationError
    from repro.experiments.exec.executor import resolve_executor

    jobs = getattr(args, "jobs", 1)
    kind = getattr(args, "executor", None)
    resilience_flags = (
        getattr(args, "timeout", None) is not None
        or getattr(args, "retries", None) is not None
        or getattr(args, "checkpoint_dir", None) is not None
        or getattr(args, "resume", False)
        or bool(getattr(args, "inject_fault", []))
    )
    if kind is not None and kind != "resilient" and resilience_flags:
        print(
            "repro: error: --timeout/--retries/--checkpoint-dir/--resume/"
            f"--inject-fault require --executor resilient, not {kind}",
            file=sys.stderr,
        )
        raise SystemExit(2)
    try:
        policy = None
        if kind == "resilient" or resilience_flags:
            from repro.experiments.exec.resilience import ExecPolicy

            policy_kwargs = {}
            if getattr(args, "timeout", None) is not None:
                policy_kwargs["timeout"] = args.timeout
            if getattr(args, "retries", None) is not None:
                policy_kwargs["retries"] = args.retries
            if getattr(args, "checkpoint_dir", None) is not None:
                policy_kwargs["checkpoint_dir"] = args.checkpoint_dir
            policy_kwargs["resume"] = bool(getattr(args, "resume", False))
            policy = ExecPolicy(**policy_kwargs)
        # The shared combination-rule authority — the facade rejects the
        # same bad combinations with the same message text.
        executor, _ = resolve_executor(
            kind=kind, jobs=jobs, policy=policy, telemetry=telemetry
        )
        for spec in getattr(args, "inject_fault", []):
            fault, sep, index = spec.partition(":")
            if not sep or not index.lstrip("-").isdigit():
                raise ConfigurationError(
                    f"--inject-fault expects KIND:INDEX, got {spec!r}"
                )
            executor.inject_fault(int(index), fault)
        return executor
    except ConfigurationError as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        raise SystemExit(2)


def _write_obs_report(args: argparse.Namespace, obs, meta: dict) -> None:
    if obs is None or getattr(args, "obs_out", None) is None:
        return
    from repro.obs import write_run_report

    write_run_report(obs.run_report(meta=meta), args.obs_out)
    print(f"\nobservability report written to {args.obs_out}")


def _write_trace_out(args: argparse.Namespace, obs) -> None:
    """Write the tracer's episodes as NDJSON when ``--trace-out`` was on.

    The confirmation goes to stderr: tracing is observe-only and stdout
    must stay byte-identical to an untraced run.
    """
    trace_out = getattr(args, "trace_out", None)
    if trace_out is None or obs is None or obs.tracer is None:
        return
    from repro.obs import write_trace_ndjson

    tracer = obs.tracer
    tracer.finalize()
    count = write_trace_ndjson(
        tracer.episodes,
        trace_out,
        dropped=tracer.dropped,
        trimmed=tracer.trimmed,
        abandoned=tracer.abandoned,
    )
    print(
        f"restoration trace ({count} episodes) written to {trace_out}",
        file=sys.stderr,
    )


class _ProfileScope:
    """Wall-clock + ``prof.run`` span wrapper for ``--profile`` runs.

    Entering starts the clock and (when profiling) opens a ``prof.run``
    span so every span the command emits nests under one root — which is
    what makes the exclusive self-time decomposition sum back to the
    measured wall clock on a serial run.  Exiting closes the span,
    records ``wall_s``, and prints the rendered profile to stderr
    (stdout must stay byte-identical to an unprofiled run).
    """

    def __init__(self, args: argparse.Namespace, obs) -> None:
        self.enabled = bool(getattr(args, "profile", False)) and obs is not None
        self._obs = obs
        self._span = None
        self._start: float | None = None
        self.wall_s: float | None = None

    def __enter__(self) -> "_ProfileScope":
        from time import perf_counter

        self._start = perf_counter()
        if self.enabled:
            self._span = self._obs.span("prof.run")
            self._span.__enter__()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        from time import perf_counter

        if self._span is not None:
            self._span.__exit__(exc_type, exc, tb)
            self._span = None
        self.wall_s = perf_counter() - self._start
        if self.enabled and exc_type is None:
            from repro.obs import render_profile

            print(
                render_profile(self._obs.spans.report(), wall_s=self.wall_s),
                file=sys.stderr,
            )
        return False

    def annotate(self, meta: dict) -> dict:
        """Stamp the measured wall clock into an obs-report meta dict."""
        if self.enabled and self.wall_s is not None:
            meta["profile_wall_s"] = round(self.wall_s, 6)
        return meta


# ----------------------------------------------------------------------
# Commands
# ----------------------------------------------------------------------
def _cmd_figures(args: argparse.Namespace) -> int:
    from repro.experiments.fig7 import run_figure7
    from repro.experiments.fig8 import run_figure8
    from repro.experiments.fig9 import run_figure9
    from repro.experiments.fig10 import run_figure10

    obs = _make_obs(args)
    telemetry = _make_telemetry(args)
    executor = _make_executor(args, telemetry=telemetry)
    topologies, member_sets = (4, 2) if args.quick else (10, 10)
    runs = {
        7: lambda: run_figure7(topologies=5, obs=obs, executor=executor),
        8: lambda: run_figure8(topologies=topologies, member_sets=member_sets,
                               obs=obs, executor=executor),
        9: lambda: run_figure9(topologies=topologies, member_sets=member_sets,
                               obs=obs, executor=executor),
        10: lambda: run_figure10(topologies=topologies,
                                 member_sets=member_sets, obs=obs,
                                 executor=executor),
    }
    figures_run = [args.figure] if args.figure else [7, 8, 9, 10]
    scope = _ProfileScope(args, obs)
    try:
        with scope, executor:
            for figure in figures_run:
                print(f"--- Figure {figure} ---")
                print(runs[figure]().render())
                print()
    finally:
        if telemetry is not None:
            telemetry.close()
    _write_obs_report(args, obs, scope.annotate({
        "command": "figures",
        "figures": figures_run,
        "quick": bool(args.quick),
        "executor": executor.kind,
        "jobs": args.jobs,
    }))
    _write_trace_out(args, obs)
    return 0


def _cmd_scenario(args: argparse.Namespace) -> int:
    from repro.experiments.scenario import ScenarioConfig
    from repro.experiments.tables import format_table
    from repro.metrics.stats import summarize

    config = ScenarioConfig(
        n=args.n,
        group_size=args.group_size,
        alpha=args.alpha,
        d_thresh=args.d_thresh,
        topology_seed=args.topology_seed,
        member_seed=args.member_seed,
        knowledge=args.knowledge,
        reshape_enabled=not args.no_reshape,
    )
    obs = _make_obs(args)
    telemetry = _make_telemetry(args)
    try:
        with _make_executor(args, telemetry=telemetry) as executor:
            result, = executor.map_scenarios([config], obs=obs)
    finally:
        if telemetry is not None:
            telemetry.close()
    print(f"scenario: {config.describe()}")
    print(f"source {result.source}, avg degree "
          f"{result.average_degree:.2f}, reshapes {result.smrp_reshapes}, "
          f"fallback joins {result.smrp_fallback_joins}")
    rows = []
    for m in result.measurements:
        rows.append([
            str(m.member),
            f"{m.rd_spf_global:.1f}" if m.rd_spf_global is not None else "—",
            f"{m.rd_smrp_local:.1f}" if m.rd_smrp_local is not None else "—",
            f"{m.delay_spf:.1f}",
            f"{m.delay_smrp:.1f}",
        ])
    print(format_table(
        ["member", "RD SPF", "RD SMRP", "delay SPF", "delay SMRP"], rows
    ))
    if result.rd_relative:
        print(f"\nRD_relative   {summarize(result.rd_relative)}")
        print(f"D_relative    {summarize(result.delay_relative)}")
    print(f"Cost_relative {result.cost_relative:+.4f}")
    if result.unrecoverable_members:
        print(f"unrecoverable members: {result.unrecoverable_members}")
    _write_obs_report(args, obs, {
        "command": "scenario",
        "config": config.describe(),
        "jobs": args.jobs,
    })
    _write_trace_out(args, obs)
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.graph.waxman import WaxmanConfig, waxman_topology
    from repro.core.recovery import worst_case_failure
    from repro.sim.failures import FailureSchedule
    from repro.sim.protocols import SmrpSimulation

    # One DES run is a single work unit; the executor flags are validated
    # for CLI consistency but a pool would sit idle.
    _make_executor(args).close()
    if args.jobs > 1:
        print("note: simulate is a single work unit; --jobs has no effect")
    if (
        getattr(args, "progress", False)
        or getattr(args, "telemetry_out", None)
        or getattr(args, "openmetrics_out", None)
    ):
        print("note: live telemetry covers scenario sweeps; a simulate "
              "run emits no lifecycle events")

    topology = waxman_topology(
        WaxmanConfig(n=args.n, alpha=0.4, beta=0.3, seed=args.seed)
    ).topology
    rng = np.random.default_rng(args.seed + 1)
    members = [
        int(m)
        for m in rng.choice(range(1, args.n), args.members, replace=False)
    ]
    obs = _make_obs(args)
    sim = SmrpSimulation(topology, 0, d_thresh=args.d_thresh, obs=obs)
    spacing = 50.0 * max(l.delay for l in topology.links())
    for i, m in enumerate(members):
        sim.schedule_join(spacing * (i + 1), m)
    settle = spacing * (len(members) + 2)
    sim.run(until=settle)
    tree = sim.extract_tree()
    print(f"network: {topology}")
    print(f"tree after joins: {tree}")
    for m, record in sorted(sim.join_records.items()):
        latency = f"{record.latency:.1f}" if record.latency is not None else "pending"
        print(f"  member {m:3}: join latency {latency}")
    if args.fail_worst and members:
        failure = worst_case_failure(tree, members[0])
        (u, v), = failure.failed_links
        FailureSchedule().fail_link_at(settle + 1.0, u, v).arm(sim.sim, sim.network)
        sim.run(until=settle + 60 * spacing)
        print(f"\ninjected failure: {failure.describe()}")
        for record in sim.recovery_records:
            status = (
                f"restored at t={record.restored_at:.1f} "
                f"(latency {record.restoration_latency:.1f})"
                if record.restored_at is not None
                else "not restored"
            )
            print(f"  node {record.detector}: detected at "
                  f"t={record.detected_at:.1f}, {status}")
    print(f"\nmessages: {sim.network.stats.by_kind}")
    _write_obs_report(args, obs, {
        "command": "simulate",
        "n": args.n,
        "members": args.members,
        "seed": args.seed,
        "d_thresh": args.d_thresh,
        "fail_worst": bool(args.fail_worst),
    })
    _write_trace_out(args, obs)
    return 0


#: ``controller`` flags that mirror ServiceSpec fields, with their CLI
#: defaults — used to reject flag/--spec mixtures instead of silently
#: ignoring the flags.
_CONTROLLER_SPEC_FLAGS = {
    "groups": 200,
    "sources": 8,
    "n": 100,
    "alpha": 0.2,
    "topology_seed": 0,
    "member_seed": 0,
    "protocol": "smrp",
    "d_thresh": 0.3,
    "workload": "static",
    "failure": "auto",
    "shard_size": 50,
    "protect_budget": 4,
}


def _controller_spec(args: argparse.Namespace):
    """The run's ServiceSpec from ``--spec`` JSON or individual flags."""
    from repro.controller import ServiceSpec
    from repro.errors import ConfigurationError

    if args.spec is not None:
        overridden = [
            f"--{name.replace('_', '-')}"
            for name, default in _CONTROLLER_SPEC_FLAGS.items()
            if getattr(args, name) != default
        ]
        if overridden:
            raise ConfigurationError(
                f"--spec replaces the whole service spec; drop "
                f"{', '.join(sorted(overridden))}"
            )
        try:
            with open(args.spec, "r", encoding="utf-8") as handle:
                return ServiceSpec.from_json(handle.read())
        except FileNotFoundError:
            raise ConfigurationError(f"no such file: {args.spec}") from None
    return ServiceSpec(
        **{name: getattr(args, name) for name in _CONTROLLER_SPEC_FLAGS}
    )


def _cmd_controller(args: argparse.Namespace) -> int:
    from repro.errors import ConfigurationError

    try:
        spec = _controller_spec(args)
    except ConfigurationError as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2
    obs = _make_obs(args)
    telemetry = _make_telemetry(args)
    executor = _make_executor(args, telemetry=telemetry)
    scope = _ProfileScope(args, obs)
    try:
        with scope, executor:
            from repro.api import run_service

            report = run_service(spec, executor=executor, obs=obs)
    except ConfigurationError as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2
    finally:
        if telemetry is not None:
            telemetry.close()
    print(report.render_table())
    _write_obs_report(args, obs, scope.annotate({
        "command": "controller",
        "spec": spec.describe(),
        "key": spec.content_key(),
        "executor": executor.kind,
        "jobs": args.jobs,
    }))
    _write_trace_out(args, obs)
    return 0


def _cmd_protection(args: argparse.Namespace) -> int:
    from repro.experiments.figprotect import run_protection_figure

    obs = _make_obs(args)
    telemetry = _make_telemetry(args)
    executor = _make_executor(args, telemetry=telemetry)
    if args.quick:
        kwargs = {
            "rates": (0.02, 0.1),
            "n": 40,
            "group_size": 8,
            "topologies": 2,
            "member_sets": 1,
            "trials": 2,
        }
    else:
        kwargs = {}
    if args.rates:
        kwargs["rates"] = tuple(args.rates)
    scope = _ProfileScope(args, obs)
    try:
        with scope, executor:
            result = run_protection_figure(
                budget=args.budget, obs=obs, executor=executor, **kwargs
            )
    finally:
        if telemetry is not None:
            telemetry.close()
    print("--- Protection family: reactive vs precomputed recovery ---")
    print(result.render())
    _write_obs_report(args, obs, scope.annotate({
        "command": "protection",
        "quick": bool(args.quick),
        "budget": args.budget,
        "executor": executor.kind,
        "jobs": args.jobs,
    }))
    _write_trace_out(args, obs)
    return 0


def _cmd_distribution(args: argparse.Namespace) -> int:
    from repro.errors import ConfigurationError
    from repro.experiments.figdist import ENGINES, run_distribution_figure

    obs = _make_obs(args)
    telemetry = _make_telemetry(args)
    executor = _make_executor(args, telemetry=telemetry)
    if args.engines:
        engines = tuple(args.engines)
    elif args.quick:
        engines = ("smrp", "spf")
    else:
        engines = ENGINES
    if args.groups is not None:
        groups = args.groups
    else:
        groups = 1000 if args.quick else 2000
    scope = _ProfileScope(args, obs)
    try:
        with scope, executor:
            result = run_distribution_figure(
                engines=engines,
                groups=groups,
                workload=args.workload,
                failure=args.failure,
                shard_size=args.shard_size,
                obs=obs,
                executor=executor,
            )
    except ConfigurationError as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2
    finally:
        if telemetry is not None:
            telemetry.close()
    print(result.render())
    _write_obs_report(args, obs, scope.annotate({
        "command": "distribution",
        "engines": list(engines),
        "groups": groups,
        "quick": bool(args.quick),
        "executor": executor.kind,
        "jobs": args.jobs,
    }))
    return 0


def _load_report_or_fail(path: str):
    import json

    from repro.errors import ConfigurationError
    from repro.obs import load_run_report

    try:
        return load_run_report(path)
    except FileNotFoundError:
        print(f"repro: error: no such file: {path}", file=sys.stderr)
        raise _ObsError
    except (ConfigurationError, json.JSONDecodeError) as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        raise _ObsError


class _ObsError(Exception):
    """Internal: an obs subcommand already printed its error; exit 1."""


def _cmd_obs(args: argparse.Namespace) -> int:
    handlers = {
        "report": _cmd_obs_report,
        "tail": _cmd_obs_tail,
        "export": _cmd_obs_export,
        "diff": _cmd_obs_diff,
        "flame": _cmd_obs_flame,
    }
    try:
        return handlers[args.obs_command](args)
    except _ObsError:
        return 1


def _cmd_obs_report(args: argparse.Namespace) -> int:
    from repro.obs import render_run_report

    print(render_run_report(_load_report_or_fail(args.path)))
    return 0


def _cmd_obs_tail(args: argparse.Namespace) -> int:
    from repro.errors import ConfigurationError
    from repro.obs import load_flight_record, render_flight_record

    try:
        records = load_flight_record(args.path)
    except FileNotFoundError:
        print(f"repro: error: no such file: {args.path}", file=sys.stderr)
        return 1
    except ConfigurationError as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return 1
    print(render_flight_record(records, last=args.last))
    return 0


def _cmd_obs_export(args: argparse.Namespace) -> int:
    from repro.obs import render_openmetrics

    report = _load_report_or_fail(args.path)
    text = render_openmetrics(report)
    if args.out is not None:
        _check_out_dir("--out", args.out)
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"openmetrics written to {args.out}")
    else:
        sys.stdout.write(text)
    return 0


def _cmd_obs_diff(args: argparse.Namespace) -> int:
    from repro.obs import (
        diff_run_reports,
        max_regression_ratio,
        render_report_diff,
    )

    report_a = _load_report_or_fail(args.path_a)
    report_b = _load_report_or_fail(args.path_b)
    diff = diff_run_reports(report_a, report_b)
    print(render_report_diff(diff, threshold=args.fail_over))
    if (
        args.fail_over is not None
        and max_regression_ratio(diff) > args.fail_over
    ):
        print(
            f"repro: obs diff: span-time or latency-quantile ratio "
            f"exceeds --fail-over {args.fail_over:g}",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_obs_flame(args: argparse.Namespace) -> int:
    """Collapsed-stack export: one line per span path, weight = exclusive
    self-time in microseconds.  Pipe into flamegraph.pl or load into
    speedscope; the summary (frames, covered self time, wall-clock
    coverage when the report was captured with ``--profile``) goes to
    stderr so stdout stays clean collapsed-stack data."""
    from repro.obs import collapse_stacks, self_time_total

    report = _load_report_or_fail(args.path)
    spans = report.get("spans", {})
    lines = collapse_stacks(spans)
    text = "".join(line + "\n" for line in lines)
    covered = self_time_total(spans)
    if args.out is not None:
        _check_out_dir("--out", args.out)
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"collapsed stacks ({len(lines)} frames) written to {args.out}")
    else:
        sys.stdout.write(text)
    print(
        f"{len(lines)} frames, {covered:.3f}s total self time",
        file=sys.stderr,
    )
    wall = report.get("meta", {}).get("profile_wall_s")
    if isinstance(wall, (int, float)) and wall > 0:
        print(
            f"wall-clock coverage: {covered / wall:.1%} of "
            f"{wall:.3f}s measured wall",
            file=sys.stderr,
        )
    return 0


def _load_trace_or_fail(path: str):
    from repro.errors import ConfigurationError
    from repro.obs import read_trace_ndjson

    try:
        return read_trace_ndjson(path)
    except FileNotFoundError:
        print(f"repro: error: no such file: {path}", file=sys.stderr)
        raise _ObsError
    except ConfigurationError as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        raise _ObsError


def _cmd_trace(args: argparse.Namespace) -> int:
    handlers = {
        "analyze": _cmd_trace_analyze,
        "export": _cmd_trace_export,
        "diff": _cmd_trace_diff,
        "figure": _cmd_trace_figure,
    }
    try:
        return handlers[args.trace_command](args)
    except _ObsError:
        return 1


def _cmd_trace_analyze(args: argparse.Namespace) -> int:
    from repro.obs import TraceAnalyzer

    trace_file = _load_trace_or_fail(args.path)
    analyzer = TraceAnalyzer(trace_file.episodes)
    print(analyzer.render())
    if args.check:
        problems = analyzer.check()
        if problems:
            for problem in problems:
                print(f"repro: trace check: {problem}", file=sys.stderr)
            return 1
        print(
            f"trace check passed: {len(trace_file.episodes)} episodes valid",
            file=sys.stderr,
        )
    return 0


def _cmd_trace_export(args: argparse.Namespace) -> int:
    import json

    from repro.obs import chrome_trace_document
    from repro.obs.tracing import write_trace_ndjson

    trace_file = _load_trace_or_fail(args.path)
    if args.out is not None:
        _check_out_dir("--out", args.out)
    if args.format == "chrome":
        document = chrome_trace_document(trace_file.episodes)
        text = json.dumps(document, sort_keys=True, indent=1) + "\n"
        if args.out is not None:
            with open(args.out, "w", encoding="utf-8") as handle:
                handle.write(text)
            print(f"chrome trace ({len(trace_file.episodes)} episodes) "
                  f"written to {args.out} — open it at https://ui.perfetto.dev")
        else:
            sys.stdout.write(text)
        return 0
    if args.out is None:
        print(
            "repro: error: --format ndjson requires --out "
            "(the NDJSON writer targets a file)",
            file=sys.stderr,
        )
        return 1
    count = write_trace_ndjson(
        trace_file.episodes,
        args.out,
        dropped=trace_file.dropped,
        trimmed=trace_file.trimmed,
        abandoned=trace_file.abandoned,
    )
    print(f"trace ({count} episodes) written to {args.out}")
    return 0


def _cmd_trace_diff(args: argparse.Namespace) -> int:
    from repro.obs.tracing import TraceAnalyzer, diff_analyses

    file_a = _load_trace_or_fail(args.path_a)
    file_b = _load_trace_or_fail(args.path_b)
    text, max_delta = diff_analyses(
        TraceAnalyzer(file_a.episodes), TraceAnalyzer(file_b.episodes)
    )
    print(text)
    if args.fail_over is not None and max_delta > args.fail_over:
        print(
            f"repro: trace diff: per-phase relative delta exceeds "
            f"--fail-over {args.fail_over:g}",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_trace_figure(args: argparse.Namespace) -> int:
    from repro.experiments.figphases import run_phase_figure

    obs = _make_obs(args)
    telemetry = _make_telemetry(args)
    executor = _make_executor(args, telemetry=telemetry)
    topologies, member_sets = (4, 2) if args.quick else (10, 10)
    try:
        with executor:
            result = run_phase_figure(
                topologies=topologies,
                member_sets=member_sets,
                obs=obs,
                executor=executor,
            )
    finally:
        if telemetry is not None:
            telemetry.close()
    print("--- Restoration latency breakdown by phase ---")
    print(result.render())
    _write_trace_out(args, obs)
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    import repro

    print(f"repro {repro.__version__} — SMRP (Wu & Shin, DSN 2005) reproduction")
    components = [
        ("repro.graph", "Waxman / transit-stub / N-level topologies"),
        ("repro.routing", "SPF, routing tables, KSP, disjoint pairs, LSDB"),
        ("repro.multicast", "tree structure, SPF/TM baselines, protection"),
        ("repro.core", "SMRP: SHR, join/leave, reshaping, recovery, domains"),
        ("repro.sim", "discrete-event simulator + distributed protocol"),
        ("repro.metrics", "RD/delay/cost metrics and confidence intervals"),
        ("repro.experiments", "figure drivers and parameter sweeps"),
        ("repro.experiments.exec",
         "ExperimentSpec, executors, resilience, substrate cache"),
        ("repro.controller",
         "multi-group service: ServiceSpec, controller, sharded runs"),
        ("repro.obs",
         "metrics + hdr histograms, span/self-time profiling, run "
         "reports, live telemetry"),
        ("repro.api",
         "stable facade: sessions, run_scenario/run_sweep/"
         "build_figure/run_service"),
    ]
    for name, description in components:
        print(f"  {name:24} {description}")
    print("\nparallel execution: figures/scenario/simulate accept "
          "--jobs N and --executor {serial,process,resilient};\n"
          "  --jobs N > 1 fans scenarios over a process pool with "
          "deterministic seed-order merging.\n"
          "resilient execution: --timeout S, --retries N, "
          "--checkpoint-dir DIR, --resume;\n"
          "  crashed/hung scenarios are retried with backoff and completed "
          "results persist for resume,\n"
          "  with output byte-identical to a clean serial run.\n"
          "live telemetry: --progress (stderr progress line), "
          "--telemetry-out PATH (NDJSON flight record),\n"
          "  --openmetrics-out PATH (scrapeable textfile); all "
          "observe-only.  repro obs tail/export/diff\n"
          "  replay a flight record, render OpenMetrics, and compare two "
          "run reports.\n"
          "restoration tracing: --trace-out PATH records causal "
          "restoration episodes in simulated time;\n"
          "  repro trace analyze/export/diff/figure render per-phase "
          "latency breakdowns, Perfetto-loadable\n"
          "  Chrome trace JSON, analysis diffs, and the "
          "latency-by-phase figure.\n"
          "latency distributions & profiling: repro distribution prints "
          "per-engine p50/p90/p99/p99.9\n"
          "  restoration-latency tables from hdr histograms; --profile "
          "prints a self-time profile to stderr;\n"
          "  repro obs flame turns a captured report into collapsed "
          "stacks for flamegraph tooling.")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
