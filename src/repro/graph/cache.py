"""Content-keyed topology caching.

Every seeded sweep of the evaluation re-faces the *same* random ensemble:
the paper varies one parameter at a time over a common topology grid
(§4.1), so a four-value ``D_thresh`` sweep regenerates each Waxman graph
four times — and each member-set scenario regenerates it again.  A
:class:`TopologyCache` keyed on the full :class:`~repro.graph.waxman.WaxmanConfig`
(``n``, ``alpha``, ``beta``, ``seed``, …) makes that substrate a build-once
artifact.

Sharing is safe because the experiment layers never mutate a scenario
topology: failures are modelled as read-only masks
(:class:`~repro.routing.failure_view.FailureSet`), and the hierarchical
protocols build *new* subgraphs rather than editing the shared one.

Cache activity is reported through ``repro.obs`` counters
(``cache.topology.hits`` / ``.misses`` / ``.evictions``) when an
observability handle is supplied at lookup time.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Generic, Hashable, TypeVar

from repro.errors import ConfigurationError
from repro.graph.topology import Topology
from repro.graph.waxman import WaxmanConfig, waxman_topology

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")

#: Default bound on retained topologies; a full 10-topology grid fits with
#: room for neighbouring sweeps.
DEFAULT_MAX_TOPOLOGIES = 64

#: Internal marker distinguishing "absent" from a legitimately-``None``
#: cached value.
_MISSING = object()


class LruCache(Generic[K, V]):
    """A small bounded mapping with least-recently-used eviction.

    Dependency-free and deliberately minimal: ``get``/``put`` plus hit,
    miss, and eviction accounting.  Shared by the topology and route
    caches so both enforce the same eviction bound semantics.
    """

    def __init__(self, max_entries: int) -> None:
        if max_entries < 1:
            raise ConfigurationError(
                f"cache bound must be >= 1, got {max_entries}"
            )
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._entries: OrderedDict[K, V] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: K) -> bool:
        return key in self._entries

    def peek(self, key: K, default: V | None = None) -> V | None:
        """Look up ``key`` without touching hit/miss accounting.

        Freshens recency on a hit (it *is* a use) but records no
        statistics: for internal lookups — e.g. the failure-aware route
        cache consulting its own failure-free baseline mid-miss — that
        must not distort the caller-facing hit rate.
        """
        try:
            value = self._entries[key]
        except KeyError:
            return default
        self._entries.move_to_end(key)
        return value

    def store(self, key: K, value: V) -> bool:
        """Insert (or refresh) an entry; returns True if one was evicted."""
        self._entries[key] = value
        self._entries.move_to_end(key)
        if len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1
            return True
        return False

    def get_or_build(self, key: K, build: Callable[[], V]) -> tuple[V, bool, bool]:
        """Return ``(value, hit, evicted)``; on a miss, build and store.

        ``evicted`` is True when storing the new entry pushed the oldest
        one out — the caller can attribute the eviction to a metric.
        """
        value = self.peek(key, _MISSING)
        if value is _MISSING:
            self.misses += 1
            value = build()
            evicted = self.store(key, value)
            return value, False, evicted
        self.hits += 1
        return value, True, False

    def clear(self) -> None:
        self._entries.clear()

    def __repr__(self) -> str:
        return (
            f"LruCache(size={len(self)}/{self.max_entries}, "
            f"hits={self.hits}, misses={self.misses}, "
            f"evictions={self.evictions})"
        )


class TopologyCache:
    """Build-once storage for generated topologies, keyed by config.

    Examples
    --------
    >>> cache = TopologyCache(max_entries=8)
    >>> cfg = WaxmanConfig(n=20, alpha=0.4, seed=1)
    >>> a = cache.get(cfg)
    >>> b = cache.get(cfg)
    >>> a is b
    True
    """

    def __init__(self, max_entries: int = DEFAULT_MAX_TOPOLOGIES) -> None:
        self._lru: LruCache[WaxmanConfig, Topology] = LruCache(max_entries)

    def get(self, config: WaxmanConfig, obs=None) -> Topology:
        """The (shared, treat-as-immutable) topology for ``config``."""
        topology, hit, evicted = self._lru.get_or_build(
            config, lambda: self._build(config)
        )
        if obs is not None:
            name = "cache.topology.hits" if hit else "cache.topology.misses"
            obs.counter(name).inc()
            if evicted:
                obs.counter("cache.topology.evictions").inc()
            obs.gauge("cache.topology.size").set(len(self._lru))
            lookups = self._lru.hits + self._lru.misses
            obs.gauge("cache.topology.hit_rate").set(self._lru.hits / lookups)
        return topology

    @staticmethod
    def _build(config: WaxmanConfig) -> Topology:
        topology = waxman_topology(config).topology
        # Compile the CSR routing substrate at build time: cached
        # topologies are shared across many scenarios, so every consumer
        # then starts with the kernels' arrays already hot.
        topology.csr()
        return topology

    @property
    def stats(self) -> dict[str, int]:
        return {
            "size": len(self._lru),
            "max_entries": self._lru.max_entries,
            "hits": self._lru.hits,
            "misses": self._lru.misses,
            "evictions": self._lru.evictions,
        }

    def clear(self) -> None:
        self._lru.clear()

    def __repr__(self) -> str:
        return f"TopologyCache({self._lru!r})"
