"""N-level nested domain topologies (paper §3.3.3).

The paper presents its recovery architecture on a 2-level transit-stub
network but notes that it "can be easily generalized into an N-level
architecture": domains nest, each with an agent (gateway) connecting it
to its parent domain.  This generator produces such nested topologies:

- one **root domain** (level 0) generated as a Waxman graph,
- each domain at level *k* sponsors ``fanout`` child domains at level
  *k+1*, each a Waxman graph attached through a gateway link (plus an
  optional redundant attachment, so the parent domain can detour around
  a failed primary attachment — the Figure 6 recovery story),
- members live in the **leaf domains** (the paper: "members are usually
  clustered into the lowest level").

The result records the domain tree (parent/children), each domain's
gateway and attachment, and the domain of every node, which is exactly
what :class:`repro.core.nlevel.NLevelMulticast` needs to scope recovery.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.graph.placement import euclidean
from repro.graph.topology import NodeId, Topology
from repro.graph.waxman import WaxmanConfig, waxman_topology


@dataclass(frozen=True)
class LevelSpec:
    """How domains at one level look and how many children they sponsor.

    ``fanout`` is the number of child domains *each* domain at this level
    sponsors at the next level (0 for the leaf level).
    """

    size: int
    fanout: int = 0
    alpha: float = 0.6
    beta: float = 0.5
    scale: float = 50.0
    gateway_delay: float = 8.0
    gateway_redundancy: int = 2
    standby_gateways: int = 1

    def __post_init__(self) -> None:
        if self.size < 2:
            raise ConfigurationError(f"domain size must be >= 2, got {self.size}")
        if self.fanout < 0:
            raise ConfigurationError(f"fanout must be >= 0, got {self.fanout}")
        if self.gateway_delay <= 0:
            raise ConfigurationError("gateway_delay must be positive")
        if not 1 <= self.gateway_redundancy <= self.size:
            raise ConfigurationError(
                f"gateway_redundancy must be in [1, {self.size}]"
            )
        if not 0 <= self.standby_gateways < self.size:
            raise ConfigurationError(
                f"standby_gateways must be in [0, {self.size}), got "
                f"{self.standby_gateways}"
            )


@dataclass
class NestedDomain:
    """One domain in the hierarchy."""

    domain_id: int
    level: int
    nodes: set[NodeId] = field(default_factory=set)
    gateway: NodeId | None = None  # entry node (None for the root domain)
    attachments: tuple[NodeId, ...] = ()  # parent-domain nodes it links to
    #: Standby agents: also linked into the parent domain, ready to take
    #: over when the primary gateway node fails (agent failover).
    standbys: tuple[NodeId, ...] = ()
    parent: int | None = None
    children: list[int] = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        return not self.children

    @property
    def is_root(self) -> bool:
        return self.parent is None


@dataclass
class NLevelNetwork:
    """Generated topology plus the domain hierarchy."""

    topology: Topology
    specs: tuple[LevelSpec, ...]
    domains: list[NestedDomain] = field(default_factory=list)
    domain_of: dict[NodeId, int] = field(default_factory=dict)

    @property
    def root(self) -> NestedDomain:
        return self.domains[0]

    @property
    def depth(self) -> int:
        return len(self.specs)

    def leaf_domains(self) -> list[NestedDomain]:
        return [d for d in self.domains if d.is_leaf]

    def domain_path(self, domain_id: int) -> list[int]:
        """Domain ids from the root down to ``domain_id`` (inclusive)."""
        path = [domain_id]
        cursor = self.domains[domain_id]
        while cursor.parent is not None:
            path.append(cursor.parent)
            cursor = self.domains[cursor.parent]
        path.reverse()
        return path

    def lowest_common_ancestor(self, a: int, b: int) -> int:
        """The deepest domain containing both domain subtrees."""
        path_a = self.domain_path(a)
        path_b = self.domain_path(b)
        lca = path_a[0]
        for x, y in zip(path_a, path_b):
            if x != y:
                break
            lca = x
        return lca


def n_level_topology(specs: list[LevelSpec], seed: int = 0) -> NLevelNetwork:
    """Generate an N-level nested topology from per-level specs.

    ``specs[0]`` is the root domain; ``specs[k].fanout`` children are
    created at level ``k+1`` for every level-``k`` domain, so the list
    must end with a ``fanout=0`` leaf level.
    """
    if not specs:
        raise ConfigurationError("at least one level spec is required")
    if specs[-1].fanout != 0:
        raise ConfigurationError("the last level must have fanout 0")
    for k, spec in enumerate(specs[:-1]):
        if spec.fanout == 0:
            raise ConfigurationError(f"non-leaf level {k} must have fanout > 0")

    rng = np.random.default_rng(seed)
    topo = Topology(f"nlevel(depth={len(specs)},seed={seed})")
    network = NLevelNetwork(topology=topo, specs=tuple(specs))

    next_node = 0
    frontier: list[int] = []

    def create_domain(level: int, parent: NestedDomain | None) -> NestedDomain:
        nonlocal next_node
        spec = specs[level]
        sub = waxman_topology(
            WaxmanConfig(
                n=spec.size,
                alpha=spec.alpha,
                beta=spec.beta,
                scale=spec.scale,
                seed=int(rng.integers(2**31 - 1)),
            )
        ).topology
        domain = NestedDomain(
            domain_id=len(network.domains),
            level=level,
            parent=None if parent is None else parent.domain_id,
        )
        offset = next_node
        for node in sub.nodes():
            topo.add_node(node + offset, pos=sub.position(node))
        for link in sub.links():
            topo.add_link(
                link.u + offset, link.v + offset, delay=link.delay, cost=link.cost
            )
        domain.nodes = {n + offset for n in sub.nodes()}
        next_node += spec.size

        if parent is not None:
            domain.gateway = _central_node(sub, offset)
            parent_nodes = sorted(parent.nodes)
            # Primary attachment rotates over the parent's nodes so child
            # domains spread out; backups go to the following nodes.
            start = len(parent.children) % len(parent_nodes)
            redundancy = min(spec.gateway_redundancy, len(parent_nodes))
            attachments = []
            for k in range(redundancy):
                target = parent_nodes[(start + k) % len(parent_nodes)]
                delay = spec.gateway_delay * (1.0 if k == 0 else 1.5)
                topo.add_link(domain.gateway, target, delay=delay)
                attachments.append(target)
            domain.attachments = tuple(attachments)
            # Standby agents: distinct domain nodes, each with its own
            # (longer) uplink to the primary attachment — alive spares
            # for agent failover.
            standbys = []
            spare_pool = [
                n + offset
                for n in sorted(
                    sub.nodes(),
                    key=lambda n: (sub.degree(n) * -1, n),
                )
                if n + offset != domain.gateway
            ]
            for k in range(min(spec.standby_gateways, len(spare_pool))):
                standby = spare_pool[k]
                topo.add_link(
                    standby, attachments[0], delay=spec.gateway_delay * 1.5
                )
                standbys.append(standby)
            domain.standbys = tuple(standbys)
            parent.children.append(domain.domain_id)
        network.domains.append(domain)
        for node in domain.nodes:
            network.domain_of[node] = domain.domain_id
        return domain

    root = create_domain(0, None)
    frontier = [root.domain_id]
    for level in range(1, len(specs)):
        next_frontier: list[int] = []
        for parent_id in frontier:
            parent = network.domains[parent_id]
            for _ in range(specs[level - 1].fanout):
                child = create_domain(level, parent)
                next_frontier.append(child.domain_id)
        frontier = next_frontier

    topo.validate()
    return network


def _central_node(sub: Topology, offset: int) -> NodeId:
    """The node nearest the domain's centroid (deterministic gateway pick)."""
    nodes = sub.nodes()
    positions = [sub.position(n) for n in nodes]
    if any(p is None for p in positions):
        return nodes[0] + offset
    cx = sum(p[0] for p in positions) / len(positions)
    cy = sum(p[1] for p in positions) / len(positions)
    best = min(nodes, key=lambda n: (euclidean(sub.position(n), (cx, cy)), n))
    return best + offset
