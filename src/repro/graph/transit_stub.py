"""Transit-stub hierarchical topologies.

Section 3.3.3 of the paper maps its 2-level hierarchical recovery
architecture onto "the current transit-stub Internet structure": stub
domains (where multicast members cluster) hang off a transit backbone, and
each domain forms an independent *recovery domain* with an agent node.

GT-ITM ships a transit-stub generator; this module is a from-scratch
equivalent at the scale the paper needs.  A single transit (backbone)
domain is generated as a Waxman graph; each transit node sponsors a number
of stub domains, each itself a small Waxman graph attached to its transit
node via a gateway link.  The result records which domain every node
belongs to so the hierarchical protocol can scope recovery.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.graph.placement import euclidean
from repro.graph.topology import NodeId, Topology
from repro.graph.waxman import WaxmanConfig, waxman_topology


@dataclass(frozen=True)
class TransitStubConfig:
    """Parameters of a 2-level transit-stub topology.

    Attributes
    ----------
    transit_nodes:
        Number of backbone routers.
    stubs_per_transit:
        Stub domains attached to each backbone router.
    stub_size:
        Routers per stub domain.
    transit_alpha / stub_alpha:
        Waxman edge densities for the backbone and for each stub domain.
    beta:
        Waxman distance-decay parameter, shared by all domains.
    transit_scale / stub_scale:
        Placement-square sides.  The backbone spans a wide area (long
        delays); each stub is compact (short delays), reflecting the
        transit-stub delay structure of real internetworks.
    gateway_delay:
        Delay of each stub-to-transit gateway link.
    gateway_redundancy:
        How many transit routers each stub gateway attaches to.  The
        paper's recovery story (Figure 6: agent A2 reconnects through its
        neighbor agent A3) requires the transit recovery domain to offer
        detours, i.e. multi-homed agents; 2 is the realistic default.
        Backup attachments use a 50% longer link, so primary routes win
        under SPF.
    seed:
        Master seed; each domain draws from a derived child seed.
    """

    transit_nodes: int = 4
    stubs_per_transit: int = 3
    stub_size: int = 8
    transit_alpha: float = 0.9
    stub_alpha: float = 0.5
    beta: float = 0.5
    transit_scale: float = 200.0
    stub_scale: float = 30.0
    gateway_delay: float = 10.0
    gateway_redundancy: int = 2
    seed: int = 0

    def __post_init__(self) -> None:
        if self.transit_nodes < 2:
            raise ConfigurationError(
                f"need at least 2 transit nodes, got {self.transit_nodes}"
            )
        if self.stubs_per_transit < 1:
            raise ConfigurationError(
                f"need at least 1 stub per transit, got {self.stubs_per_transit}"
            )
        if self.stub_size < 2:
            raise ConfigurationError(f"stub_size must be >= 2, got {self.stub_size}")
        if self.gateway_delay <= 0:
            raise ConfigurationError(
                f"gateway_delay must be positive, got {self.gateway_delay}"
            )
        if not 1 <= self.gateway_redundancy <= self.transit_nodes:
            raise ConfigurationError(
                f"gateway_redundancy must be in [1, {self.transit_nodes}], "
                f"got {self.gateway_redundancy}"
            )

    @property
    def total_nodes(self) -> int:
        return self.transit_nodes * (1 + self.stubs_per_transit * self.stub_size)


@dataclass
class Domain:
    """A recovery domain: a set of nodes plus its gateway into the parent level.

    ``level`` is 0 for the transit backbone and 1 for stub domains, matching
    the paper's L0/L1 terminology in Figure 6.  For a stub domain the
    ``gateway`` is the stub-side endpoint of the link to the transit node
    (the natural home for the domain's recovery agent), and ``attachment``
    is the transit node it connects to.
    """

    domain_id: int
    level: int
    nodes: set[NodeId] = field(default_factory=set)
    gateway: NodeId | None = None
    attachment: NodeId | None = None


@dataclass
class TransitStubResult:
    """Generated topology plus domain structure."""

    topology: Topology
    config: TransitStubConfig
    domains: list[Domain] = field(default_factory=list)
    domain_of: dict[NodeId, int] = field(default_factory=dict)

    @property
    def transit_domain(self) -> Domain:
        return self.domains[0]

    @property
    def stub_domains(self) -> list[Domain]:
        return self.domains[1:]


def transit_stub_topology(config: TransitStubConfig) -> TransitStubResult:
    """Generate a 2-level transit-stub topology.

    Node ids are assigned contiguously: transit nodes first, then each stub
    domain's nodes in generation order.
    """
    rng = np.random.default_rng(config.seed)
    seed_stream = rng.integers(0, 2**31 - 1, size=1 + config.transit_nodes
                               * config.stubs_per_transit)

    topo = Topology(
        f"transit_stub(t={config.transit_nodes},"
        f"s={config.stubs_per_transit}x{config.stub_size},seed={config.seed})"
    )
    result = TransitStubResult(topology=topo, config=config)

    transit = waxman_topology(
        WaxmanConfig(
            n=config.transit_nodes,
            alpha=config.transit_alpha,
            beta=config.beta,
            scale=config.transit_scale,
            seed=int(seed_stream[0]),
        )
    )
    transit_domain = Domain(domain_id=0, level=0)
    _splice(topo, transit.topology, offset=0)
    transit_domain.nodes = set(range(config.transit_nodes))
    result.domains.append(transit_domain)
    for node in transit_domain.nodes:
        result.domain_of[node] = 0

    next_id = config.transit_nodes
    next_seed = 1
    for transit_node in range(config.transit_nodes):
        for _ in range(config.stubs_per_transit):
            stub = waxman_topology(
                WaxmanConfig(
                    n=config.stub_size,
                    alpha=config.stub_alpha,
                    beta=config.beta,
                    scale=config.stub_scale,
                    seed=int(seed_stream[next_seed]),
                )
            )
            next_seed += 1
            domain = Domain(domain_id=len(result.domains), level=1)
            _splice(topo, stub.topology, offset=next_id)
            domain.nodes = set(range(next_id, next_id + config.stub_size))
            # The gateway is the stub node closest to the stub's own centre —
            # deterministic given the stub layout.
            gateway = _central_node(stub.topology, base=next_id)
            domain.gateway = gateway
            domain.attachment = transit_node
            topo.add_link(gateway, transit_node, delay=config.gateway_delay)
            # Backup attachments (multi-homing): longer links to further
            # transit routers, giving the transit recovery domain detours.
            for k in range(1, config.gateway_redundancy):
                backup = (transit_node + k) % config.transit_nodes
                topo.add_link(
                    gateway, backup, delay=config.gateway_delay * 1.5
                )
            result.domains.append(domain)
            for node in domain.nodes:
                result.domain_of[node] = domain.domain_id
            next_id += config.stub_size

    topo.validate()
    return result


def _splice(target: Topology, source: Topology, offset: int) -> None:
    """Copy ``source`` into ``target`` with node ids shifted by ``offset``."""
    for node in source.nodes():
        target.add_node(node + offset, pos=source.position(node))
    for link in source.links():
        target.add_link(
            link.u + offset, link.v + offset, delay=link.delay, cost=link.cost
        )


def _central_node(stub: Topology, base: int) -> NodeId:
    """Pick the stub node closest to the centroid of the stub's positions."""
    nodes = stub.nodes()
    positions = [stub.position(n) for n in nodes]
    if any(p is None for p in positions):
        return base + nodes[0]
    cx = sum(p[0] for p in positions) / len(positions)
    cy = sum(p[1] for p in positions) / len(positions)
    best = min(nodes, key=lambda n: (euclidean(stub.position(n), (cx, cy)), n))
    return base + best
