"""Delay/cost-weighted network topologies.

A :class:`Topology` is an undirected graph whose links carry two positive
weights:

``delay``
    The transmission latency across the link.  The paper's end-to-end delay
    metric and the recovery-distance metric are both sums of link delays.

``cost``
    The resource cost of using the link.  The paper's tree-cost metric is a
    sum of link costs.  By default ``cost == delay`` (as in the paper's
    figures, where one number labels each link), but the two can differ.

The class wraps :class:`networkx.Graph` for storage while exposing a small,
explicit API so the rest of the library never touches raw attribute dicts.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

import networkx as nx

from repro.errors import TopologyError

NodeId = int
Edge = tuple[NodeId, NodeId]

#: Process-wide source of topology cache tokens.  Every Topology instance
#: draws a fresh token at construction and after every mutation, so a token
#: identifies one *state* of one instance — never reused, even after the
#: instance is garbage-collected (unlike ``id()``).
_CACHE_TOKENS = itertools.count(1)


def edge_key(u: NodeId, v: NodeId) -> Edge:
    """Return the canonical (sorted) form of an undirected edge.

    Undirected links are stored and compared in canonical form so that
    ``(u, v)`` and ``(v, u)`` always refer to the same link.
    """
    return (u, v) if u <= v else (v, u)


@dataclass(frozen=True)
class Link:
    """An undirected link with its weights.

    Instances are value objects: two links are equal when they connect the
    same endpoints with the same weights.
    """

    u: NodeId
    v: NodeId
    delay: float
    cost: float

    def __post_init__(self) -> None:
        if self.delay <= 0:
            raise TopologyError(f"link {self.key} has non-positive delay {self.delay}")
        if self.cost <= 0:
            raise TopologyError(f"link {self.key} has non-positive cost {self.cost}")

    @property
    def key(self) -> Edge:
        """Canonical endpoint pair identifying this link."""
        return edge_key(self.u, self.v)

    def other(self, node: NodeId) -> NodeId:
        """Return the endpoint opposite ``node``."""
        if node == self.u:
            return self.v
        if node == self.v:
            return self.u
        raise TopologyError(f"node {node} is not an endpoint of link {self.key}")


class Topology:
    """An undirected, weighted network topology.

    Parameters
    ----------
    name:
        Human-readable identifier used in experiment reports.

    Examples
    --------
    >>> topo = Topology("triangle")
    >>> for n in (0, 1, 2):
    ...     topo.add_node(n)
    >>> _ = topo.add_link(0, 1, delay=1.0)
    >>> _ = topo.add_link(1, 2, delay=2.0)
    >>> _ = topo.add_link(0, 2, delay=2.5)
    >>> topo.delay(0, 1)
    1.0
    >>> sorted(topo.neighbors(1))
    [0, 2]
    """

    def __init__(self, name: str = "topology") -> None:
        self.name = name
        self._graph = nx.Graph()
        self._adjacency_cache: dict[NodeId, dict[NodeId, float]] | None = None
        self._csr_cache = None
        self._cache_token = next(_CACHE_TOKENS)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(self, node: NodeId, pos: tuple[float, float] | None = None) -> None:
        """Add a node, optionally with a 2-D position (used by Waxman)."""
        if node in self._graph:
            raise TopologyError(f"node {node} already exists")
        self._graph.add_node(node, pos=pos)
        self._invalidate_caches()

    def add_link(
        self, u: NodeId, v: NodeId, delay: float, cost: float | None = None
    ) -> Link:
        """Add an undirected link; ``cost`` defaults to ``delay``.

        Returns the created :class:`Link`.
        """
        if u == v:
            raise TopologyError(f"self-loop on node {u} is not allowed")
        for node in (u, v):
            if node not in self._graph:
                raise TopologyError(f"node {node} does not exist")
        if self._graph.has_edge(u, v):
            raise TopologyError(f"link {edge_key(u, v)} already exists")
        link = Link(*edge_key(u, v), delay=delay, cost=cost if cost is not None else delay)
        self._graph.add_edge(link.u, link.v, delay=link.delay, cost=link.cost)
        self._invalidate_caches()
        return link

    def remove_link(self, u: NodeId, v: NodeId) -> None:
        """Permanently remove a link (topology change, not a failure)."""
        if not self._graph.has_edge(u, v):
            raise TopologyError(f"link {edge_key(u, v)} does not exist")
        self._graph.remove_edge(u, v)
        self._invalidate_caches()

    def remove_node(self, node: NodeId) -> None:
        """Permanently remove a node and its incident links."""
        if node not in self._graph:
            raise TopologyError(f"node {node} does not exist")
        self._graph.remove_node(node)
        self._invalidate_caches()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return self._graph.number_of_nodes()

    @property
    def num_links(self) -> int:
        return self._graph.number_of_edges()

    def nodes(self) -> list[NodeId]:
        """All node ids, sorted for determinism."""
        return sorted(self._graph.nodes)

    def links(self) -> list[Link]:
        """All links, in canonical-key order."""
        out = []
        for u, v, data in self._graph.edges(data=True):
            a, b = edge_key(u, v)
            out.append(Link(a, b, delay=data["delay"], cost=data["cost"]))
        out.sort(key=lambda link: link.key)
        return out

    def has_node(self, node: NodeId) -> bool:
        return node in self._graph

    def has_link(self, u: NodeId, v: NodeId) -> bool:
        return self._graph.has_edge(u, v)

    def link(self, u: NodeId, v: NodeId) -> Link:
        """Return the :class:`Link` between ``u`` and ``v``."""
        if not self._graph.has_edge(u, v):
            raise TopologyError(f"link {edge_key(u, v)} does not exist")
        data = self._graph.edges[u, v]
        a, b = edge_key(u, v)
        return Link(a, b, delay=data["delay"], cost=data["cost"])

    def delay(self, u: NodeId, v: NodeId) -> float:
        return self.link(u, v).delay

    def cost(self, u: NodeId, v: NodeId) -> float:
        return self.link(u, v).cost

    def neighbors(self, node: NodeId) -> Iterator[NodeId]:
        if node not in self._graph:
            raise TopologyError(f"node {node} does not exist")
        return iter(sorted(self._graph.neighbors(node)))

    def degree(self, node: NodeId) -> int:
        if node not in self._graph:
            raise TopologyError(f"node {node} does not exist")
        return self._graph.degree(node)

    def average_degree(self) -> float:
        """Realised average node degree (2E/N)."""
        if self.num_nodes == 0:
            return 0.0
        return 2.0 * self.num_links / self.num_nodes

    def position(self, node: NodeId) -> tuple[float, float] | None:
        """The node's planar position, if one was assigned."""
        if node not in self._graph:
            raise TopologyError(f"node {node} does not exist")
        return self._graph.nodes[node].get("pos")

    def path_delay(self, path: Iterable[NodeId]) -> float:
        """Sum of link delays along a node path."""
        return self._path_weight(path, "delay")

    def path_cost(self, path: Iterable[NodeId]) -> float:
        """Sum of link costs along a node path."""
        return self._path_weight(path, "cost")

    def _path_weight(self, path: Iterable[NodeId], attr: str) -> float:
        nodes = list(path)
        total = 0.0
        for u, v in zip(nodes, nodes[1:]):
            if not self._graph.has_edge(u, v):
                raise TopologyError(f"path uses missing link {edge_key(u, v)}")
            total += self._graph.edges[u, v][attr]
        return total

    def is_connected(self) -> bool:
        if self.num_nodes == 0:
            return True
        return nx.is_connected(self._graph)

    def connected_components(self) -> list[set[NodeId]]:
        return [set(c) for c in nx.connected_components(self._graph)]

    # ------------------------------------------------------------------
    # Views and export
    # ------------------------------------------------------------------
    def _invalidate_caches(self) -> None:
        """Mutation hook: drop derived state and advance the cache token."""
        self._adjacency_cache = None
        self._csr_cache = None
        self._cache_token = next(_CACHE_TOKENS)

    def cache_token(self) -> int:
        """Opaque token identifying this topology *state* for caching.

        Two calls return the same token iff the topology has not been
        mutated in between; tokens are never reused across instances, so
        ``(cache_token(), …)`` keys are safe in long-lived caches (see
        :class:`repro.routing.route_cache.RouteCache`).
        """
        return self._cache_token

    def graph_view(self) -> nx.Graph:
        """Read-only view of the underlying networkx graph.

        Exposed for algorithms (e.g. cross-validation against networkx in
        tests); mutation must go through the :class:`Topology` API.
        """
        return self._graph.copy(as_view=True)

    def adjacency(self) -> Mapping[NodeId, dict[NodeId, float]]:
        """Delay-weighted adjacency mapping ``{u: {v: delay}}``.

        Cached (and invalidated on mutation): shortest-path computations
        call this on every invocation, thousands of times per experiment.
        Callers must treat the result as read-only.
        """
        if self._adjacency_cache is None:
            self._adjacency_cache = {
                u: {v: data["delay"] for v, data in self._graph.adj[u].items()}
                for u in self._graph.nodes
            }
        return self._adjacency_cache

    def csr(self):
        """The compiled :class:`~repro.routing.csr.CsrGraph` for this state.

        Built lazily on first use and invalidated on mutation, like
        :meth:`adjacency`.  All SPF kernels in :mod:`repro.routing.spf`
        run over this compiled form; :class:`~repro.graph.cache.TopologyCache`
        pre-compiles it at build time so cached topologies arrive hot.
        """
        if self._csr_cache is None:
            # Imported here: repro.routing.csr imports NodeId from this
            # module, so a top-level import would be circular.
            from repro.routing.csr import CsrGraph

            self._csr_cache = CsrGraph(self)
        return self._csr_cache

    def copy(self, name: str | None = None) -> "Topology":
        """Deep copy; topology mutations on the copy do not affect this one."""
        clone = Topology(name or self.name)
        clone._graph = self._graph.copy()
        return clone

    def validate(self) -> None:
        """Raise :class:`TopologyError` if any structural invariant fails.

        Checks: positive weights, no self-loops, and (when positions exist)
        positions present on every node.
        """
        positioned = 0
        for node in self._graph.nodes:
            if self._graph.nodes[node].get("pos") is not None:
                positioned += 1
        if positioned not in (0, self.num_nodes):
            raise TopologyError(
                f"{self.name}: {positioned}/{self.num_nodes} nodes have positions; "
                "positions must be assigned to all nodes or none"
            )
        for u, v, data in self._graph.edges(data=True):
            if u == v:
                raise TopologyError(f"{self.name}: self-loop on node {u}")
            if data.get("delay", 0) <= 0 or data.get("cost", 0) <= 0:
                raise TopologyError(
                    f"{self.name}: link {edge_key(u, v)} has non-positive weight"
                )

    def __repr__(self) -> str:
        return (
            f"Topology(name={self.name!r}, nodes={self.num_nodes}, "
            f"links={self.num_links}, avg_degree={self.average_degree():.2f})"
        )
