"""Waxman random topologies (the paper's GT-ITM flat random model).

The paper generates evaluation networks with GT-ITM using Waxman's model:
nodes are scattered randomly in the plane and each pair ``(u, v)`` is joined
by a link with probability

.. math::

    P(u, v) = \\alpha \\cdot e^{-d(u, v) / (\\beta L)}

where ``d(u, v)`` is the Euclidean distance between the nodes and ``L`` is
the maximum pairwise distance.  Increasing α increases edge density;
increasing β favours long links.  The paper fixes β and sweeps α to control
the average node degree (§4.1), reporting the realised degree under each α.

Raw Waxman graphs can be disconnected, especially at small α.  GT-ITM's
users typically regenerate or repair such graphs; we repair deterministically
by linking the closest pair of nodes in different components, and record how
many repair links were added so experiments can report it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.graph.placement import (
    euclidean,
    max_pairwise_distance,
    uniform_placement,
)
from repro.graph.topology import Topology


@dataclass(frozen=True)
class WaxmanConfig:
    """Parameters of a Waxman topology.

    Attributes
    ----------
    n:
        Number of nodes (the paper uses N = 100).
    alpha:
        Edge-density parameter in (0, 1] (the paper sweeps 0.15–0.3).
    beta:
        Distance-decay parameter in (0, 1]; the paper fixes it (§4.1).
        We default to 0.5, a conventional GT-ITM choice.
    scale:
        Side of the placement square.  Only sets the delay unit.
    min_delay:
        Lower bound applied to link delays so that near-coincident nodes
        never produce zero-delay links.
    delay_model:
        ``"distance"`` — delay equals Euclidean distance (GT-ITM's default
        semantics, matches how the paper labels links with distances); or
        ``"uniform"`` — delay drawn uniformly from [min_delay, scale].
    ensure_connected:
        Repair disconnected graphs by joining closest cross-component pairs.
    seed:
        Seed for the dedicated random generator; every topology is fully
        reproducible from its config.
    """

    n: int
    alpha: float
    beta: float = 0.5
    scale: float = 100.0
    min_delay: float = 1.0
    delay_model: str = "distance"
    ensure_connected: bool = True
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n < 2:
            raise ConfigurationError(f"Waxman topology needs n >= 2, got {self.n}")
        if not 0 < self.alpha <= 1:
            raise ConfigurationError(f"alpha must be in (0, 1], got {self.alpha}")
        if not 0 < self.beta <= 1:
            raise ConfigurationError(f"beta must be in (0, 1], got {self.beta}")
        if self.scale <= 0:
            raise ConfigurationError(f"scale must be positive, got {self.scale}")
        if self.min_delay <= 0:
            raise ConfigurationError(
                f"min_delay must be positive, got {self.min_delay}"
            )
        if self.delay_model not in ("distance", "uniform"):
            raise ConfigurationError(
                f"unknown delay_model {self.delay_model!r}; "
                "expected 'distance' or 'uniform'"
            )


@dataclass
class WaxmanResult:
    """A generated topology together with generation statistics."""

    topology: Topology
    config: WaxmanConfig
    repair_links: int = 0
    components_before_repair: int = 1
    positions: list[tuple[float, float]] = field(default_factory=list)

    @property
    def average_degree(self) -> float:
        return self.topology.average_degree()


def waxman_topology(config: WaxmanConfig) -> WaxmanResult:
    """Generate a Waxman random topology from ``config``.

    Returns a :class:`WaxmanResult`; the topology's nodes are ``0..n-1``.
    """
    rng = np.random.default_rng(config.seed)
    positions = uniform_placement(config.n, rng, scale=config.scale)
    diameter = max_pairwise_distance(positions)
    if diameter == 0.0:
        # All nodes coincide (probability zero, but be explicit): treat every
        # pair as distance zero, i.e. edge probability alpha for all pairs.
        diameter = 1.0

    topo = Topology(
        f"waxman(n={config.n},alpha={config.alpha},beta={config.beta},seed={config.seed})"
    )
    for node, pos in enumerate(positions):
        topo.add_node(node, pos=pos)

    for u in range(config.n):
        for v in range(u + 1, config.n):
            dist = euclidean(positions[u], positions[v])
            probability = config.alpha * math.exp(-dist / (config.beta * diameter))
            if rng.random() < probability:
                topo.add_link(u, v, delay=_link_delay(config, dist, rng))

    result = WaxmanResult(topology=topo, config=config, positions=positions)
    result.components_before_repair = len(topo.connected_components())
    if config.ensure_connected and result.components_before_repair > 1:
        result.repair_links = _repair_connectivity(topo, positions, config, rng)
    return result


def _link_delay(
    config: WaxmanConfig, dist: float, rng: np.random.Generator
) -> float:
    if config.delay_model == "distance":
        return max(dist, config.min_delay)
    return float(config.min_delay + rng.random() * (config.scale - config.min_delay))


def _repair_connectivity(
    topo: Topology,
    positions: list[tuple[float, float]],
    config: WaxmanConfig,
    rng: np.random.Generator,
) -> int:
    """Join components by adding the shortest possible cross-component links.

    Deterministic given the component structure: at each step the closest
    pair of nodes in different components is linked.  Returns the number of
    links added.
    """
    added = 0
    while True:
        components = topo.connected_components()
        if len(components) <= 1:
            return added
        # Find the globally closest cross-component pair.
        best: tuple[float, int, int] | None = None
        for i, comp_a in enumerate(components):
            for comp_b in components[i + 1 :]:
                for u in comp_a:
                    for v in comp_b:
                        dist = euclidean(positions[u], positions[v])
                        key = (dist, *sorted((u, v)))
                        if best is None or key < best:
                            best = key
        assert best is not None
        dist, u, v = best
        topo.add_link(u, v, delay=_link_delay(config, dist, rng))
        added += 1


def calibrate_alpha_for_degree(
    target_degree: float,
    n: int = 100,
    beta: float = 0.5,
    seeds: tuple[int, ...] = (0, 1, 2),
    tolerance: float = 0.25,
    max_iterations: int = 30,
) -> float:
    """Find an α whose Waxman graphs achieve a target average degree.

    The paper reports the realised average node degree under each α value
    (Figure 9 annotates the x-axis with it) and mentions a follow-up
    experiment at average degree 10.  This helper inverts the α → degree
    relationship by bisection over a small seed ensemble.
    """
    if target_degree <= 0:
        raise ConfigurationError(f"target degree must be positive, got {target_degree}")
    lo, hi = 1e-3, 1.0

    def mean_degree(alpha: float) -> float:
        total = 0.0
        for seed in seeds:
            cfg = WaxmanConfig(n=n, alpha=alpha, beta=beta, seed=seed)
            total += waxman_topology(cfg).average_degree
        return total / len(seeds)

    if mean_degree(hi) < target_degree:
        # Even alpha=1 cannot reach the target under this beta/n.
        raise ConfigurationError(
            f"target degree {target_degree} unreachable with n={n}, beta={beta}"
        )
    for _ in range(max_iterations):
        mid = (lo + hi) / 2.0
        degree = mean_degree(mid)
        if abs(degree - target_degree) <= tolerance:
            return mid
        if degree < target_degree:
            lo = mid
        else:
            hi = mid
    return (lo + hi) / 2.0
