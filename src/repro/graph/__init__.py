"""Network topology substrate.

The paper generates its evaluation topologies with GT-ITM using the Waxman
random-graph model; this subpackage provides a from-scratch equivalent:

- :mod:`repro.graph.topology` — the :class:`~repro.graph.topology.Topology`
  container (delay/cost-weighted undirected graph with validation helpers),
- :mod:`repro.graph.placement` — node placement models on the plane,
- :mod:`repro.graph.waxman` — the Waxman model (flat random graphs),
- :mod:`repro.graph.transit_stub` — transit-stub hierarchical topologies,
- :mod:`repro.graph.generators` — deterministic fixtures, including the
  paper's worked-example topologies (Figures 1 and 4),
- :mod:`repro.graph.cache` — content-keyed topology caching for seeded
  sweeps (build each Waxman graph once per process).
"""

from repro.graph.cache import LruCache, TopologyCache
from repro.graph.topology import Link, Topology
from repro.graph.placement import grid_jitter_placement, uniform_placement
from repro.graph.waxman import WaxmanConfig, waxman_topology
from repro.graph.transit_stub import TransitStubConfig, transit_stub_topology
from repro.graph.nlevel import LevelSpec, NLevelNetwork, n_level_topology
from repro.graph.generators import (
    figure1_topology,
    figure4_topology,
    grid_topology,
    line_topology,
    ring_topology,
    star_topology,
)

__all__ = [
    "Link",
    "LruCache",
    "Topology",
    "TopologyCache",
    "uniform_placement",
    "grid_jitter_placement",
    "WaxmanConfig",
    "waxman_topology",
    "TransitStubConfig",
    "transit_stub_topology",
    "LevelSpec",
    "NLevelNetwork",
    "n_level_topology",
    "figure1_topology",
    "figure4_topology",
    "grid_topology",
    "line_topology",
    "ring_topology",
    "star_topology",
]
