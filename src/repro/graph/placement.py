"""Node placement models for random topology generation.

The Waxman model needs every node to have a position in the plane: the edge
probability decays with Euclidean distance.  GT-ITM places nodes uniformly
at random on an integer grid; we provide that model plus a jittered-grid
variant that avoids the pathological co-located-node case.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ConfigurationError

Position = tuple[float, float]


def uniform_placement(
    n: int, rng: np.random.Generator, scale: float = 1.0
) -> list[Position]:
    """Place ``n`` nodes uniformly at random in a ``scale`` × ``scale`` square.

    This is the placement model of GT-ITM's "pure random" graphs (the model
    the paper uses, with positions then feeding the Waxman edge probability).
    """
    if n < 0:
        raise ConfigurationError(f"cannot place {n} nodes")
    if scale <= 0:
        raise ConfigurationError(f"placement scale must be positive, got {scale}")
    coords = rng.random((n, 2)) * scale
    return [(float(x), float(y)) for x, y in coords]


def grid_jitter_placement(
    n: int, rng: np.random.Generator, scale: float = 1.0, jitter: float = 0.25
) -> list[Position]:
    """Place ``n`` nodes on a jittered square grid inside a square of side ``scale``.

    Each node sits near a distinct grid cell centre, displaced by a uniform
    jitter of up to ``jitter`` cell-widths.  Compared with uniform placement
    this guarantees a minimum spread, which stabilises the realised average
    degree across seeds — useful for the α-sweep experiments where the paper
    reports the average degree achieved under each α.
    """
    if n < 0:
        raise ConfigurationError(f"cannot place {n} nodes")
    if scale <= 0:
        raise ConfigurationError(f"placement scale must be positive, got {scale}")
    if not 0 <= jitter <= 0.5:
        raise ConfigurationError(f"jitter must be in [0, 0.5], got {jitter}")
    if n == 0:
        return []
    side = math.ceil(math.sqrt(n))
    cell = scale / side
    positions: list[Position] = []
    for index in range(n):
        row, col = divmod(index, side)
        cx = (col + 0.5) * cell
        cy = (row + 0.5) * cell
        dx, dy = (rng.random(2) * 2.0 - 1.0) * jitter * cell
        positions.append((float(cx + dx), float(cy + dy)))
    return positions


def euclidean(a: Position, b: Position) -> float:
    """Euclidean distance between two planar positions."""
    return math.hypot(a[0] - b[0], a[1] - b[1])


def max_pairwise_distance(positions: list[Position]) -> float:
    """The diameter ``L`` of the node set, used by the Waxman probability.

    Computed exactly; O(n²) is fine at the paper's scales (N ≤ a few
    hundred).
    """
    if len(positions) < 2:
        return 0.0
    pts = np.asarray(positions)
    # Pairwise distances via broadcasting; memory is O(n²) but n is small.
    diff = pts[:, None, :] - pts[None, :, :]
    return float(np.sqrt((diff**2).sum(axis=2)).max())
