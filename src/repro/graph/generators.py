"""Deterministic topology fixtures.

Two families live here:

- Reconstructions of the paper's worked examples.  The paper's Figures 1/2
  (motivating example) and Figures 4/5 (join and reshape walkthrough) use
  small hand-drawn topologies.  The figures' exact link delays are partially
  recoverable from the prose (e.g. ``RD_D = 2`` for detour ``D→C``,
  ``SHR_{S,D} = 2`` after E joins, D_thresh = 0.3 rejecting F's detour
  paths); the fixtures below are engineered so that every decision the
  paper narrates comes out the same way.

- Simple parametric families (line, ring, star, grid) used by unit and
  property tests where a predictable structure matters more than realism.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.graph.topology import NodeId, Topology

#: Node labels for the paper's figures, mapped to integer ids.
FIGURE_NODES = {"S": 0, "A": 1, "B": 2, "C": 3, "D": 4, "E": 5, "F": 6, "G": 7}


def figure1_topology() -> Topology:
    """The 5-node topology of the paper's Figure 1 (and Figure 2).

    Nodes ``S, A, B, C, D`` map to ids ``0, 1, 2, 3, 4``.  Properties the
    paper relies on, all reproduced here:

    - The SPF tree for members C and D uses links ``S–A``, ``A–C``, ``A–D``
      (both members' shortest paths run through A).
    - When ``L_AD`` fails, the global detour (new SPF path) for D is
      ``D→B→S`` with recovery distance 3, while the local detour ``D→C``
      has recovery distance 2 (``RD_D = 2`` in the paper) at the price of
      a larger end-to-end delay.
    - ``SHR_{S,C} = N_{L_SA} + N_{L_AC} = 2 + 1 = 3`` on the SPF tree.
    - The disjoint tree of Figure 2 routes C via ``S→A→C`` and D via
      ``S→B→D``; a failure of ``L_SA`` then disconnects only C, which can
      recover through its neighbor D over link ``C–D``.
    """
    topo = Topology("paper-figure-1")
    for label in ("S", "A", "B", "C", "D"):
        topo.add_node(FIGURE_NODES[label])
    n = FIGURE_NODES
    topo.add_link(n["S"], n["A"], delay=1.0)
    topo.add_link(n["A"], n["C"], delay=1.0)
    topo.add_link(n["A"], n["D"], delay=1.0)
    topo.add_link(n["S"], n["B"], delay=2.0)
    topo.add_link(n["B"], n["D"], delay=1.0)
    topo.add_link(n["C"], n["D"], delay=2.0)
    return topo


def figure4_topology() -> Topology:
    """The 8-node topology of the paper's Figures 4 and 5.

    Nodes ``S, A, B, C, D, E, F, G`` map to ids ``0..7``.  With
    ``D_thresh = 0.3``, the join sequence E, G, F and the subsequent
    reshape of E unfold exactly as the paper narrates:

    - E joins over its SPF path ``E→D→A→S``; afterwards ``SHR_{S,D} = 2``.
    - G's candidates include ``G→B→S`` (merges at S, SHR 0, delay 3.0) and
      ``G→F→D→A→S`` (merges at D, SHR 2, delay 2.8).  Although the latter
      is shorter, G picks ``G→B→S`` — minimum SHR within the delay bound
      (3.0 ≤ 1.3 × 2.8 = 3.64).
    - F's paths ``F→B→S`` (3.5) and ``F→G→B→S`` (3.4) exceed the bound
      1.3 × 2.4 = 3.12, so F joins via ``F→D→A→S`` despite its higher SHR.
    - F's join raises ``SHR_{S,D}`` from 2 to 4, triggering E's reshape
      (Condition I); E switches to ``E→C→A→S`` whose merger A has the
      smaller SHR.
    """
    topo = Topology("paper-figure-4")
    for label in ("S", "A", "B", "C", "D", "E", "F", "G"):
        topo.add_node(FIGURE_NODES[label])
    n = FIGURE_NODES
    topo.add_link(n["S"], n["A"], delay=1.0)
    topo.add_link(n["A"], n["D"], delay=1.0)
    topo.add_link(n["D"], n["E"], delay=1.0)
    topo.add_link(n["A"], n["C"], delay=1.0)
    topo.add_link(n["C"], n["E"], delay=1.5)
    topo.add_link(n["S"], n["B"], delay=2.0)
    topo.add_link(n["B"], n["G"], delay=1.0)
    topo.add_link(n["G"], n["F"], delay=0.4)
    topo.add_link(n["F"], n["D"], delay=0.4)
    topo.add_link(n["F"], n["B"], delay=1.5)
    return topo


def line_topology(n: int, delay: float = 1.0) -> Topology:
    """A path ``0 – 1 – … – (n-1)`` with uniform link delays."""
    if n < 1:
        raise ConfigurationError(f"line topology needs n >= 1, got {n}")
    topo = Topology(f"line({n})")
    for node in range(n):
        topo.add_node(node)
    for node in range(n - 1):
        topo.add_link(node, node + 1, delay=delay)
    return topo


def ring_topology(n: int, delay: float = 1.0) -> Topology:
    """A cycle of ``n`` nodes with uniform link delays."""
    if n < 3:
        raise ConfigurationError(f"ring topology needs n >= 3, got {n}")
    topo = line_topology(n, delay=delay)
    topo.name = f"ring({n})"
    topo.add_link(n - 1, 0, delay=delay)
    return topo


def star_topology(n_leaves: int, delay: float = 1.0) -> Topology:
    """A hub (node 0) with ``n_leaves`` spokes."""
    if n_leaves < 1:
        raise ConfigurationError(f"star topology needs >= 1 leaf, got {n_leaves}")
    topo = Topology(f"star({n_leaves})")
    topo.add_node(0)
    for leaf in range(1, n_leaves + 1):
        topo.add_node(leaf)
        topo.add_link(0, leaf, delay=delay)
    return topo


def grid_topology(rows: int, cols: int, delay: float = 1.0) -> Topology:
    """A ``rows × cols`` grid; node ``(r, c)`` has id ``r * cols + c``.

    Grids give every interior node four link-disjoint directions, which
    makes them a convenient stress case for local-detour recovery.
    """
    if rows < 1 or cols < 1:
        raise ConfigurationError(f"grid needs positive dimensions, got {rows}x{cols}")
    topo = Topology(f"grid({rows}x{cols})")
    for r in range(rows):
        for c in range(cols):
            topo.add_node(r * cols + c, pos=(float(c), float(r)))
    for r in range(rows):
        for c in range(cols):
            node = r * cols + c
            if c + 1 < cols:
                topo.add_link(node, node + 1, delay=delay)
            if r + 1 < rows:
                topo.add_link(node, node + cols, delay=delay)
    return topo


def node_id(label: str) -> NodeId:
    """Map a paper figure label (``"S"``, ``"A"``, …) to its node id."""
    try:
        return FIGURE_NODES[label]
    except KeyError:
        raise ConfigurationError(f"unknown figure node label {label!r}") from None
