"""SMRP reproduction: Survivable Multicast Routing Protocol (DSN 2005).

A from-scratch Python implementation of Wu & Shin's SMRP — a multicast
routing protocol that builds trees with reduced path sharing so that
members disconnected by persistent failures can restore service through
short local detours — together with every substrate its evaluation needs:
Waxman/transit-stub topology generation, an OSPF-like unicast routing
plane, a PIM-style SPF multicast baseline, a discrete-event protocol
simulator, and the full experiment harness for the paper's Figures 7–10.

Quickstart
----------
>>> from repro import SMRPProtocol, SMRPConfig, waxman_topology, WaxmanConfig
>>> net = waxman_topology(WaxmanConfig(n=50, alpha=0.25, seed=7)).topology
>>> proto = SMRPProtocol(net, source=0, config=SMRPConfig(d_thresh=0.3))
>>> tree = proto.build([5, 12, 23, 31, 44])
>>> sorted(tree.members)
[5, 12, 23, 31, 44]

For running experiments (scenarios, sweeps, the paper's figures) use the
high-level facade :mod:`repro.api` — declarative ``ExperimentSpec`` plus
serial or process-parallel executors.
"""

from repro.errors import (
    ConfigurationError,
    JoinRejectedError,
    MulticastError,
    NoPathError,
    RecoveryError,
    ReproError,
    RoutingError,
    SimulationError,
    TopologyError,
    UnrecoverableFailureError,
)
from repro.graph import (
    Topology,
    TransitStubConfig,
    WaxmanConfig,
    figure1_topology,
    figure4_topology,
    transit_stub_topology,
    waxman_topology,
)
from repro.routing import FailureSet, NO_FAILURES, dijkstra, shortest_path
from repro.multicast import MulticastTree, SPFMulticastProtocol
from repro.core import (
    HierarchicalMulticast,
    SMRPConfig,
    SMRPProtocol,
    global_detour_recovery,
    local_detour_recovery,
    repair_tree,
    worst_case_failure,
)
from repro.obs import NULL_OBS, Observability

__version__ = "1.1.0"


def __getattr__(name: str):
    # ``repro.api`` pulls in the whole experiment harness; load it lazily
    # so ``import repro`` stays cheap for protocol-only users.
    if name == "api":
        import repro.api as api

        return api
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "ReproError",
    "TopologyError",
    "RoutingError",
    "NoPathError",
    "MulticastError",
    "JoinRejectedError",
    "RecoveryError",
    "UnrecoverableFailureError",
    "SimulationError",
    "ConfigurationError",
    "Topology",
    "WaxmanConfig",
    "waxman_topology",
    "TransitStubConfig",
    "transit_stub_topology",
    "figure1_topology",
    "figure4_topology",
    "FailureSet",
    "NO_FAILURES",
    "dijkstra",
    "shortest_path",
    "MulticastTree",
    "SPFMulticastProtocol",
    "SMRPProtocol",
    "SMRPConfig",
    "HierarchicalMulticast",
    "local_detour_recovery",
    "global_detour_recovery",
    "repair_tree",
    "worst_case_failure",
    "Observability",
    "NULL_OBS",
    "__version__",
]
