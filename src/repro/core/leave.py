"""Member departure (paper §3.2.2).

A leaving member sends ``Leave_Req`` toward the source along its on-tree
path.  Each traversed node clears the session's soft state and releases
the branch until a node with remaining downstream members (or the source)
is reached.  The tree mutation itself lives in
:meth:`repro.multicast.tree.MulticastTree.prune`; this module wraps it
with the protocol-visible outcome (how far the request travelled, which
resources were released) used for message accounting and tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import NotMemberError
from repro.graph.topology import NodeId
from repro.multicast.tree import MulticastTree


@dataclass(frozen=True)
class LeaveOutcome:
    """Result of processing one ``Leave_Req``."""

    member: NodeId
    released_nodes: tuple[NodeId, ...]
    stopped_at: NodeId
    hops_travelled: int


def process_leave(tree: MulticastTree, member: NodeId) -> LeaveOutcome:
    """Apply a member departure and report the walk of the ``Leave_Req``.

    ``hops_travelled`` counts the links the request crossed: one per
    released node, plus the final hop that reached the node where pruning
    stopped (which keeps serving other members).
    """
    if not tree.is_member(member):
        raise NotMemberError(member)
    parent_of = {node: tree.parent(node) for node in tree.on_tree_nodes()}
    released = tree.prune(member)
    if released:
        last_released = released[-1]
        stopped_at = parent_of[last_released]
        assert stopped_at is not None
        hops = len(released)
    else:
        # Interior member: it keeps relaying, the request stops immediately.
        stopped_at = member
        hops = 0
    return LeaveOutcome(
        member=member,
        released_nodes=tuple(released),
        stopped_at=stopped_at,
        hops_travelled=hops,
    )
