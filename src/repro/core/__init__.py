"""SMRP — the paper's primary contribution.

The Survivable Multicast Routing Protocol builds multicast trees with less
path sharing so that disconnected members can restore service through
nearby unaffected on-tree nodes.  The subpackage is organised around the
paper's own structure:

- :mod:`repro.core.shr` — the sharing metric ``SHR_{S,R}`` (Eq. 1/2),
- :mod:`repro.core.state` — the distributed per-node state of §3.2.1,
- :mod:`repro.core.candidates` — candidate-path enumeration,
- :mod:`repro.core.join` / :mod:`repro.core.leave` — §3.2.2,
- :mod:`repro.core.reshape` — tree reshaping, §3.2.3,
- :mod:`repro.core.recovery` — local/global detour restoration, §4.3.1,
- :mod:`repro.core.query` — the partial-knowledge query scheme, §3.3.1,
- :mod:`repro.core.protocol` — :class:`~repro.core.protocol.SMRPProtocol`,
  the graph-level engine tying it all together,
- :mod:`repro.core.hierarchy` — the N-level recovery architecture, §3.3.3.
"""

from repro.core.shr import shr_direct, shr_incremental, shr_table
from repro.core.state import SmrpNodeState, StateManager
from repro.core.candidates import Candidate, enumerate_candidates
from repro.core.join import PathSelection, select_path
from repro.core.query import enumerate_candidates_query
from repro.core.recovery import (
    RecoveryResult,
    global_detour_recovery,
    local_detour_recovery,
    repair_tree,
    worst_case_failure,
)
from repro.core.protocol import SMRPConfig, SMRPProtocol
from repro.core.hierarchy import HierarchicalMulticast, HierarchicalRecoveryReport
from repro.core.nlevel import NLevelMulticast, NLevelRecoveryReport

__all__ = [
    "shr_direct",
    "shr_incremental",
    "shr_table",
    "SmrpNodeState",
    "StateManager",
    "Candidate",
    "enumerate_candidates",
    "enumerate_candidates_query",
    "PathSelection",
    "select_path",
    "RecoveryResult",
    "local_detour_recovery",
    "global_detour_recovery",
    "repair_tree",
    "worst_case_failure",
    "SMRPConfig",
    "SMRPProtocol",
    "HierarchicalMulticast",
    "HierarchicalRecoveryReport",
    "NLevelMulticast",
    "NLevelRecoveryReport",
]
