"""SMRP path selection for joining members (paper §3.2.2).

The Path Selection Criterion: among the candidate paths, pick the one whose
merge node has the minimum ``SHR_{S,R_i}``, subject to the delay bound

.. math::

    D^{R^*}_{S,NR} \\le (1 + D_{thresh}) \\cdot D^{SPF}_{S,NR}

with ties broken by the shorter path.  ``D_thresh`` is the paper's knob
trading transmission efficiency for recovery speed.

When *no* candidate satisfies the bound (possible on sparse topologies
where every detour to the tree is long — the paper does not discuss this
corner), the selection falls back to the minimum-delay candidate and flags
the fallback, so experiments can report how often it happens.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError, JoinRejectedError
from repro.core.candidates import Candidate


@dataclass(frozen=True)
class PathSelection:
    """The outcome of one path selection."""

    candidate: Candidate
    spf_delay: float
    bound: float
    fallback: bool
    num_candidates: int
    num_feasible: int

    @property
    def within_bound(self) -> bool:
        return self.candidate.total_delay <= self.bound + 1e-12


def select_path(
    candidates: list[Candidate],
    spf_delay: float,
    d_thresh: float,
    allow_fallback: bool = True,
) -> PathSelection:
    """Apply the Path Selection Criterion.

    Parameters
    ----------
    candidates:
        Options from :func:`repro.core.candidates.enumerate_candidates`.
    spf_delay:
        ``D^{SPF}_{S,NR}`` — the member's unicast shortest-path delay to
        the source, computed by the underlying routing protocol.
    d_thresh:
        The delay-stretch bound ``D_thresh`` (0 forces pure SPF behaviour
        in terms of delay, larger values admit more sharing reduction).
    allow_fallback:
        When False, an empty feasible set raises
        :class:`~repro.errors.JoinRejectedError` instead of falling back
        to the minimum-delay candidate.
    """
    if d_thresh < 0:
        raise ConfigurationError(f"D_thresh must be non-negative, got {d_thresh}")
    if spf_delay < 0:
        raise ConfigurationError(f"SPF delay must be non-negative, got {spf_delay}")
    if not candidates:
        raise JoinRejectedError(None, "no candidate paths reach the tree")

    bound = (1.0 + d_thresh) * spf_delay
    feasible = [c for c in candidates if c.total_delay <= bound + 1e-12]
    if feasible:
        best = min(feasible, key=lambda c: (c.shr, c.total_delay, c.merge_node))
        return PathSelection(
            candidate=best,
            spf_delay=spf_delay,
            bound=bound,
            fallback=False,
            num_candidates=len(candidates),
            num_feasible=len(feasible),
        )
    if not allow_fallback:
        raise JoinRejectedError(
            candidates[0].joiner,
            f"no candidate within delay bound {bound:.3f} "
            f"(best total delay {min(c.total_delay for c in candidates):.3f})",
        )
    best = min(candidates, key=lambda c: (c.total_delay, c.shr, c.merge_node))
    return PathSelection(
        candidate=best,
        spf_delay=spf_delay,
        bound=bound,
        fallback=True,
        num_candidates=len(candidates),
        num_feasible=0,
    )
