"""Tree reshaping (paper §3.2.3).

After churn, a tree that was survivable when each member joined can grow
skewed: merge points that once had the minimum SHR accumulate members, and
nodes elsewhere free up.  Reshaping lets an on-tree node re-run path
selection and switch its whole subtree to a better attachment.

Triggers:

- **Condition I** — a node ``R`` watches ``SHR_{S,R_u}`` of its upstream
  node; when it exceeds the value recorded at the last reshape
  (``SHR^{old}``) by more than a threshold, joins into sibling subtrees
  have degraded ``R``'s path and ``R`` re-selects.
- **Condition II** — a periodic timer; every node occasionally re-selects
  to exploit departures elsewhere.

The re-selection itself is the §3.2.2 procedure with two adjustments the
paper spells out:

- the moving node's own subtree is excluded (merging there would loop),
- SHR values are *adjusted* before comparison, because the current path
  still exists while the new one is evaluated: the mover's subtree members
  are subtracted from every candidate's SHR where the candidate's on-tree
  path overlaps the mover's current path
  (:func:`repro.core.shr.shr_excluding_subtree`).

The move is performed only when the new merge point's adjusted SHR is
*strictly* smaller than the current attachment's — equal-SHR moves are
refused to prevent oscillation under Condition II.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import JoinRejectedError, MulticastError, NotOnTreeError
from repro.graph.topology import NodeId, Topology
from repro.multicast.tree import MulticastTree
from repro.core.candidates import enumerate_candidates
from repro.core.join import select_path
from repro.core.shr import adjusted_shr_table
from repro.routing.failure_view import NO_FAILURES, FailureSet
from repro.routing.spf import dijkstra


@dataclass(frozen=True)
class ReshapeDecision:
    """Outcome of one reshape evaluation at a node."""

    node: NodeId
    performed: bool
    reason: str
    current_upstream: NodeId | None = None
    current_shr_adjusted: int | None = None
    new_merge_node: NodeId | None = None
    new_shr_adjusted: int | None = None
    new_path: tuple[NodeId, ...] = ()


def evaluate_reshape(
    topology: Topology,
    tree: MulticastTree,
    node: NodeId,
    d_thresh: float,
    failures: FailureSet = NO_FAILURES,
    route_cache=None,
    obs=None,
) -> ReshapeDecision:
    """Run path re-selection for ``node`` without mutating the tree.

    Returns a :class:`ReshapeDecision`; ``performed`` is True when a
    strictly better attachment exists within the delay bound (the caller
    then applies it with :func:`apply_reshape`).

    ``route_cache`` (optional failure-aware
    :class:`~repro.routing.route_cache.RouteCache`) memoises the delay-
    bound SPF; ``obs`` attributes its cache traffic.  When ``obs`` has a
    restoration tracer with an episode open (a reshape pass running while
    a DES recovery is in flight), the evaluation is recorded inside that
    episode as an instant span.
    """
    decision = _evaluate_reshape(
        topology, tree, node, d_thresh, failures, route_cache, obs
    )
    tracer = getattr(obs, "tracer", None)
    if tracer is not None:
        tracer.ambient_instant(
            "reshape.evaluate", node,
            payload={"performed": decision.performed, "reason": decision.reason},
        )
    return decision


def _evaluate_reshape(
    topology: Topology,
    tree: MulticastTree,
    node: NodeId,
    d_thresh: float,
    failures: FailureSet = NO_FAILURES,
    route_cache=None,
    obs=None,
) -> ReshapeDecision:
    if not tree.is_on_tree(node):
        raise NotOnTreeError(node)
    if node == tree.source:
        raise MulticastError("the source never reshapes")

    upstream = tree.parent(node)
    assert upstream is not None
    # One linear pass yields every candidate's adjusted SHR (and the
    # current attachment's) instead of a quadratic per-merge-point walk.
    table = adjusted_shr_table(tree, node, obs=obs)
    current_adjusted = table[upstream]

    subtree = tree.subtree_nodes(node)
    adjusted_shr = {
        merge: table[merge]
        for merge in tree.on_tree_nodes()
        if merge not in subtree
    }
    candidates = enumerate_candidates(
        topology,
        tree,
        joiner=node,
        shr_values=adjusted_shr,
        failures=failures,
        excluded_nodes=frozenset(subtree - {node}),
        mover=node,
        obs=obs,
    )
    # Discard the degenerate candidate that re-selects the current
    # attachment through the same upstream link.
    candidates = [
        c
        for c in candidates
        if not (len(c.graft_path) == 2 and c.merge_node == upstream)
    ]
    if not candidates:
        return ReshapeDecision(
            node=node,
            performed=False,
            reason="no alternative attachment reachable",
            current_upstream=upstream,
            current_shr_adjusted=current_adjusted,
        )

    if route_cache is not None:
        spf = route_cache.shortest_paths(
            topology, node, weight="delay", failures=failures, obs=obs
        )
    else:
        spf = dijkstra(topology, node, weight="delay", failures=failures)
    if tree.source not in spf.dist:
        return ReshapeDecision(
            node=node,
            performed=False,
            reason="source unreachable",
            current_upstream=upstream,
            current_shr_adjusted=current_adjusted,
        )
    try:
        selection = select_path(
            candidates, spf.dist[tree.source], d_thresh, allow_fallback=False
        )
    except JoinRejectedError:
        return ReshapeDecision(
            node=node,
            performed=False,
            reason="no candidate within the delay bound",
            current_upstream=upstream,
            current_shr_adjusted=current_adjusted,
        )

    chosen = selection.candidate
    if chosen.shr >= current_adjusted:
        return ReshapeDecision(
            node=node,
            performed=False,
            reason=(
                f"best alternative SHR {chosen.shr} does not improve on "
                f"current {current_adjusted}"
            ),
            current_upstream=upstream,
            current_shr_adjusted=current_adjusted,
            new_merge_node=chosen.merge_node,
            new_shr_adjusted=chosen.shr,
        )
    return ReshapeDecision(
        node=node,
        performed=True,
        reason="strictly smaller adjusted SHR within delay bound",
        current_upstream=upstream,
        current_shr_adjusted=current_adjusted,
        new_merge_node=chosen.merge_node,
        new_shr_adjusted=chosen.shr,
        new_path=chosen.graft_path,
    )


def apply_reshape(tree: MulticastTree, decision: ReshapeDecision) -> None:
    """Apply a positive :class:`ReshapeDecision`: the path-switching step.

    The node grafts the new path first and releases the old branch after —
    the make-before-break order of §3.2.3 — which
    :meth:`~repro.multicast.tree.MulticastTree.move_subtree` performs
    atomically at this abstraction level.
    """
    if not decision.performed:
        raise MulticastError(
            f"decision for node {decision.node} did not approve a reshape"
        )
    tree.move_subtree(decision.node, list(decision.new_path))
