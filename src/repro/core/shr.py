"""The SHR sharing metric (paper §3.1 and §3.2.1).

``SHR_{S,R}`` measures how heavily the on-tree path from the source ``S``
to node ``R`` is shared by other members.  Equation (1) defines it over
links:

.. math::

    SHR_{S,R} = \\sum_{L_{i,j} \\subset P_T(S,R)} N_{L_{i,j}}

where ``N_L`` is the number of members whose on-tree path uses link ``L``.
Because every member below ``R`` reaches the source over ``R``'s upstream
link, ``N_{L_{R,R_u}} = N_R``, which yields the incremental form of
Equation (2):

.. math::

    SHR_{S,R} = SHR_{S,R_u} + N_R

Both forms are implemented; a property test asserts they agree on
arbitrary trees (this is exactly the identity the distributed protocol
relies on to maintain SHR with only neighbor message exchange).
"""

from __future__ import annotations

from repro.errors import NotOnTreeError
from repro.graph.topology import NodeId
from repro.multicast.tree import MulticastTree


def shr_direct(tree: MulticastTree, node: NodeId) -> int:
    """``SHR_{S,node}`` via Equation (1): sum link utilisations on the path.

    ``N_L`` for a tree link equals the member count of the subtree hanging
    below the link (its child-side endpoint).
    """
    path = tree.path_from_source(node)
    total = 0
    for child in path[1:]:
        # The link (parent(child), child) carries every member below child.
        total += tree.subtree_member_count(child)
    return total


def shr_incremental(tree: MulticastTree) -> dict[NodeId, int]:
    """``SHR`` for every on-tree node via Equation (2), in one traversal.

    ``SHR_{S,S} = 0``; each node adds its own subtree member count to its
    upstream node's value.  This mirrors the neighbor-to-neighbor exchange
    of the distributed protocol (each node learns ``SHR_{S,R_u}`` from its
    parent and adds its locally known ``N_R``).
    """
    shr: dict[NodeId, int] = {tree.source: 0}
    # Pre-compute subtree member counts bottom-up in one pass instead of
    # calling subtree_member_count per node (which would be quadratic).
    counts = subtree_member_counts(tree)
    stack = [tree.source]
    while stack:
        node = stack.pop()
        for child in tree.children(node):
            shr[child] = shr[node] + counts[child]
            stack.append(child)
    return shr


def subtree_member_counts(tree: MulticastTree) -> dict[NodeId, int]:
    """``N_R`` for every on-tree node, computed bottom-up in linear time."""
    counts: dict[NodeId, int] = {}
    order: list[NodeId] = []
    stack = [tree.source]
    while stack:
        node = stack.pop()
        order.append(node)
        stack.extend(tree.children(node))
    for node in reversed(order):
        counts[node] = (1 if tree.is_member(node) else 0) + sum(
            counts[child] for child in tree.children(node)
        )
    return counts


def shr_table(tree: MulticastTree) -> dict[NodeId, int]:
    """Convenience alias for :func:`shr_incremental`."""
    return shr_incremental(tree)


def link_utilisation(tree: MulticastTree) -> dict[tuple[NodeId, NodeId], int]:
    """``N_L`` for every tree link (canonical edge → member count below it)."""
    counts = subtree_member_counts(tree)
    utilisation: dict[tuple[NodeId, NodeId], int] = {}
    for node in tree.on_tree_nodes():
        parent = tree.parent(node)
        if parent is None:
            continue
        a, b = (node, parent) if node <= parent else (parent, node)
        utilisation[(a, b)] = counts[node]
    return utilisation


def adjusted_shr_table(tree: MulticastTree, mover: NodeId) -> dict[NodeId, int]:
    """:func:`shr_excluding_subtree` for *every* on-tree node, in one pass.

    Reshape evaluation (§3.2.3) needs the adjusted SHR of each potential
    merge point; calling :func:`shr_excluding_subtree` per node repeats
    the path walk and subtree count for every candidate — quadratic per
    evaluation, and the dominant cost of a reshaping build.  One traversal
    suffices: SHR follows the Equation (2) recurrence, and the overlap
    between a node's on-tree path and the mover's is itself incremental
    (``overlap(child) = overlap(node) + [child on mover's path]``), so

    ``adjusted(R) = SHR_{S,R} − N_mover × overlap(R)``

    is computed top-down in linear time.  Values agree exactly with the
    per-node form (a property test pins this); the mover's own subtree is
    included in the result — callers exclude it, as they already must.
    """
    if not tree.is_on_tree(mover):
        raise NotOnTreeError(mover)
    counts = subtree_member_counts(tree)
    moving_members = counts[mover]
    mover_path = set(tree.path_from_source(mover)[1:])  # exclude S
    adjusted: dict[NodeId, int] = {tree.source: 0}
    shr: dict[NodeId, int] = {tree.source: 0}
    overlap: dict[NodeId, int] = {tree.source: 0}
    stack = [tree.source]
    while stack:
        node = stack.pop()
        for child in tree.children(node):
            shr[child] = shr[node] + counts[child]
            overlap[child] = overlap[node] + (1 if child in mover_path else 0)
            adjusted[child] = shr[child] - moving_members * overlap[child]
            stack.append(child)
    return adjusted


def shr_excluding_subtree(
    tree: MulticastTree, merge_node: NodeId, mover: NodeId
) -> int:
    """``SHR_{S,merge_node}`` as if ``mover``'s subtree had already left.

    Used by tree reshaping (§3.2.3): "since the current path still exists
    when the new path is located, the value of SHR may be inaccurate and
    should be adjusted before the path comparison is made."  Every member
    in ``mover``'s subtree contributes 1 to ``N_{R'}`` for each node ``R'``
    on the path ``S → mover``; those contributions are subtracted from the
    candidate merge node's SHR wherever the two paths overlap.
    """
    if not tree.is_on_tree(merge_node):
        raise NotOnTreeError(merge_node)
    if not tree.is_on_tree(mover):
        raise NotOnTreeError(mover)
    moving_members = tree.subtree_member_count(mover)
    mover_path = set(tree.path_from_source(mover)[1:])  # exclude S
    merge_path = tree.path_from_source(merge_node)[1:]
    overlap = sum(1 for node in merge_path if node in mover_path)
    raw = shr_direct(tree, merge_node)
    return raw - moving_members * overlap
