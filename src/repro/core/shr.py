"""The SHR sharing metric (paper §3.1 and §3.2.1).

``SHR_{S,R}`` measures how heavily the on-tree path from the source ``S``
to node ``R`` is shared by other members.  Equation (1) defines it over
links:

.. math::

    SHR_{S,R} = \\sum_{L_{i,j} \\subset P_T(S,R)} N_{L_{i,j}}

where ``N_L`` is the number of members whose on-tree path uses link ``L``.
Because every member below ``R`` reaches the source over ``R``'s upstream
link, ``N_{L_{R,R_u}} = N_R``, which yields the incremental form of
Equation (2):

.. math::

    SHR_{S,R} = SHR_{S,R_u} + N_R

Both forms are implemented; a property test asserts they agree on
arbitrary trees (this is exactly the identity the distributed protocol
relies on to maintain SHR with only neighbor message exchange).

Large trees evaluate through :class:`TreeArrays`, an int-indexed
snapshot over which subtree counts, SHR, and adjusted SHR run as
per-depth-level numpy sweeps instead of per-node dict walks.  The dict
walks remain the executable reference — every table builder takes a
``vectorized`` override, dispatches on tree size by default, and the
array path materializes dictionaries with the *same values and the same
insertion order* as the reference (a property suite pins this).
"""

from __future__ import annotations

import numpy as np

from repro.errors import NotOnTreeError
from repro.graph.topology import NodeId
from repro.multicast.tree import MulticastTree

#: On-tree size at which the array kernels overtake the dict walks.
#: Below this the per-call numpy overhead dominates; the table builders
#: auto-dispatch on it unless ``vectorized`` is forced.
VECTOR_MIN_NODES = 96


def _use_arrays(tree: MulticastTree, vectorized: bool | None) -> bool:
    if vectorized is None:
        return len(tree) >= VECTOR_MIN_NODES
    return bool(vectorized)


def _count_shr_call(obs, used_arrays: bool) -> None:
    if obs is not None:
        obs.counter("routing.batch.shr_calls").inc()
        if used_arrays:
            obs.counter("routing.batch.shr_vectorized").inc()


class TreeArrays:
    """Int-indexed snapshot of one tree, the substrate of the array path.

    Nodes map to dense indices in sorted-id order (matching the CSR
    convention); the structure is captured as a parent-index array, a
    member mask, children grouped contiguously per parent, and the BFS
    depth levels.  Subtree counts and SHR then run as one numpy sweep
    per depth level — ``np.add.at`` pushing counts up a level, a gather
    pulling SHR down a level — instead of one dict operation per node.

    Snapshots are throwaway: the tree carries no version token, so each
    table build captures fresh arrays (still linear, and the arithmetic
    afterwards is what the dict walks made quadratic-ish in constant
    factors).
    """

    __slots__ = (
        "nodes",
        "index_of",
        "parent",
        "member_mask",
        "levels",
        "_src",
        "_child_flat",
        "_child_ptr",
        "_counts",
        "_shr",
        "_insertion",
    )

    def __init__(self, tree: MulticastTree) -> None:
        nodes = tree.on_tree_nodes()
        m = len(nodes)
        index_of = {nid: i for i, nid in enumerate(nodes)}
        parent = np.empty(m, dtype=np.int64)
        for i, nid in enumerate(nodes):
            p = tree.parent(nid)
            parent[i] = -1 if p is None else index_of[p]
        members = tree.members
        member_mask = np.fromiter(
            (nid in members for nid in nodes), dtype=bool, count=m
        )
        self.nodes = nodes
        self.index_of = index_of
        self.parent = parent
        self.member_mask = member_mask

        # Children grouped per parent: stable argsort on the parent index
        # puts the source (parent -1) first and keeps siblings in
        # ascending index (= ascending id) order, matching the sorted
        # ``tree.children`` iteration the reference walks use.
        grouped = np.argsort(parent, kind="stable")
        self._src = int(grouped[0])
        child_flat = grouped[1:]
        child_counts = np.bincount(parent[parent >= 0], minlength=m)
        child_ptr = np.zeros(m + 1, dtype=np.int64)
        np.cumsum(child_counts, out=child_ptr[1:])
        self._child_flat = child_flat
        self._child_ptr = child_ptr

        # BFS depth levels: every node's children sit exactly one level
        # below it, so one array per level orders the sweeps.
        levels = [grouped[:1]]
        frontier = levels[0]
        while True:
            starts = child_ptr[frontier]
            lens = child_ptr[frontier + 1] - starts
            total = int(lens.sum())
            if total == 0:
                break
            ends = np.cumsum(lens)
            take = (
                np.arange(total, dtype=np.int64)
                - np.repeat(ends - lens, lens)
                + np.repeat(starts, lens)
            )
            frontier = child_flat[take]
            levels.append(frontier)
        self.levels = levels
        self._counts = None
        self._shr = None
        self._insertion = None

    def member_counts(self) -> np.ndarray:
        """``N_R`` per node index, swept bottom-up one level at a time."""
        counts = self._counts
        if counts is None:
            counts = self.member_mask.astype(np.int64)
            parent = self.parent
            for frontier in reversed(self.levels[1:]):
                np.add.at(counts, parent[frontier], counts[frontier])
            self._counts = counts
        return counts

    def shr(self) -> np.ndarray:
        """``SHR_{S,R}`` per node index via Equation (2), swept top-down."""
        shr = self._shr
        if shr is None:
            counts = self.member_counts()
            shr = np.zeros(len(self.nodes), dtype=np.int64)
            parent = self.parent
            for frontier in self.levels[1:]:
                shr[frontier] = shr[parent[frontier]] + counts[frontier]
            self._shr = shr
        return shr

    def overlap_with_path(self, tip: int) -> np.ndarray:
        """Per-node overlap with the on-tree path ``S → tip`` (S excluded).

        ``overlap(child) = overlap(node) + [child on the path]`` — the
        incremental form :func:`adjusted_shr_table` rests on — as one
        gather-and-add per depth level.
        """
        m = len(self.nodes)
        parent = self.parent
        on_path = np.zeros(m, dtype=np.int64)
        cursor = tip
        while parent[cursor] >= 0:
            on_path[cursor] = 1
            cursor = int(parent[cursor])
        overlap = np.zeros(m, dtype=np.int64)
        for frontier in self.levels[1:]:
            overlap[frontier] = overlap[parent[frontier]] + on_path[frontier]
        return overlap

    def insertion_order(self) -> list[int]:
        """Node indices in the reference tables' dict insertion order.

        :func:`shr_incremental` (and :func:`adjusted_shr_table`) insert
        the source first, then — each time the LIFO walk pops a node —
        that node's children in ascending order.  The walk here replays
        those stack dynamics over plain int lists; values come from the
        arrays, so this is the only per-node Python left in the path.
        """
        order = self._insertion
        if order is None:
            flat = self._child_flat.tolist()
            ptr = self._child_ptr.tolist()
            order = [self._src]
            stack = [self._src]
            while stack:
                i = stack.pop()
                kids = flat[ptr[i] : ptr[i + 1]]
                order.extend(kids)
                stack.extend(kids)
            self._insertion = order
        return order


def shr_direct(tree: MulticastTree, node: NodeId) -> int:
    """``SHR_{S,node}`` via Equation (1): sum link utilisations on the path.

    ``N_L`` for a tree link equals the member count of the subtree hanging
    below the link (its child-side endpoint).
    """
    path = tree.path_from_source(node)
    total = 0
    for child in path[1:]:
        # The link (parent(child), child) carries every member below child.
        total += tree.subtree_member_count(child)
    return total


def shr_incremental(tree: MulticastTree) -> dict[NodeId, int]:
    """``SHR`` for every on-tree node via Equation (2), in one traversal.

    ``SHR_{S,S} = 0``; each node adds its own subtree member count to its
    upstream node's value.  This mirrors the neighbor-to-neighbor exchange
    of the distributed protocol (each node learns ``SHR_{S,R_u}`` from its
    parent and adds its locally known ``N_R``).
    """
    shr: dict[NodeId, int] = {tree.source: 0}
    # Pre-compute subtree member counts bottom-up in one pass instead of
    # calling subtree_member_count per node (which would be quadratic).
    counts = subtree_member_counts(tree)
    stack = [tree.source]
    while stack:
        node = stack.pop()
        for child in tree.children(node):
            shr[child] = shr[node] + counts[child]
            stack.append(child)
    return shr


def subtree_member_counts(tree: MulticastTree) -> dict[NodeId, int]:
    """``N_R`` for every on-tree node, computed bottom-up in linear time."""
    counts: dict[NodeId, int] = {}
    order: list[NodeId] = []
    stack = [tree.source]
    while stack:
        node = stack.pop()
        order.append(node)
        stack.extend(tree.children(node))
    for node in reversed(order):
        counts[node] = (1 if tree.is_member(node) else 0) + sum(
            counts[child] for child in tree.children(node)
        )
    return counts


def shr_table(
    tree: MulticastTree,
    *,
    vectorized: bool | None = None,
    obs=None,
) -> dict[NodeId, int]:
    """``SHR_{S,R}`` for every on-tree node.

    Dispatches between :func:`shr_incremental` (the dict reference) and
    the :class:`TreeArrays` level sweeps: ``vectorized=None`` picks the
    array path for trees of :data:`VECTOR_MIN_NODES` or more nodes,
    ``True``/``False`` force one side.  Both produce the identical
    dictionary — values *and* insertion order.  ``obs`` accounts the
    dispatch under ``routing.batch.shr_calls`` /
    ``routing.batch.shr_vectorized`` (the vectorization hit-rate the
    obs report derives).
    """
    use_arrays = _use_arrays(tree, vectorized)
    _count_shr_call(obs, use_arrays)
    if not use_arrays:
        return shr_incremental(tree)
    arrays = TreeArrays(tree)
    values = arrays.shr().tolist()
    nodes = arrays.nodes
    return {nodes[i]: values[i] for i in arrays.insertion_order()}


def link_utilisation(
    tree: MulticastTree,
    *,
    vectorized: bool | None = None,
) -> dict[tuple[NodeId, NodeId], int]:
    """``N_L`` for every tree link (canonical edge → member count below it)."""
    if _use_arrays(tree, vectorized):
        arrays = TreeArrays(tree)
        counts = arrays.member_counts().tolist()
        parents = arrays.parent.tolist()
        nodes = arrays.nodes
        utilisation: dict[tuple[NodeId, NodeId], int] = {}
        for i, node in enumerate(nodes):
            p = parents[i]
            if p < 0:
                continue
            parent = nodes[p]
            a, b = (node, parent) if node <= parent else (parent, node)
            utilisation[(a, b)] = counts[i]
        return utilisation
    counts_by_node = subtree_member_counts(tree)
    utilisation = {}
    for node in tree.on_tree_nodes():
        parent = tree.parent(node)
        if parent is None:
            continue
        a, b = (node, parent) if node <= parent else (parent, node)
        utilisation[(a, b)] = counts_by_node[node]
    return utilisation


def adjusted_shr_table(
    tree: MulticastTree,
    mover: NodeId,
    *,
    vectorized: bool | None = None,
    obs=None,
) -> dict[NodeId, int]:
    """:func:`shr_excluding_subtree` for *every* on-tree node, in one pass.

    Reshape evaluation (§3.2.3) needs the adjusted SHR of each potential
    merge point; calling :func:`shr_excluding_subtree` per node repeats
    the path walk and subtree count for every candidate — quadratic per
    evaluation, and the dominant cost of a reshaping build.  One traversal
    suffices: SHR follows the Equation (2) recurrence, and the overlap
    between a node's on-tree path and the mover's is itself incremental
    (``overlap(child) = overlap(node) + [child on mover's path]``), so

    ``adjusted(R) = SHR_{S,R} − N_mover × overlap(R)``

    is computed top-down in linear time.  Values agree exactly with the
    per-node form (a property test pins this); the mover's own subtree is
    included in the result — callers exclude it, as they already must.

    ``vectorized`` / ``obs`` dispatch and account exactly as in
    :func:`shr_table`; the array path runs the same recurrences as
    level sweeps over a :class:`TreeArrays` snapshot.
    """
    if not tree.is_on_tree(mover):
        raise NotOnTreeError(mover)
    use_arrays = _use_arrays(tree, vectorized)
    _count_shr_call(obs, use_arrays)
    if use_arrays:
        arrays = TreeArrays(tree)
        mover_idx = arrays.index_of[mover]
        moving = int(arrays.member_counts()[mover_idx])
        values = (
            arrays.shr() - moving * arrays.overlap_with_path(mover_idx)
        ).tolist()
        nodes = arrays.nodes
        return {nodes[i]: values[i] for i in arrays.insertion_order()}
    counts = subtree_member_counts(tree)
    moving_members = counts[mover]
    mover_path = set(tree.path_from_source(mover)[1:])  # exclude S
    adjusted: dict[NodeId, int] = {tree.source: 0}
    shr: dict[NodeId, int] = {tree.source: 0}
    overlap: dict[NodeId, int] = {tree.source: 0}
    stack = [tree.source]
    while stack:
        node = stack.pop()
        for child in tree.children(node):
            shr[child] = shr[node] + counts[child]
            overlap[child] = overlap[node] + (1 if child in mover_path else 0)
            adjusted[child] = shr[child] - moving_members * overlap[child]
            stack.append(child)
    return adjusted


def shr_excluding_subtree(
    tree: MulticastTree, merge_node: NodeId, mover: NodeId
) -> int:
    """``SHR_{S,merge_node}`` as if ``mover``'s subtree had already left.

    Used by tree reshaping (§3.2.3): "since the current path still exists
    when the new path is located, the value of SHR may be inaccurate and
    should be adjusted before the path comparison is made."  Every member
    in ``mover``'s subtree contributes 1 to ``N_{R'}`` for each node ``R'``
    on the path ``S → mover``; those contributions are subtracted from the
    candidate merge node's SHR wherever the two paths overlap.
    """
    if not tree.is_on_tree(merge_node):
        raise NotOnTreeError(merge_node)
    if not tree.is_on_tree(mover):
        raise NotOnTreeError(mover)
    moving_members = tree.subtree_member_count(mover)
    mover_path = set(tree.path_from_source(mover)[1:])  # exclude S
    merge_path = tree.path_from_source(merge_node)[1:]
    overlap = sum(1 for node in merge_path if node in mover_path)
    raw = shr_direct(tree, merge_node)
    return raw - moving_members * overlap
