"""The query scheme for members without topology knowledge (paper §3.3.1).

The base protocol assumes the joining member knows the full topology and
every on-tree node's SHR.  When it does not, the paper's query scheme has
the member ask each of its physical neighbors to relay a query along the
neighbor's unicast shortest path toward the source; the first on-tree node
the query meets answers with its ``SHR_{S,R}``.

Consequences faithfully reproduced here:

- The member only discovers at most ``degree(NR)`` merge points (one per
  neighbor), so the selected path may be sub-optimal — the paper accepts
  this as the cost of deployability, and the ablation bench quantifies it.
- Each discovered option's connecting path is ``NR → neighbor → … → R``
  following the *neighbor's* SPF path, not necessarily the shortest
  ``NR → R`` path.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.topology import NodeId, Topology
from repro.multicast.tree import MulticastTree
from repro.core.candidates import Candidate
from repro.routing.failure_view import NO_FAILURES, FailureSet
from repro.routing.spf import dijkstra


@dataclass(frozen=True)
class QueryStats:
    """Message accounting for one query round."""

    queries_sent: int
    query_hops: int
    responses: int


def enumerate_candidates_query(
    topology: Topology,
    tree: MulticastTree,
    joiner: NodeId,
    shr_values: dict[NodeId, int],
    failures: FailureSet = NO_FAILURES,
) -> tuple[list[Candidate], QueryStats]:
    """Candidates discoverable through the neighbor-relay query scheme.

    Returns the candidate list (same type the full-knowledge enumeration
    produces, so :func:`repro.core.join.select_path` applies unchanged)
    plus the query-message statistics.  Duplicate merge points discovered
    through different neighbors keep only the lowest-delay option.
    """
    best_by_merge: dict[NodeId, Candidate] = {}
    queries = 0
    hops = 0
    responses = 0
    on_tree = set(tree.on_tree_nodes())

    for neighbor in topology.neighbors(joiner):
        if not failures.link_usable(joiner, neighbor):
            continue
        queries += 1
        if neighbor in on_tree:
            # The neighbor itself is on the tree: immediate response.
            merge = neighbor
            relay_path = [joiner, neighbor]
        else:
            paths = dijkstra(topology, neighbor, weight="delay", failures=failures)
            if tree.source not in paths.dist:
                continue
            spf_path = paths.path_to(tree.source)
            merge = next((n for n in spf_path if n in on_tree), None)
            if merge is None:
                continue
            prefix = spf_path[: spf_path.index(merge) + 1]
            if joiner in prefix:
                # The relay path folds back through the joiner; a real
                # query would still work but the graft would be degenerate.
                continue
            relay_path = [joiner] + prefix
        hops += len(relay_path) - 1
        if merge not in shr_values:
            continue
        responses += 1
        graft = tuple(reversed(relay_path))
        new_delay = topology.path_delay(relay_path)
        candidate = Candidate(
            merge_node=merge,
            graft_path=graft,
            new_delay=new_delay,
            total_delay=tree.delay_from_source(merge) + new_delay,
            shr=shr_values[merge],
        )
        incumbent = best_by_merge.get(merge)
        if incumbent is None or candidate.total_delay < incumbent.total_delay:
            best_by_merge[merge] = candidate

    candidates = sorted(
        best_by_merge.values(), key=lambda c: (c.shr, c.total_delay, c.merge_node)
    )
    return candidates, QueryStats(
        queries_sent=queries, query_hops=hops, responses=responses
    )
