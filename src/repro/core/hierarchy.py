"""Hierarchical recovery architecture (paper §3.3.3).

SMRP scales by splitting the network into *recovery domains* arranged in
levels — the paper maps a 2-level instance onto the transit-stub Internet
structure (Figure 6).  Each domain runs its own SMRP sub-tree:

- every stub domain's tree is rooted at that domain's **agent** (its
  gateway router) and serves the members inside the domain;
- the domain of the actual source is the exception: its tree is rooted at
  the source itself, and its agent joins as an ordinary member, relaying
  packets up to the backbone;
- the transit (level-0) domain's tree is rooted at the source domain's
  agent and its members are the agents of every stub domain that
  currently has receivers.

A failure is handled *entirely inside the domain it occurs in*: the
affected domain repairs its own sub-tree with local detours while every
other domain's state is untouched.  The hierarchical bench quantifies the
resulting confinement against a flat SMRP instance on the same topology.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import (
    AlreadyMemberError,
    ConfigurationError,
    NotMemberError,
    RecoveryError,
)
from repro.graph.topology import NodeId, Topology, edge_key
from repro.graph.transit_stub import Domain, TransitStubResult
from repro.core.protocol import SMRPConfig, SMRPProtocol
from repro.core.recovery import TreeRepairReport, repair_tree
from repro.routing.failure_view import FailureSet


@dataclass
class HierarchicalRecoveryReport:
    """What a hierarchical recovery touched."""

    domains_reconfigured: list[int] = field(default_factory=list)
    repairs: dict[int, TreeRepairReport] = field(default_factory=dict)
    scope_nodes: int = 0
    #: Domains whose own tree root (agent or source) failed: nothing a
    #: confined recovery can do for them.
    dead_domains: list[int] = field(default_factory=list)

    @property
    def total_recovery_distance(self) -> float:
        return sum(r.total_recovery_distance for r in self.repairs.values())

    @property
    def unrecoverable(self) -> list[NodeId]:
        out: list[NodeId] = []
        for report in self.repairs.values():
            out.extend(report.unrecoverable)
        return sorted(out)


class HierarchicalMulticast:
    """A 2-level hierarchical SMRP session over a transit-stub network.

    Parameters
    ----------
    network:
        A generated transit-stub topology with its domain structure.
    source:
        The multicast source; must lie in a stub domain (the paper's
        Figure 6 scenario — sources live at the edge).
    config:
        SMRP configuration applied inside every domain.
    """

    def __init__(
        self,
        network: TransitStubResult,
        source: NodeId,
        config: SMRPConfig | None = None,
    ) -> None:
        self.network = network
        self.source = source
        self.config = config or SMRPConfig()
        source_domain_id = network.domain_of.get(source)
        if source_domain_id is None:
            raise ConfigurationError(f"source {source} is not in the network")
        if network.domains[source_domain_id].level != 1:
            raise ConfigurationError(
                "the source must live in a stub domain (Figure 6 scenario)"
            )
        self.source_domain = network.domains[source_domain_id]
        self._protocols: dict[int, SMRPProtocol] = {}
        self._domain_topologies: dict[int, Topology] = {}
        self._members: set[NodeId] = set()

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def join(self, member: NodeId) -> None:
        """Join a receiver, activating its domain chain as needed."""
        if member in self._members:
            raise AlreadyMemberError(member)
        domain = self._domain_for_member(member)
        protocol = self._protocol_for(domain)
        protocol.join(member)
        self._members.add(member)
        if domain.domain_id != self.source_domain.domain_id:
            self._activate_relay_chain(domain)

    def leave(self, member: NodeId) -> None:
        """Remove a receiver, deactivating empty domain chains."""
        if member not in self._members:
            raise NotMemberError(member)
        domain = self._domain_for_member(member)
        protocol = self._protocols[domain.domain_id]
        protocol.leave(member)
        self._members.discard(member)
        if domain.domain_id != self.source_domain.domain_id:
            self._deactivate_relay_chain(domain)

    @property
    def members(self) -> frozenset[NodeId]:
        return frozenset(self._members)

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def end_to_end_delay(self, member: NodeId) -> float:
        """Delay from the source to ``member`` across the domain trees."""
        if member not in self._members:
            raise NotMemberError(member)
        domain = self._domain_for_member(member)
        if domain.domain_id == self.source_domain.domain_id:
            return self._protocols[domain.domain_id].tree.delay_from_source(member)
        source_tree = self._protocols[self.source_domain.domain_id].tree
        transit_tree = self._protocols[0].tree
        stub_tree = self._protocols[domain.domain_id].tree
        assert self.source_domain.gateway is not None
        assert domain.gateway is not None
        return (
            source_tree.delay_from_source(self.source_domain.gateway)
            + transit_tree.delay_from_source(domain.gateway)
            + stub_tree.delay_from_source(member)
        )

    def total_cost(self) -> float:
        """Sum of all domain trees' costs (domain link sets are disjoint)."""
        return sum(p.tree.tree_cost() for p in self._protocols.values())

    def active_domains(self) -> list[int]:
        return sorted(self._protocols)

    def protocol(self, domain_id: int) -> SMRPProtocol:
        try:
            return self._protocols[domain_id]
        except KeyError:
            raise ConfigurationError(f"domain {domain_id} is not active") from None

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def recover(
        self,
        failures: FailureSet,
        route_cache=None,
        route_obs=None,
        obs=None,
    ) -> HierarchicalRecoveryReport:
        """Repair every domain a failure touches; others stay untouched.

        Implements the paper's domain confinement: once the failing domain
        is identified (the paper cites fault-isolation techniques [1]),
        recovery runs inside it with local detours over the domain's own
        sub-topology.  ``route_cache`` / ``route_obs`` memoise post-failure
        SPF state across repairs exactly as in
        :func:`~repro.core.recovery.repair_tree` (domain sub-topologies
        carry their own cache tokens, so entries never cross domains).
        An ``obs`` with a restoration tracer attached yields one episode
        per member re-attached, domain by domain.
        """
        report = HierarchicalRecoveryReport()
        for domain_id, protocol in sorted(self._protocols.items()):
            domain_failures = self._restrict_failures(domain_id, failures)
            if domain_failures.is_empty:
                continue
            if not protocol.tree.affected_by(domain_failures):
                continue
            if domain_failures.node_failed(protocol.tree.source):
                # The domain's own root (its agent, or the session source)
                # died: a confined recovery cannot re-root the domain.
                report.dead_domains.append(domain_id)
                for member in sorted(protocol.tree.members):
                    if self.network.domain_of.get(member) == domain_id:
                        self._members.discard(member)
                del self._protocols[domain_id]
                continue
            repair = repair_tree(
                self._domain_topologies[domain_id],
                protocol.tree,
                domain_failures,
                strategy="local",
                obs=obs,
                route_cache=route_cache,
                route_obs=route_obs,
            )
            protocol.tree = repair.repaired_tree
            protocol.state.tree = repair.repaired_tree
            protocol.state.rebuild()
            report.domains_reconfigured.append(domain_id)
            report.repairs[domain_id] = repair
            report.scope_nodes += len(
                self._domain_topologies[domain_id].nodes()
            )
        failed_members = {
            m for m in self._members if failures.node_failed(m)
        }
        for member in sorted(failed_members):
            self._members.discard(member)
        return report

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _domain_for_member(self, member: NodeId) -> Domain:
        domain_id = self.network.domain_of.get(member)
        if domain_id is None:
            raise ConfigurationError(f"node {member} is not in the network")
        domain = self.network.domains[domain_id]
        if domain.level != 1:
            raise ConfigurationError(
                f"node {member} is a backbone router; only stub nodes "
                "host receivers in the Figure 6 scenario"
            )
        return domain

    def _protocol_for(self, domain: Domain) -> SMRPProtocol:
        if domain.domain_id not in self._protocols:
            topo = self._domain_topology(domain.domain_id)
            if domain.domain_id == self.source_domain.domain_id:
                root = self.source
            elif domain.level == 0:
                assert self.source_domain.gateway is not None
                root = self.source_domain.gateway
            else:
                assert domain.gateway is not None
                root = domain.gateway
            self._protocols[domain.domain_id] = SMRPProtocol(
                topo, root, config=self.config
            )
        return self._protocols[domain.domain_id]

    def _domain_topology(self, domain_id: int) -> Topology:
        if domain_id not in self._domain_topologies:
            domain = self.network.domains[domain_id]
            if domain.level == 0:
                nodes = set(domain.nodes)
                # The transit recovery domain spans the backbone plus the
                # agents (gateways) that hang off it — RD_0 in Figure 6.
                nodes.update(
                    d.gateway
                    for d in self.network.stub_domains
                    if d.gateway is not None
                )
            else:
                nodes = set(domain.nodes)
            self._domain_topologies[domain_id] = _induced_topology(
                self.network.topology, nodes, name=f"domain-{domain_id}"
            )
        return self._domain_topologies[domain_id]

    def _activate_relay_chain(self, domain: Domain) -> None:
        """Ensure the backbone delivers packets to ``domain``'s agent."""
        transit = self._protocol_for(self.network.transit_domain)
        assert domain.gateway is not None
        if not transit.tree.is_member(domain.gateway):
            transit.join(domain.gateway)
        # The source domain's agent must relay out of the source domain.
        source_protocol = self._protocol_for(self.source_domain)
        gateway = self.source_domain.gateway
        assert gateway is not None
        if gateway != self.source and not source_protocol.tree.is_member(gateway):
            source_protocol.join(gateway)

    def _deactivate_relay_chain(self, domain: Domain) -> None:
        """Tear down relays for a stub domain that lost its last member."""
        protocol = self._protocols.get(domain.domain_id)
        if protocol is None or protocol.tree.members:
            return
        transit = self._protocols.get(0)
        assert domain.gateway is not None
        if transit is not None and transit.tree.is_member(domain.gateway):
            transit.leave(domain.gateway)
        del self._protocols[domain.domain_id]
        # If no external domain remains, the source domain's agent stops
        # relaying.
        if transit is not None and not transit.tree.members:
            del self._protocols[0]
            source_protocol = self._protocols.get(self.source_domain.domain_id)
            gateway = self.source_domain.gateway
            assert gateway is not None
            if (
                source_protocol is not None
                and gateway != self.source
                and source_protocol.tree.is_member(gateway)
                and gateway not in self._members
            ):
                source_protocol.leave(gateway)

    def _restrict_failures(self, domain_id: int, failures: FailureSet) -> FailureSet:
        """The part of a failure scenario that falls inside one domain."""
        topo = self._domain_topology(domain_id)
        links = frozenset(
            edge_key(u, v)
            for u, v in failures.failed_links
            if topo.has_node(u) and topo.has_node(v) and topo.has_link(u, v)
        )
        nodes = frozenset(n for n in failures.failed_nodes if topo.has_node(n))
        return FailureSet(failed_links=links, failed_nodes=nodes)


def _induced_topology(topology: Topology, nodes: set[NodeId], name: str) -> Topology:
    """The sub-topology induced by ``nodes`` (same ids, same weights)."""
    if not nodes:
        raise RecoveryError("cannot induce an empty domain topology")
    sub = Topology(name)
    for node in sorted(nodes):
        sub.add_node(node, pos=topology.position(node))
    for link in topology.links():
        if link.u in nodes and link.v in nodes:
            sub.add_link(link.u, link.v, delay=link.delay, cost=link.cost)
    return sub
