"""Candidate-path enumeration for SMRP joins and reshapes (paper §3.2.2).

A joining member ``NR`` considers, for every on-tree node ``R_i``, the path
that reaches the tree at ``R_i``: the shortest path ``NR → R_i`` (footnote
4: only the shortest connection to each merge point is considered)
concatenated with ``R_i``'s on-tree path to the source.

Two refinements the paper leaves implicit:

- **First-contact semantics.**  A join request travelling toward ``R_i``
  merges at the *first* on-tree node it reaches, so the connection to
  ``R_i`` must not cross the tree earlier.  Candidates are therefore
  computed with a barrier-aware shortest-path search
  (:func:`repro.routing.spf.dijkstra_with_barriers`): on-tree nodes are
  valid endpoints but cannot be traversed.  (The paper's Figure 4 depends
  on this: G's option ``G→B→S`` is *not* G's globally shortest route to
  S — that one runs through on-tree node D — yet it is a legitimate
  merge-at-S candidate.)
- **Exclusions.**  Reshaping reuses the same enumeration but must not
  merge inside the moving node's own subtree (that would create a cycle),
  so callers can exclude node sets from both the merge-point set and the
  connecting paths.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.topology import NodeId, Topology
from repro.multicast.tree import MulticastTree
from repro.routing.failure_view import NO_FAILURES, FailureSet
from repro.routing.spf import dijkstra_with_barriers


@dataclass(frozen=True)
class Candidate:
    """One join option ``P_T^{R_i}(S, NR)``.

    Attributes
    ----------
    merge_node:
        The on-tree node ``R_i`` where the new path merges.
    graft_path:
        The new branch, from ``merge_node`` to the joining node.
    new_delay:
        Delay of the new branch only (the links brought into the tree —
        also the candidate's recovery-distance contribution).
    total_delay:
        End-to-end delay ``D^{R_i}_{S,NR}``: on-tree delay to the merge
        node plus the new branch.
    shr:
        ``SHR_{S,R_i}`` of the merge node at enumeration time.
    """

    merge_node: NodeId
    graft_path: tuple[NodeId, ...]
    new_delay: float
    total_delay: float
    shr: int

    @property
    def joiner(self) -> NodeId:
        return self.graft_path[-1]


def enumerate_candidates(
    topology: Topology,
    tree: MulticastTree,
    joiner: NodeId,
    shr_values: dict[NodeId, int],
    failures: FailureSet = NO_FAILURES,
    excluded_nodes: frozenset[NodeId] = frozenset(),
    allowed_merge_nodes: frozenset[NodeId] | None = None,
    mover: NodeId | None = None,
    obs=None,
) -> list[Candidate]:
    """All valid join options for ``joiner``, sorted by (shr, delay, id).

    Parameters
    ----------
    shr_values:
        ``SHR_{S,R}`` per on-tree node, supplied by the caller (full
        knowledge via :func:`repro.core.shr.shr_table`, or the restricted
        view produced by the query scheme).
    failures:
        Components to route around (used by recovery-time joins).
    excluded_nodes:
        Nodes the connecting path must avoid and that cannot serve as
        merge points (a reshaping node's own subtree).
    allowed_merge_nodes:
        When given, only these on-tree nodes are eligible merge points
        (used by the hierarchical protocol to keep joins inside a domain,
        and by the query scheme which only learns some SHR values).
    mover:
        When enumerating for a *reshape*, the node being moved: it is
        itself on the tree, so it must not count as tree contact along
        the candidate paths (they all start at it), nor be a merge point.
    obs:
        Optional :class:`~repro.obs.Observability`; accounts each batched
        enumeration (``routing.candidates.batched_searches``) and every
        merge point priced (``routing.candidates.evaluated``).

    One barrier-aware kernel pass prices the connection to *every* merge
    point at once, and one tree traversal
    (:meth:`~repro.multicast.tree.MulticastTree.delays_from_source`)
    prices every merge point's on-tree delay — the whole enumeration is
    two batched operations, never a per-candidate search.
    """
    mask = failures
    if excluded_nodes:
        mask = failures.union(FailureSet(failed_nodes=frozenset(excluded_nodes)))
    on_tree = set(tree.on_tree_nodes()) - set(excluded_nodes)
    if mover is not None:
        on_tree.discard(mover)
    paths = dijkstra_with_barriers(
        topology, joiner, barriers=on_tree, weight="delay", failures=mask, obs=obs
    )
    on_tree_delays = tree.delays_from_source()

    candidates: list[Candidate] = []
    for merge in sorted(on_tree):
        if merge not in paths.dist:
            continue
        if allowed_merge_nodes is not None and merge not in allowed_merge_nodes:
            continue
        if merge not in shr_values:
            continue
        toward_merge = paths.path_to(merge)
        graft = tuple(reversed(toward_merge))
        new_delay = paths.dist[merge]
        candidates.append(
            Candidate(
                merge_node=merge,
                graft_path=graft,
                new_delay=new_delay,
                total_delay=on_tree_delays[merge] + new_delay,
                shr=shr_values[merge],
            )
        )
    candidates.sort(key=lambda c: (c.shr, c.total_delay, c.merge_node))
    if obs is not None:
        obs.counter("routing.candidates.batched_searches").inc()
        obs.counter("routing.candidates.evaluated").inc(len(candidates))
        tracer = getattr(obs, "tracer", None)
        if tracer is not None:
            # When a restoration episode is open (DES recovery/reshape in
            # flight), the candidate search shows up inside it as an
            # instant span; otherwise this is a no-op.
            tracer.ambient_instant(
                "search.candidates", joiner,
                payload={"evaluated": len(candidates)},
            )
    return candidates
