"""Candidate-path enumeration for SMRP joins and reshapes (paper §3.2.2).

A joining member ``NR`` considers, for every on-tree node ``R_i``, the path
that reaches the tree at ``R_i``: the shortest path ``NR → R_i`` (footnote
4: only the shortest connection to each merge point is considered)
concatenated with ``R_i``'s on-tree path to the source.

Two refinements the paper leaves implicit:

- **First-contact semantics.**  A join request travelling toward ``R_i``
  merges at the *first* on-tree node it reaches, so the connection to
  ``R_i`` must not cross the tree earlier.  Candidates are therefore
  computed with a barrier-aware shortest-path search
  (:func:`repro.routing.spf.dijkstra_with_barriers`): on-tree nodes are
  valid endpoints but cannot be traversed.  (The paper's Figure 4 depends
  on this: G's option ``G→B→S`` is *not* G's globally shortest route to
  S — that one runs through on-tree node D — yet it is a legitimate
  merge-at-S candidate.)
- **Exclusions.**  Reshaping reuses the same enumeration but must not
  merge inside the moving node's own subtree (that would create a cycle),
  so callers can exclude node sets from both the merge-point set and the
  connecting paths.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.shr import VECTOR_MIN_NODES
from repro.graph.topology import NodeId, Topology
from repro.multicast.tree import MulticastTree
from repro.routing.failure_view import NO_FAILURES, FailureSet
from repro.routing.spf import barrier_search_arrays, dijkstra_with_barriers


@dataclass(frozen=True)
class Candidate:
    """One join option ``P_T^{R_i}(S, NR)``.

    Attributes
    ----------
    merge_node:
        The on-tree node ``R_i`` where the new path merges.
    graft_path:
        The new branch, from ``merge_node`` to the joining node.
    new_delay:
        Delay of the new branch only (the links brought into the tree —
        also the candidate's recovery-distance contribution).
    total_delay:
        End-to-end delay ``D^{R_i}_{S,NR}``: on-tree delay to the merge
        node plus the new branch.
    shr:
        ``SHR_{S,R_i}`` of the merge node at enumeration time.
    """

    merge_node: NodeId
    graft_path: tuple[NodeId, ...]
    new_delay: float
    total_delay: float
    shr: int

    @property
    def joiner(self) -> NodeId:
        return self.graft_path[-1]


def enumerate_candidates(
    topology: Topology,
    tree: MulticastTree,
    joiner: NodeId,
    shr_values: dict[NodeId, int],
    failures: FailureSet = NO_FAILURES,
    excluded_nodes: frozenset[NodeId] = frozenset(),
    allowed_merge_nodes: frozenset[NodeId] | None = None,
    mover: NodeId | None = None,
    obs=None,
    vectorized: bool | None = None,
) -> list[Candidate]:
    """All valid join options for ``joiner``, sorted by (shr, delay, id).

    Parameters
    ----------
    shr_values:
        ``SHR_{S,R}`` per on-tree node, supplied by the caller (full
        knowledge via :func:`repro.core.shr.shr_table`, or the restricted
        view produced by the query scheme).
    failures:
        Components to route around (used by recovery-time joins).
    excluded_nodes:
        Nodes the connecting path must avoid and that cannot serve as
        merge points (a reshaping node's own subtree).
    allowed_merge_nodes:
        When given, only these on-tree nodes are eligible merge points
        (used by the hierarchical protocol to keep joins inside a domain,
        and by the query scheme which only learns some SHR values).
    mover:
        When enumerating for a *reshape*, the node being moved: it is
        itself on the tree, so it must not count as tree contact along
        the candidate paths (they all start at it), nor be a merge point.
    obs:
        Optional :class:`~repro.obs.Observability`; accounts each batched
        enumeration (``routing.candidates.batched_searches``) and every
        merge point priced (``routing.candidates.evaluated``).

    One barrier-aware kernel pass prices the connection to *every* merge
    point at once, and one tree traversal
    (:meth:`~repro.multicast.tree.MulticastTree.delays_from_source`)
    prices every merge point's on-tree delay — the whole enumeration is
    two batched operations, never a per-candidate search.

    On topologies of :data:`~repro.core.shr.VECTOR_MIN_NODES` nodes or
    more (or with ``vectorized=True``) the scoring itself runs as one
    array pass over the kernel's raw output: merge-point distances are
    gathered, totalled, and ordered with a single ``lexsort`` instead of
    materializing the full :class:`~repro.routing.spf.ShortestPaths`
    dict and sorting per-candidate key tuples.  The result — values,
    builtin float/int field types, and ordering — is identical to the
    dict path (property-tested); ``routing.batch.candidates_vectorized``
    counts the enumerations that took the array pass.
    """
    mask = failures
    if excluded_nodes:
        mask = failures.union(FailureSet(failed_nodes=frozenset(excluded_nodes)))
    on_tree = set(tree.on_tree_nodes()) - set(excluded_nodes)
    if mover is not None:
        on_tree.discard(mover)
    use_arrays = (
        topology.num_nodes >= VECTOR_MIN_NODES if vectorized is None else vectorized
    )
    on_tree_delays = tree.delays_from_source()
    if use_arrays:
        candidates = _score_candidates_arrays(
            topology,
            tree,
            joiner,
            shr_values,
            mask,
            on_tree,
            on_tree_delays,
            allowed_merge_nodes,
            obs,
        )
    else:
        paths = dijkstra_with_barriers(
            topology, joiner, barriers=on_tree, weight="delay", failures=mask, obs=obs
        )
        candidates = []
        for merge in sorted(on_tree):
            if merge not in paths.dist:
                continue
            if allowed_merge_nodes is not None and merge not in allowed_merge_nodes:
                continue
            if merge not in shr_values:
                continue
            toward_merge = paths.path_to(merge)
            graft = tuple(reversed(toward_merge))
            new_delay = paths.dist[merge]
            candidates.append(
                Candidate(
                    merge_node=merge,
                    graft_path=graft,
                    new_delay=new_delay,
                    total_delay=on_tree_delays[merge] + new_delay,
                    shr=shr_values[merge],
                )
            )
        candidates.sort(key=lambda c: (c.shr, c.total_delay, c.merge_node))
    if obs is not None:
        if use_arrays:
            obs.counter("routing.batch.candidates_vectorized").inc()
        obs.counter("routing.candidates.batched_searches").inc()
        obs.counter("routing.candidates.evaluated").inc(len(candidates))
        tracer = getattr(obs, "tracer", None)
        if tracer is not None:
            # When a restoration episode is open (DES recovery/reshape in
            # flight), the candidate search shows up inside it as an
            # instant span; otherwise this is a no-op.
            tracer.ambient_instant(
                "search.candidates", joiner,
                payload={"evaluated": len(candidates)},
            )
    return candidates


def _score_candidates_arrays(
    topology: Topology,
    tree: MulticastTree,
    joiner: NodeId,
    shr_values: dict[NodeId, int],
    mask: FailureSet,
    on_tree: set,
    on_tree_delays: dict[NodeId, float],
    allowed_merge_nodes,
    obs,
) -> list[Candidate]:
    """Score and order every merge point in one array pass.

    Consumes the barrier search's raw ``(dist, parent)`` arrays: one
    gather prices all merge points, one ``lexsort`` orders them by
    ``(shr, total delay, merge id)``.  Only the final winners' graft
    paths are walked (index-space parent chains), and every
    :class:`Candidate` field is built from builtin floats/ids so the
    objects are indistinguishable from the dict path's.
    """
    import numpy as np

    csr, dist, parent, _ = barrier_search_arrays(
        topology, joiner, on_tree, weight="delay", failures=mask, obs=obs
    )
    if dist is None or not on_tree:
        return []
    index_of = csr.index_of
    merges = [
        node
        for node in sorted(on_tree)
        if (allowed_merge_nodes is None or node in allowed_merge_nodes)
        and node in shr_values
    ]
    if not merges:
        return []
    rows = np.asarray([index_of[node] for node in merges], dtype=np.int64)
    new_delay = np.asarray(dist, dtype=np.float64)[rows]
    reachable = np.isfinite(new_delay)
    if not reachable.any():
        return []
    shr = np.asarray([shr_values[node] for node in merges], dtype=np.int64)
    total = (
        np.asarray([on_tree_delays[node] for node in merges], dtype=np.float64)
        + new_delay
    )
    picked = np.nonzero(reachable)[0]
    # Primary key shr, then total delay, then merge id — `merges` is
    # sorted ascending, so the position key reproduces the id tie-break
    # for any ordered id type.
    picked = picked[np.lexsort((picked, total[picked], shr[picked]))]

    ids = csr.node_ids
    candidates: list[Candidate] = []
    for k in picked.tolist():
        merge = merges[k]
        cursor = int(rows[k])
        graft: list[NodeId] = []
        while cursor != -1:  # merge → … → joiner along the parent chain
            graft.append(ids[cursor])
            cursor = parent[cursor]
        delay = dist[rows[k]]
        candidates.append(
            Candidate(
                merge_node=merge,
                graft_path=tuple(graft),
                new_delay=delay,
                total_delay=on_tree_delays[merge] + delay,
                shr=shr_values[merge],
            )
        )
    return candidates
