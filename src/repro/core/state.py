"""Distributed per-node SMRP state (paper §3.2.1 and §3.3.2).

Each on-tree node ``R`` maintains:

- ``N_R`` — members in the subtree rooted at ``R`` (kept implicitly as the
  sum of the per-interface counts),
- ``N_R^i`` — members reachable through each downstream interface,
- ``SHR_{S,R}`` — learned incrementally from the upstream node via Eq. (2),
- ``SHR^{old}_{S,R_u}`` — the upstream SHR recorded at the last reshape,
  used by reshaping Condition I.

The :class:`StateManager` maintains this state for every on-tree node and
*accounts for the control messages* the distributed protocol would spend
keeping it consistent.  Two maintenance modes implement the design choice
discussed in §3.3.2:

``eager``
    Every membership change immediately propagates: ``N`` updates travel
    up the path to the source, then refreshed ``SHR`` values travel down
    into every subtree whose value changed ("a new tree-wide update
    process").

``deferred``
    ``SHR`` recalculation is postponed until a query from a joining member
    actually needs the value; the cost is then one message per hop up the
    path from the queried node to the source ("the maintenance overhead is
    amortized into each member's join process").

Both modes always *answer* queries with values consistent with the current
tree (the deferred mode recomputes on demand), so protocol behaviour is
identical — only the message accounting differs.  The overhead ablation
bench compares the two counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import NotOnTreeError, ConfigurationError
from repro.graph.topology import NodeId
from repro.multicast.tree import MulticastTree
from repro.obs import NULL_OBS, Observability
from repro.core.shr import shr_incremental, subtree_member_counts


@dataclass
class SmrpNodeState:
    """The state block one on-tree node keeps (Figure 3 in the paper)."""

    node: NodeId
    upstream: NodeId | None
    n_r: int = 0
    n_per_interface: dict[NodeId, int] = field(default_factory=dict)
    shr: int = 0
    shr_old_upstream: int = 0

    def consistent(self) -> bool:
        """``N_R`` must equal the sum of interface counts plus self-membership.

        The self-membership term is folded into ``n_r`` by the manager, so
        here we only check it is never below the interface sum.
        """
        return self.n_r >= sum(self.n_per_interface.values())


@dataclass
class MessageCounters:
    """Control-message accounting for state maintenance."""

    n_updates: int = 0  # hop-by-hop N_R updates toward the source
    shr_pushes: int = 0  # downward SHR refresh messages (eager mode)
    shr_pulls: int = 0  # on-demand recomputation messages (deferred mode)

    @property
    def total(self) -> int:
        return self.n_updates + self.shr_pushes + self.shr_pulls


class StateManager:
    """Maintains per-node SMRP state consistently with a multicast tree.

    Parameters
    ----------
    tree:
        The tree whose state is being maintained.  The manager reads the
        tree but never mutates it.
    mode:
        ``"eager"`` or ``"deferred"`` (see module docstring).
    """

    def __init__(
        self,
        tree: MulticastTree,
        mode: str = "eager",
        obs: Observability | None = None,
    ) -> None:
        if mode not in ("eager", "deferred"):
            raise ConfigurationError(f"unknown state mode {mode!r}")
        self.tree = tree
        self.mode = mode
        self.counters = MessageCounters()
        obs = obs if obs is not None else NULL_OBS
        self._c_n_updates = obs.counter("smrp.state.n_updates")
        self._c_shr_pushes = obs.counter("smrp.state.shr_pushes")
        self._c_shr_pulls = obs.counter("smrp.state.shr_pulls")
        self.states: dict[NodeId, SmrpNodeState] = {}
        self._shr_dirty = True
        self.rebuild()

    # ------------------------------------------------------------------
    # Bulk (re)construction
    # ------------------------------------------------------------------
    def rebuild(self) -> None:
        """Recompute every node's state from the tree (no message charge).

        Used at initialisation and after operations whose message cost is
        charged separately (graft/prune/move notifications).
        """
        counts = subtree_member_counts(self.tree)
        shr = shr_incremental(self.tree)
        old = self.states
        self.states = {}
        for node in self.tree.on_tree_nodes():
            upstream = self.tree.parent(node)
            state = SmrpNodeState(
                node=node,
                upstream=upstream,
                n_r=counts[node],
                n_per_interface={
                    child: counts[child] for child in self.tree.children(node)
                },
                shr=shr[node],
            )
            # Preserve the Condition-I baseline across rebuilds.
            if node in old and old[node].upstream == upstream:
                state.shr_old_upstream = old[node].shr_old_upstream
            elif upstream is not None:
                state.shr_old_upstream = shr[upstream]
            self.states[node] = state
        self._shr_dirty = False

    def rebind(self, tree: MulticastTree) -> None:
        """Re-anchor the manager to a replacement tree (session repair).

        Cumulative message counters and surviving nodes' Condition-I
        baselines carry over; the rebuild itself carries no message
        charge — restoration signaling is accounted by the recovery path
        that produced the replacement tree.
        """
        self.tree = tree
        self.rebuild()

    # ------------------------------------------------------------------
    # Event notifications (message accounting)
    # ------------------------------------------------------------------
    def notify_graft(self, graft_path: list[NodeId]) -> None:
        """Account for a join along ``graft_path`` (merge node first).

        The ``Join_Req`` travels the graft path anyway (not charged here);
        the state cost is: ``N`` increments hop-by-hop from the merge node
        to the source, plus — in eager mode — SHR refresh pushed into every
        subtree whose SHR changed (every node below any ancestor of the
        merge node).
        """
        merge = graft_path[0]
        depth = len(self.tree.path_from_source(merge)) - 1
        self.counters.n_updates += depth
        self._c_n_updates.inc(depth)
        if self.mode == "eager":
            pushed = self._changed_subtree_size(merge)
            self.counters.shr_pushes += pushed
            self._c_shr_pushes.inc(pushed)
            self.rebuild()
        else:
            self._shr_dirty = True
            self._rebuild_counts_only()

    def notify_prune(self, pruned_from: NodeId) -> None:
        """Account for a leave whose ``Leave_Req`` stopped at ``pruned_from``."""
        depth = len(self.tree.path_from_source(pruned_from)) - 1
        self.counters.n_updates += depth
        self._c_n_updates.inc(depth)
        if self.mode == "eager":
            pushed = self._changed_subtree_size(pruned_from)
            self.counters.shr_pushes += pushed
            self._c_shr_pushes.inc(pushed)
            self.rebuild()
        else:
            self._shr_dirty = True
            self._rebuild_counts_only()

    def notify_move(self, mover: NodeId) -> None:
        """Account for a reshape/recovery path switch at ``mover``.

        Charged as a prune at the old attachment plus a graft at the new
        one; both attachments are read from the *current* (post-move) tree,
        so callers invoke this after mutating the tree.
        """
        parent = self.tree.parent(mover)
        anchor = parent if parent is not None else mover
        depth = len(self.tree.path_from_source(anchor)) - 1
        self.counters.n_updates += 2 * depth
        self._c_n_updates.inc(2 * depth)
        if self.mode == "eager":
            pushed = self._changed_subtree_size(anchor)
            self.counters.shr_pushes += pushed
            self._c_shr_pushes.inc(pushed)
            self.rebuild()
        else:
            self._shr_dirty = True
            self._rebuild_counts_only()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def state_of(self, node: NodeId) -> SmrpNodeState:
        try:
            return self.states[node]
        except KeyError:
            raise NotOnTreeError(node) from None

    def shr(self, node: NodeId) -> int:
        """``SHR_{S,node}``, recomputing lazily in deferred mode.

        In deferred mode the recomputation walks the path from the source
        to the node, one pull message per hop (§3.3.2).
        """
        if node not in self.states:
            raise NotOnTreeError(node)
        if self._shr_dirty:
            if self.mode == "deferred":
                pulled = len(self.tree.path_from_source(node)) - 1
                self.counters.shr_pulls += pulled
                self._c_shr_pulls.inc(pulled)
            self._refresh_shr()
        return self.states[node].shr

    def shr_snapshot(self) -> dict[NodeId, int]:
        """All SHR values (forces a refresh in deferred mode).

        Charged as one pull per on-tree link: a full tree walk answers
        every node at once.
        """
        if self._shr_dirty:
            if self.mode == "deferred":
                pulled = max(len(self.states) - 1, 0)
                self.counters.shr_pulls += pulled
                self._c_shr_pulls.inc(pulled)
            self._refresh_shr()
        return {node: st.shr for node, st in self.states.items()}

    def record_reshape_baseline(self, node: NodeId) -> None:
        """Store ``SHR^{old}_{S,R_u}`` at ``node`` after a reshape decision."""
        state = self.state_of(node)
        if state.upstream is not None:
            state.shr_old_upstream = self.shr(state.upstream)

    def condition_i_delta(self, node: NodeId) -> int:
        """``SHR_{S,R_u} − SHR^{old}_{S,R_u}`` as seen by ``node``."""
        state = self.state_of(node)
        if state.upstream is None:
            return 0
        return self.shr(state.upstream) - state.shr_old_upstream

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _refresh_shr(self) -> None:
        shr = shr_incremental(self.tree)
        for node, value in shr.items():
            if node in self.states:
                self.states[node].shr = value
        self._shr_dirty = False

    def _rebuild_counts_only(self) -> None:
        """Synchronise node set and N counters without touching SHR."""
        counts = subtree_member_counts(self.tree)
        old = self.states
        self.states = {}
        for node in self.tree.on_tree_nodes():
            upstream = self.tree.parent(node)
            previous = old.get(node)
            state = SmrpNodeState(
                node=node,
                upstream=upstream,
                n_r=counts[node],
                n_per_interface={
                    child: counts[child] for child in self.tree.children(node)
                },
                shr=previous.shr if previous else 0,
            )
            if previous is not None and previous.upstream == upstream:
                state.shr_old_upstream = previous.shr_old_upstream
            self.states[node] = state

    def _changed_subtree_size(self, anchor: NodeId) -> int:
        """Nodes whose SHR changes when ``N`` changed on the path S→anchor.

        Every node whose path shares a link with ``S → anchor`` sees a new
        SHR: that is the union of subtrees rooted at each node on that
        path.  Equals the subtree of the first path node below S.
        """
        path = self.tree.path_from_source(anchor)
        if len(path) < 2:
            return 0
        return len(self.tree.subtree_nodes(path[1]))
