"""The SMRP protocol engine (graph level).

:class:`SMRPProtocol` ties together every mechanism of §3.2–3.3 over a
topology: SHR-driven path selection with the ``D_thresh`` bound, explicit
join/leave processing, distributed-state maintenance with message
accounting, Condition-I/Condition-II tree reshaping, the partial-knowledge
query scheme, and local-detour failure recovery.

This engine computes the same trees the message-level implementation in
:mod:`repro.sim.protocols` converges to (a cross-validation test asserts
it), but runs orders of magnitude faster — the parameter sweeps of
Figures 7–10 use it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import (
    AlreadyMemberError,
    ConfigurationError,
    NotMemberError,
)
from repro.graph.topology import NodeId, Topology
from repro.multicast.tree import MulticastTree
from repro.multicast.validation import check_tree_invariants
from repro.obs import NULL_OBS, Observability
from repro.core.candidates import enumerate_candidates
from repro.core.join import PathSelection, select_path
from repro.core.leave import LeaveOutcome, process_leave
from repro.core.query import enumerate_candidates_query
from repro.core.recovery import (
    RecoveryResult,
    TreeRepairReport,
    local_detour_recovery,
    repair_tree,
)
from repro.core.reshape import ReshapeDecision, apply_reshape, evaluate_reshape
from repro.core.state import StateManager
from repro.routing.failure_view import NO_FAILURES, FailureSet
from repro.routing.route_cache import RouteCache
from repro.routing.spf import dijkstra


@dataclass(frozen=True)
class SMRPConfig:
    """Protocol configuration.

    Attributes
    ----------
    d_thresh:
        The delay-stretch bound of the Path Selection Criterion (§3.2.2).
        The paper sweeps 0.1–0.4 and uses 0.3 as its headline setting.
    reshape_enabled:
        Master switch for tree reshaping (§3.2.3); the reshaping ablation
        turns it off.
    reshape_shr_threshold:
        Condition I threshold on ``SHR_{S,R_u} − SHR^{old}_{S,R_u}``.
    reshape_scope:
        ``"members"`` — only receivers re-evaluate their paths (each moves
        with its subtree); ``"all"`` — every non-source on-tree node does
        (closest to the paper's per-node timers, more churn).
    max_reshape_rounds:
        Cap on cascading reshapes processed after a single membership
        event, preventing livelock on adversarial topologies.
    knowledge:
        ``"full"`` — members know the topology and all SHR values
        (§3.2.2's assumption); ``"query"`` — the neighbor-relay query
        scheme of §3.3.1.
    state_mode:
        ``"eager"`` or ``"deferred"`` SHR maintenance (§3.3.2); affects
        only the control-message accounting.
    allow_fallback:
        Accept the minimum-delay candidate when nothing satisfies the
        delay bound (see :func:`repro.core.join.select_path`).
    self_check:
        Re-validate tree invariants after every mutation.
    """

    d_thresh: float = 0.3
    reshape_enabled: bool = True
    reshape_shr_threshold: int = 2
    reshape_scope: str = "members"
    max_reshape_rounds: int = 10
    knowledge: str = "full"
    state_mode: str = "eager"
    allow_fallback: bool = True
    self_check: bool = True

    def __post_init__(self) -> None:
        if self.d_thresh < 0:
            raise ConfigurationError(f"d_thresh must be >= 0, got {self.d_thresh}")
        if self.reshape_scope not in ("members", "all"):
            raise ConfigurationError(
                f"unknown reshape_scope {self.reshape_scope!r}"
            )
        if self.knowledge not in ("full", "query"):
            raise ConfigurationError(f"unknown knowledge mode {self.knowledge!r}")
        if self.max_reshape_rounds < 0:
            raise ConfigurationError("max_reshape_rounds must be >= 0")


@dataclass
class ProtocolStats:
    """Cumulative protocol activity, for the overhead ablations."""

    joins: int = 0
    fallback_joins: int = 0
    leaves: int = 0
    reshape_evaluations: int = 0
    reshapes_performed: int = 0
    query_messages: int = 0
    query_hops: int = 0
    join_signaling_hops: int = 0
    leave_signaling_hops: int = 0


class SMRPProtocol:
    """Survivable Multicast Routing Protocol over a topology.

    Examples
    --------
    >>> from repro.graph import figure4_topology
    >>> from repro.graph.generators import node_id
    >>> proto = SMRPProtocol(figure4_topology(), source=node_id("S"))
    >>> _ = proto.join(node_id("E"))
    >>> proto.shr_values()[node_id("D")]
    2
    """

    name = "SMRP"

    def __init__(
        self,
        topology: Topology,
        source: NodeId,
        config: SMRPConfig | None = None,
        obs: Observability | None = None,
        route_cache: "RouteCache | None" = None,
    ) -> None:
        self.topology = topology
        self.source = source
        self.config = config or SMRPConfig()
        self.obs = obs if obs is not None else NULL_OBS
        # Optional memoisation of member-rooted SPF state (the D_thresh
        # bound's D^SPF(S, NR)); the cache is failure-aware, so
        # failure-masked searches consult it too.
        self.route_cache = route_cache
        self.tree = MulticastTree(topology, source)
        self.state = StateManager(
            self.tree, mode=self.config.state_mode, obs=self.obs
        )
        self.stats = ProtocolStats()
        # Disabled registries hand out shared no-op instruments, so these
        # stay unconditional single calls on every path below.
        metrics = self.obs.metrics
        self._c_joins = metrics.counter("smrp.joins")
        self._c_fallback_joins = metrics.counter("smrp.fallback_joins")
        self._c_leaves = metrics.counter("smrp.leaves")
        self._c_reshape_evals = metrics.counter("smrp.reshape_evaluations")
        self._c_reshapes = metrics.counter("smrp.reshapes_performed")
        self._c_query_messages = metrics.counter("smrp.query_messages")
        self._c_query_hops = metrics.counter("smrp.query_hops")
        self._c_join_hops = metrics.counter("smrp.join_signaling_hops")
        self._c_leave_hops = metrics.counter("smrp.leave_signaling_hops")
        # Per-message-type transmission counts (the §4.4 overhead figure):
        # at the graph level each signaling hop is one control message
        # crossing one link, so the hop counts double as message counts.
        self._c_msg_join = metrics.counter("smrp.msg.Join_Req")
        self._c_msg_leave = metrics.counter("smrp.msg.Leave_Req")
        self._c_msg_query = metrics.counter("smrp.msg.Query")

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def join(
        self, member: NodeId, failures: FailureSet = NO_FAILURES
    ) -> PathSelection | None:
        """Process a member join; returns the path selection (or None when
        the member was already an on-tree relay and simply became a
        receiver)."""
        if self.tree.is_member(member):
            raise AlreadyMemberError(member)
        with self.obs.span("smrp.join"):
            self.stats.joins += 1
            self._c_joins.inc()
            if self.tree.is_on_tree(member):
                self.tree.add_member(member)
                self.state.notify_graft([member])
                self._after_membership_change()
                return None

            shr_values = self.state.shr_snapshot()
            if self.config.knowledge == "query":
                candidates, query_stats = enumerate_candidates_query(
                    self.topology, self.tree, member, shr_values, failures=failures
                )
                self.stats.query_messages += query_stats.queries_sent
                self.stats.query_hops += query_stats.query_hops
                self._c_query_messages.inc(query_stats.queries_sent)
                self._c_query_hops.inc(query_stats.query_hops)
                self._c_msg_query.inc(query_stats.queries_sent)
            else:
                candidates = enumerate_candidates(
                    self.topology,
                    self.tree,
                    member,
                    shr_values,
                    failures=failures,
                    obs=self.obs,
                )
            if self.route_cache is not None:
                spf = self.route_cache.shortest_paths(
                    self.topology,
                    member,
                    weight="delay",
                    failures=failures,
                    obs=self.obs,
                )
            else:
                spf = dijkstra(
                    self.topology, member, weight="delay", failures=failures
                )
            selection = select_path(
                candidates,
                spf.distance(self.source),
                self.config.d_thresh,
                allow_fallback=self.config.allow_fallback,
            )
            if selection.fallback:
                self.stats.fallback_joins += 1
                self._c_fallback_joins.inc()

            graft = list(selection.candidate.graft_path)
            self.tree.graft(graft)
            self.state.notify_graft(graft)
            self.stats.join_signaling_hops += len(graft) - 1
            self._c_join_hops.inc(len(graft) - 1)
            self._c_msg_join.inc(len(graft) - 1)
            self._after_membership_change()
            return selection

    def leave(self, member: NodeId) -> LeaveOutcome:
        """Process a member departure (``Leave_Req`` walk, §3.2.2)."""
        if not self.tree.is_member(member):
            raise NotMemberError(member)
        with self.obs.span("smrp.leave"):
            self.stats.leaves += 1
            self._c_leaves.inc()
            outcome = process_leave(self.tree, member)
            self.state.notify_prune(outcome.stopped_at)
            self.stats.leave_signaling_hops += outcome.hops_travelled
            self._c_leave_hops.inc(outcome.hops_travelled)
            self._c_msg_leave.inc(outcome.hops_travelled)
            self._after_membership_change()
            return outcome

    def build(self, members: list[NodeId]) -> MulticastTree:
        """Join a member list in order; returns the tree."""
        with self.obs.span("smrp.build"):
            for member in members:
                self.join(member)
        return self.tree

    # ------------------------------------------------------------------
    # Reshaping
    # ------------------------------------------------------------------
    def periodic_reshape(self) -> list[ReshapeDecision]:
        """Condition II: every in-scope node re-runs path selection.

        Returns the decisions of the performed reshapes, in order.
        """
        performed: list[ReshapeDecision] = []
        for _ in range(max(self.config.max_reshape_rounds, 1)):
            moved = False
            for node in self._reshape_scope_nodes():
                decision = self._reshape_once(node)
                if decision is not None and decision.performed:
                    performed.append(decision)
                    moved = True
            if not moved:
                break
        return performed

    def _after_membership_change(self) -> None:
        if self.config.self_check:
            check_tree_invariants(self.tree)
        if not self.config.reshape_enabled:
            return
        # Condition I: nodes whose upstream SHR grew past the threshold
        # since their last reshape re-run path selection.
        for _ in range(max(self.config.max_reshape_rounds, 1)):
            triggered = [
                node
                for node in self._reshape_scope_nodes()
                if self.state.condition_i_delta(node)
                >= self.config.reshape_shr_threshold
            ]
            if not triggered:
                return
            moved = False
            for node in triggered:
                decision = self._reshape_once(node)
                if decision is not None and decision.performed:
                    moved = True
            if not moved:
                return

    def _reshape_once(self, node: NodeId) -> ReshapeDecision | None:
        if not self.tree.is_on_tree(node) or node == self.source:
            return None
        self.stats.reshape_evaluations += 1
        self._c_reshape_evals.inc()
        with self.obs.span("smrp.reshape"):
            decision = evaluate_reshape(
                self.topology,
                self.tree,
                node,
                self.config.d_thresh,
                route_cache=self.route_cache,
                obs=self.obs,
            )
            if decision.performed:
                apply_reshape(self.tree, decision)
                self.state.notify_move(node)
                self.stats.reshapes_performed += 1
                self._c_reshapes.inc()
                if self.config.self_check:
                    check_tree_invariants(self.tree)
        # The reshaping process ran: record the fresh upstream SHR as the
        # new Condition-I baseline whether or not the node moved.
        self.state.record_reshape_baseline(node)
        return decision

    def _reshape_scope_nodes(self) -> list[NodeId]:
        if self.config.reshape_scope == "members":
            return sorted(self.tree.members)
        return [n for n in self.tree.on_tree_nodes() if n != self.source]

    # ------------------------------------------------------------------
    # Recovery and introspection
    # ------------------------------------------------------------------
    def recover(self, member: NodeId, failures: FailureSet) -> RecoveryResult:
        """Local-detour restoration of ``member`` (measurement only)."""
        with self.obs.span("smrp.recover"):
            tracer = self.obs.tracer
            if tracer is not None:
                # Episodes opened under this entry point are labelled with
                # the protocol API that produced them.
                with tracer.origin("smrp.recover"):
                    return local_detour_recovery(
                        self.topology, self.tree, member, failures, obs=self.obs
                    )
            return local_detour_recovery(
                self.topology, self.tree, member, failures, obs=self.obs
            )

    def repair(self, failures: FailureSet) -> TreeRepairReport:
        """Whole-session restoration: repair the tree, rebind the state.

        Unlike :meth:`recover` — a per-member measurement that leaves the
        session untouched — this *mutates* the session the way §3.2.3's
        hierarchical recovery would: disconnected members re-attach via
        local detours (nearest-first, so restored members compound), the
        repaired tree replaces the current one, and the per-node SHR
        state is rebuilt against it.  Each protocol instance owns its
        tree and state outright, so concurrent hosted groups repaired
        against the same failure stay fully isolated from one another.
        """
        with self.obs.span("smrp.repair"):
            report = repair_tree(
                self.topology,
                self.tree,
                failures,
                strategy="local",
                obs=self.obs,
                route_cache=self.route_cache,
            )
            self.tree = report.repaired_tree
            self.state.rebind(self.tree)
            if self.config.self_check:
                check_tree_invariants(self.tree)
        return report

    def shr_values(self) -> dict[NodeId, int]:
        """Current ``SHR_{S,R}`` for every on-tree node."""
        return self.state.shr_snapshot()
