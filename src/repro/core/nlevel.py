"""N-level hierarchical recovery (the generalization of §3.3.3).

:class:`NLevelMulticast` runs one SMRP instance per *active* domain of an
:class:`~repro.graph.nlevel.NLevelNetwork`:

- the source's leaf domain's tree is rooted at the source itself; its
  agent (gateway) joins as a relaying member — the paper's "exception"
  domain;
- every other domain's tree is rooted at the point where data enters it:
  its own gateway for domains below the data path, or the gateway of the
  next domain toward the source for domains the data crosses upward;
- data between the source and a member flows up the source's domain
  chain to their **lowest common ancestor domain** and back down the
  member's chain — each hop carried by that domain's own tree (the
  S → R1 path of Figure 6 crossing RD1, RD0, RD2, generalized to any
  nesting depth);
- a failure is repaired strictly inside the domain that contains it.

Relay memberships are reference-counted so domains activate exactly when
the first member needs them and dissolve with the last.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.errors import (
    AlreadyMemberError,
    ConfigurationError,
    NotMemberError,
    ReproError,
)
from repro.graph.nlevel import NestedDomain, NLevelNetwork
from repro.graph.topology import NodeId, Topology, edge_key
from repro.core.protocol import SMRPConfig, SMRPProtocol
from repro.core.recovery import TreeRepairReport, repair_tree
from repro.routing.failure_view import FailureSet


@dataclass
class NLevelRecoveryReport:
    """What an N-level recovery touched."""

    domains_reconfigured: list[int] = field(default_factory=list)
    repairs: dict[int, TreeRepairReport] = field(default_factory=dict)
    scope_nodes: int = 0
    #: Domains whose agent failed and was replaced by a standby.
    failovers: dict[int, NodeId] = field(default_factory=dict)
    #: Domains whose agent failed with no standby left: their members are
    #: unreachable until the operator intervenes.
    dead_domains: list[int] = field(default_factory=list)
    #: Members that could not be re-attached during agent failover (the
    #: dead agent was a cut vertex of their domain).
    failover_casualties: list[NodeId] = field(default_factory=list)

    @property
    def total_recovery_distance(self) -> float:
        return sum(r.total_recovery_distance for r in self.repairs.values())


class NLevelMulticast:
    """SMRP over an arbitrary-depth domain hierarchy."""

    def __init__(
        self,
        network: NLevelNetwork,
        source: NodeId,
        config: SMRPConfig | None = None,
    ) -> None:
        self.network = network
        self.source = source
        self.config = config or SMRPConfig()
        source_domain_id = network.domain_of.get(source)
        if source_domain_id is None:
            raise ConfigurationError(f"source {source} is not in the network")
        if not network.domains[source_domain_id].is_leaf:
            raise ConfigurationError(
                "the source must live in a leaf domain (members cluster at "
                "the lowest level, §3.3.3)"
            )
        self.source_domain_id = source_domain_id
        self.source_path = network.domain_path(source_domain_id)
        self._protocols: dict[int, SMRPProtocol] = {}
        self._graphs: dict[int, Topology] = {}
        self._members: set[NodeId] = set()
        self._relay_demand: Counter[tuple[int, NodeId]] = Counter()

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def join(self, member: NodeId) -> None:
        if member in self._members:
            raise AlreadyMemberError(member)
        leaf = self._leaf_domain_of(member)
        for domain_id, relay in self._relay_requirements(leaf.domain_id):
            self._relay_demand[(domain_id, relay)] += 1
            protocol = self._protocol_for(domain_id)
            if not protocol.tree.is_member(relay):
                protocol.join(relay)
        self._protocol_for(leaf.domain_id).join(member)
        self._members.add(member)

    def leave(self, member: NodeId) -> None:
        if member not in self._members:
            raise NotMemberError(member)
        leaf = self._leaf_domain_of(member)
        self._protocols[leaf.domain_id].leave(member)
        self._members.discard(member)
        for domain_id, relay in reversed(
            self._relay_requirements(leaf.domain_id)
        ):
            self._relay_demand[(domain_id, relay)] -= 1
            if self._relay_demand[(domain_id, relay)] > 0:
                continue
            del self._relay_demand[(domain_id, relay)]
            protocol = self._protocols.get(domain_id)
            if protocol is None:
                continue
            if relay in self._members and self.network.domain_of.get(relay) == domain_id:
                continue  # the relay is also a genuine receiver
            if protocol.tree.is_member(relay):
                protocol.leave(relay)
        self._garbage_collect()

    @property
    def members(self) -> frozenset[NodeId]:
        return frozenset(self._members)

    def active_domains(self) -> list[int]:
        return sorted(self._protocols)

    def protocol(self, domain_id: int) -> SMRPProtocol:
        try:
            return self._protocols[domain_id]
        except KeyError:
            raise ConfigurationError(f"domain {domain_id} is not active") from None

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def end_to_end_delay(self, member: NodeId) -> float:
        """Delay S → member summed across the domain chain's trees."""
        if member not in self._members:
            raise NotMemberError(member)
        leaf = self._leaf_domain_of(member)
        total = 0.0
        for domain_id, exit_node in self._data_path(leaf.domain_id, member):
            tree = self._protocols[domain_id].tree
            total += tree.delay_from_source(exit_node)
        return total

    def total_cost(self) -> float:
        """Sum of all active domain trees' costs (link sets are disjoint)."""
        return sum(p.tree.tree_cost() for p in self._protocols.values())

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def recover(
        self,
        failures: FailureSet,
        route_cache=None,
        route_obs=None,
        obs=None,
    ) -> NLevelRecoveryReport:
        """Repair every affected domain inside its own sub-topology.

        Handles two failure classes:

        - component failures inside a domain → local-detour repair of that
          domain's tree (the §3.3.3 confinement);
        - **agent failures**: when a domain's gateway node itself dies,
          a standby agent (generated multi-homed into the parent domain)
          takes over — the domain's tree re-roots at the standby, the
          parent's relay membership switches to it, and everything else
          stays untouched.  Without a live standby the domain is reported
          dead.

        An ``obs`` with a restoration tracer attached yields one episode
        per member re-attached (``origin="repair"``), domain by domain.
        """
        report = NLevelRecoveryReport()
        self._failover_dead_agents(failures, report)
        for domain_id, protocol in sorted(self._protocols.items()):
            local = self._restrict_failures(domain_id, failures)
            if local.is_empty or not protocol.tree.affected_by(local):
                continue
            repair = repair_tree(
                self._graphs[domain_id],
                protocol.tree,
                local,
                strategy="local",
                obs=obs,
                route_cache=route_cache,
                route_obs=route_obs,
            )
            protocol.tree = repair.repaired_tree
            protocol.state.tree = repair.repaired_tree
            protocol.state.rebuild()
            report.domains_reconfigured.append(domain_id)
            report.repairs[domain_id] = repair
            report.scope_nodes += self._graphs[domain_id].num_nodes
        for member in sorted(self._members):
            if failures.node_failed(member):
                self._members.discard(member)
        return report

    # ------------------------------------------------------------------
    # Agent failover
    # ------------------------------------------------------------------
    def _failover_dead_agents(
        self, failures: FailureSet, report: NLevelRecoveryReport
    ) -> None:
        """Replace failed gateway agents by their standbys."""
        for domain in self.network.domains:
            gateway = domain.gateway
            if gateway is None or not failures.node_failed(gateway):
                continue
            if not self._gateway_in_use(domain):
                continue
            replacement = next(
                (
                    s
                    for s in domain.standbys
                    if not failures.node_failed(s)
                ),
                None,
            )
            if replacement is None:
                report.dead_domains.append(domain.domain_id)
                self._abandon_domain_subtree(domain)
                continue
            self._promote_standby(domain, gateway, replacement, failures, report)
            report.failovers[domain.domain_id] = replacement

    def _gateway_in_use(self, domain: NestedDomain) -> bool:
        """True when the agent currently relays for anyone."""
        parent_id = domain.parent
        if parent_id is None:
            return False
        return any(
            d == parent_id and relay == domain.gateway
            for d, relay in self._relay_demand
        ) or domain.domain_id in self._protocols

    def _promote_standby(
        self,
        domain: NestedDomain,
        old_gateway: NodeId,
        replacement: NodeId,
        failures: FailureSet,
        report: NLevelRecoveryReport,
    ) -> None:
        """Re-root the domain on ``replacement`` and rewire the parent."""
        # The topology gains no links — standbys were multi-homed at
        # generation time — but the cached domain graphs of the domain and
        # its parent must be rebuilt to expose the standby's uplink.
        domain.gateway = replacement
        self._graphs.pop(domain.domain_id, None)
        if domain.parent is not None:
            self._graphs.pop(domain.parent, None)

        # Rebuild the domain's own tree rooted at the new agent.  When the
        # old agent relayed *upward* (source-path domains carry their own
        # gateway as a member), the replacement inherits that duty too.
        own_relay = self._relay_demand.pop((domain.domain_id, old_gateway), 0)
        if own_relay:
            self._relay_demand[(domain.domain_id, replacement)] += own_relay
        protocol = self._protocols.pop(domain.domain_id, None)
        if protocol is not None:
            old_members = [
                m
                for m in protocol.tree.members
                if m != old_gateway and not failures.node_failed(m)
            ]
            if own_relay and replacement not in old_members:
                old_members.append(replacement)
            fresh = self._protocol_for(domain.domain_id)
            for member in sorted(old_members):
                if member == fresh.tree.source:
                    if not fresh.tree.is_member(member):
                        fresh.tree.add_member(member)
                    continue
                try:
                    fresh.join(member, failures=failures)
                except ReproError:
                    # The dead agent was a cut vertex of this domain: the
                    # member has no path to the standby.  Domain
                    # confinement means nobody else can serve it either.
                    self._drop_casualty(member, report)

        # Rewire the parent's relay membership and the demand counters.
        parent_id = domain.parent
        if parent_id is None:
            return
        moved = self._relay_demand.pop((parent_id, old_gateway), 0)
        if moved:
            self._relay_demand[(parent_id, replacement)] += moved
        parent_protocol = self._protocols.get(parent_id)
        if parent_protocol is not None:
            # The parent's graph changed (standby uplink now visible):
            # rebuild the parent's tree over the refreshed graph.
            parent_members = [
                m
                for m in parent_protocol.tree.members
                if m != old_gateway and not failures.node_failed(m)
            ]
            if moved and replacement not in parent_members:
                parent_members.append(replacement)
            del self._protocols[parent_id]
            fresh_parent = self._protocol_for(parent_id)
            for member in sorted(parent_members):
                if member == fresh_parent.tree.source:
                    if not fresh_parent.tree.is_member(member):
                        fresh_parent.tree.add_member(member)
                    continue
                try:
                    fresh_parent.join(member, failures=failures)
                except ReproError:
                    self._drop_casualty(member, report)

    def _drop_casualty(self, member: NodeId, report: NLevelRecoveryReport) -> None:
        report.failover_casualties.append(member)
        self._members.discard(member)

    def _abandon_domain_subtree(self, domain: NestedDomain) -> None:
        """Drop all session state of a domain with no live agent."""
        self._protocols.pop(domain.domain_id, None)
        for member in sorted(self._members):
            if self.network.domain_of.get(member) == domain.domain_id:
                self._members.discard(member)
        parent_id = domain.parent
        if parent_id is not None:
            self._relay_demand.pop((parent_id, domain.gateway), None)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _leaf_domain_of(self, member: NodeId) -> NestedDomain:
        domain_id = self.network.domain_of.get(member)
        if domain_id is None:
            raise ConfigurationError(f"node {member} is not in the network")
        domain = self.network.domains[domain_id]
        if not domain.is_leaf:
            raise ConfigurationError(
                f"node {member} is not in a leaf domain; members cluster at "
                "the lowest level (§3.3.3)"
            )
        return domain

    def _entry_point(self, domain_id: int) -> NodeId:
        """Where data enters a domain (the root of its SMRP tree)."""
        if domain_id == self.source_domain_id:
            return self.source
        if domain_id in self.source_path:
            # Data arrives from below: at the gateway of the next domain
            # toward the source.
            index = self.source_path.index(domain_id)
            child_toward_source = self.source_path[index + 1]
            gateway = self.network.domains[child_toward_source].gateway
            assert gateway is not None
            return gateway
        gateway = self.network.domains[domain_id].gateway
        assert gateway is not None
        return gateway

    def _relay_requirements(self, leaf_id: int) -> list[tuple[int, NodeId]]:
        """Relay memberships needed for data to reach ``leaf_id``.

        Upward: every source-chain domain below the LCA relays through its
        own gateway.  Downward: every domain from the LCA to the target
        leaf joins the gateway of the next domain down.
        """
        lca = self.network.lowest_common_ancestor(self.source_domain_id, leaf_id)
        requirements: list[tuple[int, NodeId]] = []
        # Upward half: source leaf → … → just below the LCA.
        for domain_id in reversed(self.source_path):
            if domain_id == lca:
                break
            gateway = self.network.domains[domain_id].gateway
            assert gateway is not None
            requirements.append((domain_id, gateway))
        # Downward half: LCA → … → the leaf's parent.
        member_path = self.network.domain_path(leaf_id)
        start = member_path.index(lca)
        for upper, lower in zip(member_path[start:], member_path[start + 1 :]):
            gateway = self.network.domains[lower].gateway
            assert gateway is not None
            requirements.append((upper, gateway))
        return requirements

    def _data_path(
        self, leaf_id: int, member: NodeId
    ) -> list[tuple[int, NodeId]]:
        """(domain, exit node) hops the data crosses from S to ``member``."""
        lca = self.network.lowest_common_ancestor(self.source_domain_id, leaf_id)
        hops: list[tuple[int, NodeId]] = []
        for domain_id in reversed(self.source_path):
            if domain_id == lca:
                break
            gateway = self.network.domains[domain_id].gateway
            assert gateway is not None
            hops.append((domain_id, gateway))
        member_path = self.network.domain_path(leaf_id)
        start = member_path.index(lca)
        for upper, lower in zip(member_path[start:], member_path[start + 1 :]):
            gateway = self.network.domains[lower].gateway
            assert gateway is not None
            hops.append((upper, gateway))
        hops.append((leaf_id, member))
        return hops

    def _protocol_for(self, domain_id: int) -> SMRPProtocol:
        if domain_id not in self._protocols:
            self._protocols[domain_id] = SMRPProtocol(
                self._domain_graph(domain_id),
                self._entry_point(domain_id),
                config=self.config,
            )
        return self._protocols[domain_id]

    def _domain_graph(self, domain_id: int) -> Topology:
        """The domain's recovery sub-topology: its nodes plus its
        children's gateways, with all links among them."""
        if domain_id not in self._graphs:
            domain = self.network.domains[domain_id]
            nodes = set(domain.nodes)
            for child_id in domain.children:
                gateway = self.network.domains[child_id].gateway
                assert gateway is not None
                nodes.add(gateway)
            graph = Topology(f"nlevel-domain-{domain_id}")
            for node in sorted(nodes):
                graph.add_node(node, pos=self.network.topology.position(node))
            for link in self.network.topology.links():
                if link.u in nodes and link.v in nodes:
                    graph.add_link(link.u, link.v, delay=link.delay, cost=link.cost)
            self._graphs[domain_id] = graph
        return self._graphs[domain_id]

    def _restrict_failures(self, domain_id: int, failures: FailureSet) -> FailureSet:
        graph = self._domain_graph(domain_id)
        links = frozenset(
            edge_key(u, v)
            for u, v in failures.failed_links
            if graph.has_node(u) and graph.has_node(v) and graph.has_link(u, v)
        )
        nodes = frozenset(n for n in failures.failed_nodes if graph.has_node(n))
        return FailureSet(failed_links=links, failed_nodes=nodes)

    def _garbage_collect(self) -> None:
        """Drop protocols whose trees no longer serve anyone."""
        for domain_id in list(self._protocols):
            if not self._protocols[domain_id].tree.members:
                del self._protocols[domain_id]
