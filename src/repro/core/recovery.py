"""Failure restoration: local detours vs. the global (SPF re-join) detour.

This module implements the two recovery strategies the evaluation
compares (§4.3.1):

**Local detour** (SMRP's mechanism)
    The disconnected member immediately reconnects to the *nearest*
    on-tree node still connected to the source, over the shortest
    non-faulty path.  Only failure detection and a short graft stand
    between the failure and restored service — no waiting for unicast
    re-convergence.

**Global detour** (what PIM/MOSPF do today)
    The member waits for the unicast routing protocol to re-converge,
    then re-joins along its new shortest path toward the source, grafting
    at the first surviving on-tree router that path meets.

Both produce a :class:`RecoveryResult` carrying the paper's recovery
distance ``RD_R`` — the length of the restoration path, i.e. of the links
newly brought into the tree ("if D chooses D→C→A→S, the restoration path
is D→C and hence RD_D = 2").

The per-member *measurement* functions never mutate the tree;
:func:`repair_tree` actually restores a whole session (all disconnected
members) and returns the repaired tree.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import RecoveryError, UnrecoverableFailureError
from repro.graph.topology import Edge, NodeId, Topology, edge_key
from repro.multicast.tree import MulticastTree
from repro.obs import NULL_OBS, Observability
from repro.obs.tracing import Episode, RestorationTracer
from repro.routing.failure_view import NO_FAILURES, FailureSet
from repro.routing.link_state import ConvergenceModel
from repro.routing.spf import ShortestPaths, dijkstra


@dataclass(frozen=True)
class RecoveryResult:
    """Outcome of one member's restoration.

    Attributes
    ----------
    member:
        The disconnected member.
    strategy:
        ``"local"`` or ``"global"``.
    attach_node:
        The surviving on-tree node the member reconnected through.
    restoration_path:
        ``member → … → attach_node`` — the links brought into the tree.
    recovery_distance:
        ``RD_R``: delay-weighted length of the restoration path.
    recovery_hops:
        Hop-count variant of the same metric (for sensitivity checks).
    new_end_to_end_delay:
        Post-recovery delay ``D_{S,member}``.
    already_connected:
        True when the failure did not actually cut this member off
        (``RD_R = 0`` and the other fields describe the status quo).
    """

    member: NodeId
    strategy: str
    attach_node: NodeId
    restoration_path: tuple[NodeId, ...]
    recovery_distance: float
    recovery_hops: int
    new_end_to_end_delay: float
    already_connected: bool = False


def worst_case_failure(tree: MulticastTree, member: NodeId) -> FailureSet:
    """The paper's worst-case scenario for ``member`` (§4.3.1).

    Fails the on-tree link closest to the source on the member's path
    (the incident link of ``S`` toward ``member``), which detaches the
    largest possible portion of the member's branch.
    """
    path = tree.path_from_source(member)
    if len(path) < 2:
        raise RecoveryError(f"member {member} is the source; nothing to fail")
    return FailureSet.links((path[0], path[1]))


def _member_paths(
    topology: Topology,
    member: NodeId,
    failures: FailureSet,
    route_cache,
    route_obs,
) -> ShortestPaths:
    """Post-failure SPF state rooted at the member.

    Routed through the failure-aware ``route_cache`` when one is supplied:
    the worst-case sweep evaluates the same ``(member, failure)`` scenario
    under several strategies and trees, and single-link failures off the
    member's failure-free tree resolve by reuse proof without a kernel run.
    """
    if route_cache is not None:
        return route_cache.shortest_paths(
            topology, member, weight="delay", failures=failures, obs=route_obs
        )
    return dijkstra(topology, member, weight="delay", failures=failures)


def local_detour_recovery(
    topology: Topology,
    tree: MulticastTree,
    member: NodeId,
    failures: FailureSet,
    obs: Observability | None = None,
    route_cache=None,
    route_obs=None,
) -> RecoveryResult:
    """Measure the local-detour restoration of ``member`` under ``failures``.

    The member connects to the surviving on-tree node at minimum
    shortest-path distance over non-faulty components.  If the shortest
    path toward that node touches the surviving tree earlier, the detour
    is truncated at the first contact (the restoration path may not cross
    the surviving tree — those links are already in service).

    ``route_cache`` memoises the post-failure SPF lookup; ``route_obs``
    attributes its cache activity (defaults to ``obs``, letting callers
    report cache traffic without double-counting recovery attempts).
    """
    obs = obs if obs is not None else NULL_OBS
    tracer = obs.tracer
    obs.counter("recovery.local.attempts").inc()
    route_obs = route_obs if route_obs is not None else obs
    surviving = tree.surviving_component(failures)
    if not surviving:
        obs.counter("recovery.local.unrecoverable").inc()
        if tracer is not None:
            _trace_unrecoverable_episode(
                tracer, member, "local", failures, "source failed"
            )
        raise UnrecoverableFailureError(member, "the source itself has failed")
    if member in surviving:
        obs.counter("recovery.local.already_connected").inc()
        result = _already_connected(tree, member, "local")
        if tracer is not None:
            _trace_recovery_episode(tracer, topology, tree, result, failures)
        return result

    paths = _member_paths(topology, member, failures, route_cache, route_obs)
    reachable = [node for node in surviving if node in paths.dist]
    if not reachable:
        obs.counter("recovery.local.unrecoverable").inc()
        if tracer is not None:
            _trace_unrecoverable_episode(
                tracer, member, "local", failures, "no path to surviving tree"
            )
        raise UnrecoverableFailureError(
            member, f"no non-faulty path to the surviving tree ({failures.describe()})"
        )
    target = min(reachable, key=lambda node: (paths.dist[node], node))
    detour = _truncate_at_first_contact(paths.path_to(target), surviving)
    attach = detour[-1]
    obs.histogram("recovery.local.hops").observe(len(detour) - 1)
    result = RecoveryResult(
        member=member,
        strategy="local",
        attach_node=attach,
        restoration_path=tuple(detour),
        recovery_distance=topology.path_delay(detour),
        recovery_hops=len(detour) - 1,
        new_end_to_end_delay=tree.delay_from_source(attach)
        + topology.path_delay(detour),
    )
    if tracer is not None:
        _trace_recovery_episode(tracer, topology, tree, result, failures)
    return result


def global_detour_recovery(
    topology: Topology,
    tree: MulticastTree,
    member: NodeId,
    failures: FailureSet,
    obs: Observability | None = None,
    route_cache=None,
    route_obs=None,
) -> RecoveryResult:
    """Measure the SPF re-join restoration of ``member`` under ``failures``.

    Models today's PIM-over-OSPF behaviour: after re-convergence the
    member's routing table holds a new shortest path to the source with
    the failed components withdrawn; the re-join travels that path and
    grafts at the first surviving on-tree router it meets.
    ``route_cache`` / ``route_obs`` as in :func:`local_detour_recovery`.
    """
    obs = obs if obs is not None else NULL_OBS
    tracer = obs.tracer
    obs.counter("recovery.global.attempts").inc()
    route_obs = route_obs if route_obs is not None else obs
    surviving = tree.surviving_component(failures)
    if not surviving:
        obs.counter("recovery.global.unrecoverable").inc()
        if tracer is not None:
            _trace_unrecoverable_episode(
                tracer, member, "global", failures, "source failed"
            )
        raise UnrecoverableFailureError(member, "the source itself has failed")
    if member in surviving:
        obs.counter("recovery.global.already_connected").inc()
        result = _already_connected(tree, member, "global")
        if tracer is not None:
            _trace_recovery_episode(tracer, topology, tree, result, failures)
        return result

    paths = _member_paths(topology, member, failures, route_cache, route_obs)
    if tree.source not in paths.dist:
        obs.counter("recovery.global.unrecoverable").inc()
        if tracer is not None:
            _trace_unrecoverable_episode(
                tracer, member, "global", failures,
                "source unreachable after re-convergence",
            )
        raise UnrecoverableFailureError(
            member, f"source unreachable after re-convergence ({failures.describe()})"
        )
    rejoin = paths.path_to(tree.source)
    detour = _truncate_at_first_contact(rejoin, surviving)
    attach = detour[-1]
    obs.histogram("recovery.global.hops").observe(len(detour) - 1)
    result = RecoveryResult(
        member=member,
        strategy="global",
        attach_node=attach,
        restoration_path=tuple(detour),
        recovery_distance=topology.path_delay(detour),
        recovery_hops=len(detour) - 1,
        new_end_to_end_delay=tree.delay_from_source(attach)
        + topology.path_delay(detour),
    )
    if tracer is not None:
        _trace_recovery_episode(tracer, topology, tree, result, failures)
    return result


def estimate_restoration_latency(
    topology: Topology,
    tree: MulticastTree,
    result: RecoveryResult,
    failures: FailureSet,
    convergence: ConvergenceModel | None = None,
    signaling_delay_factor: float = 1.0,
) -> float:
    """Translate a recovery into a service-restoration latency estimate.

    - Local detour: failure detection at the member plus graft signaling
      over the restoration path (round trip: request out, data back).
    - Global detour: the member's unicast table must re-converge first
      (§1, [25]); then the re-join propagates the same way.
    - Precomputed strategies (``"alternate"`` re-joins over a
      pre-established single-failure route; ``"backup"`` switches to a
      pre-installed tree) skip the re-convergence wait exactly like the
      local detour — only ``"global"`` pays it.  A backup switchover's
      recovery distance is zero, so its latency collapses to the
      detection delay alone.

    The latency model deliberately keeps the same detection delay for
    every strategy so the comparison isolates what the paper argues:
    the *re-convergence wait* and the *longer restoration path* are the
    global detour's handicap.
    """
    model = convergence or ConvergenceModel()
    signaling = 2.0 * signaling_delay_factor * result.recovery_distance
    if result.strategy != "global":
        return model.detection_delay + signaling
    times = model.convergence_times(topology, failures)
    member_ready = times.get(result.member, model.detection_delay)
    return member_ready + signaling


# ----------------------------------------------------------------------
# Causal tracing of the closed-form latency model
# ----------------------------------------------------------------------
def _trace_recovery_episode(
    tracer: RestorationTracer,
    topology: Topology,
    tree: MulticastTree,
    result: RecoveryResult,
    failures: FailureSet,
    origin: str = "measure",
    convergence: ConvergenceModel | None = None,
    signaling_delay_factor: float = 1.0,
) -> None:
    """Emit one restoration episode for a measured recovery.

    The span tree is synthesized from the *same* latency model as
    :func:`estimate_restoration_latency`, phase by phase, so the
    episode's critical path sums to exactly the latency the figures
    report: ``detect`` (local) or ``converge`` (global) covers the wait
    before the member can act, a zero-width ``search`` marks the
    candidate selection (the model charges no time for computation), and
    ``signal`` covers the round-trip graft, tiled by per-link
    ``signal.hop`` children along the restoration path.
    """
    model = convergence or ConvergenceModel()
    latency = estimate_restoration_latency(
        topology, tree, result, failures, model, signaling_delay_factor
    )
    episode = Episode.new(
        tracer.next_episode_id(result.member, result.strategy),
        tracer.scenario_key,
        result.member,
        result.strategy,
        tracer.current_origin(origin),
        failures.describe(),
        0.0,
        outcome="already_connected" if result.already_connected else "restored",
    )
    if result.strategy != "global":
        ready = model.detection_delay
        episode.add("detect", result.member, 0.0, ready,
                    payload={"detection_delay": model.detection_delay})
    else:
        times = model.convergence_times(topology, failures)
        ready = times.get(result.member, model.detection_delay)
        episode.add("converge", result.member, 0.0, ready,
                    payload={"detection_delay": model.detection_delay})
    episode.add("search", result.member, ready, ready, payload={
        "attach_node": result.attach_node,
        "recovery_hops": result.recovery_hops,
        "already_connected": result.already_connected,
    })
    if result.recovery_distance > 0:
        signal = episode.add("signal", result.member, ready, latency, payload={
            "recovery_distance": result.recovery_distance,
        })
        cursor = ready
        path = result.restoration_path
        for u, v in zip(path, path[1:]):
            step = 2.0 * signaling_delay_factor * topology.delay(u, v)
            episode.add("signal.hop", v, cursor, cursor + step, parent=signal,
                        payload={"link": f"{u}-{v}"})
            cursor += step
    episode.close(latency)
    tracer.emit(episode)


def _trace_unrecoverable_episode(
    tracer: RestorationTracer,
    member: NodeId,
    strategy: str,
    failures: FailureSet,
    reason: str,
    origin: str = "measure",
) -> None:
    """Emit an episode for a member the strategy could not restore.

    There is no restoration latency to attribute; the episode covers
    only the detection window (the member learned of the failure and
    found no path), with the reason in the root payload.  The analyzer
    excludes these from latency statistics.
    """
    detection = ConvergenceModel().detection_delay
    episode = Episode.new(
        tracer.next_episode_id(member, strategy),
        tracer.scenario_key,
        member,
        strategy,
        tracer.current_origin(origin),
        failures.describe(),
        0.0,
        outcome="unrecoverable",
    )
    episode.root.payload["reason"] = reason
    episode.add("detect", member, 0.0, detection,
                payload={"detection_delay": detection})
    episode.close(detection)
    tracer.emit(episode)


@dataclass
class TreeRepairReport:
    """Outcome of restoring an entire session after a failure."""

    repaired_tree: MulticastTree
    strategy: str
    recoveries: list[RecoveryResult] = field(default_factory=list)
    unrecoverable: list[NodeId] = field(default_factory=list)
    new_links: set[Edge] = field(default_factory=set)

    @property
    def total_recovery_distance(self) -> float:
        return sum(r.recovery_distance for r in self.recoveries)


class _RepairPathsMemo:
    """Per-repair memo of post-failure SPF state: one run per member, ever.

    Within one :func:`repair_tree` call the ``(topology, member, failures)``
    triple is invariant — only the *tree* grows as members re-attach — so
    the member's :class:`ShortestPaths` from the first round stays valid in
    every later round and only the truncation against the updated surviving
    set needs redoing.  The memo presents the
    :meth:`~repro.routing.route_cache.RouteCache.shortest_paths` interface
    the recovery functions already consume, so it simply slots in as their
    ``route_cache``; an actual route cache, when supplied, sits underneath
    and serves cross-repair reuse (and its reuse proofs).

    ``recovery.repair.spf_runs`` counts memo misses — at most one per
    pending member, the O(k) bound the regression suite asserts (the old
    loop recomputed every pending member every round: O(k²)).

    The memo keys on ``root`` alone precisely *because* of that
    one-repair invariance, so it binds itself to the
    ``(topology state, weight, failures)`` of its first call and raises
    on any later mismatch — misuse across failure sets or topologies
    fails loudly instead of silently serving stale paths.
    """

    __slots__ = ("_inner", "_paths", "_runs", "_bound")

    def __init__(self, inner, runs_counter) -> None:
        self._inner = inner
        self._paths: dict[NodeId, ShortestPaths] = {}
        self._runs = runs_counter
        self._bound: tuple[int, str, FailureSet] | None = None

    def shortest_paths(
        self,
        topology: Topology,
        root: NodeId,
        weight: str = "delay",
        failures: FailureSet = NO_FAILURES,
        obs=None,
    ) -> ShortestPaths:
        context = (topology.cache_token(), weight, failures)
        if self._bound is None:
            self._bound = context
        elif context != self._bound:
            raise RecoveryError(
                "_RepairPathsMemo reused across repair contexts: it memoizes "
                "SPF state per member for ONE (topology, weight, failures) "
                f"and was bound to {self._bound!r} but called with {context!r}"
            )
        paths = self._paths.get(root)
        if paths is None:
            self._runs.inc()
            if self._inner is not None:
                paths = self._inner.shortest_paths(
                    topology, root, weight=weight, failures=failures, obs=obs
                )
            else:
                paths = dijkstra(topology, root, weight=weight, failures=failures)
            self._paths[root] = paths
        return paths


def repair_tree(
    topology: Topology,
    tree: MulticastTree,
    failures: FailureSet,
    strategy: str = "local",
    obs: Observability | None = None,
    route_cache=None,
    route_obs=None,
) -> TreeRepairReport:
    """Restore every disconnected member; returns the repaired tree.

    The surviving portion of the tree is kept as-is; disconnected members
    re-attach one at a time — nearest-first for the local strategy (each
    restored member immediately becomes a potential attachment for the
    rest, so recoveries compound), join-order for the global strategy
    (each member independently re-joins along its re-converged SPF path).
    Detached pure-relay state is discarded, as its soft state would time
    out (§3.2).

    Each member's post-failure SPF state is computed at most once for the
    whole repair (``recovery.repair.spf_runs``) and re-truncated against
    the updated surviving set each round.  ``route_cache`` (a failure-aware
    :class:`~repro.routing.route_cache.RouteCache`) additionally shares
    that state *across* repair calls; ``route_obs`` attributes its cache
    traffic without touching the per-member ``recovery.*.attempts``
    counters (the same split the measurement paths use).
    """
    if strategy not in ("local", "global"):
        raise RecoveryError(f"unknown repair strategy {strategy!r}")
    if failures.node_failed(tree.source):
        raise UnrecoverableFailureError(tree.source, "the source itself has failed")

    obs = obs if obs is not None else NULL_OBS
    route_obs = route_obs if route_obs is not None else obs
    with obs.span("recovery.repair_tree"):
        repaired = _surviving_subtree(tree, failures)
        report = TreeRepairReport(repaired_tree=repaired, strategy=strategy)
        pending = [
            m
            for m in tree.disconnected_members(failures)
            if not failures.node_failed(m)
        ]
        report.unrecoverable.extend(
            m for m in tree.disconnected_members(failures) if failures.node_failed(m)
        )

        memo = _RepairPathsMemo(
            route_cache, obs.counter("recovery.repair.spf_runs")
        )
        while pending:
            recovery_fn = (
                local_detour_recovery if strategy == "local" else global_detour_recovery
            )
            options: list[tuple[float, NodeId, RecoveryResult]] = []
            for member in pending:
                try:
                    result = recovery_fn(
                        topology,
                        repaired,
                        member,
                        failures,
                        route_cache=memo,
                        route_obs=route_obs,
                    )
                except UnrecoverableFailureError:
                    continue
                options.append((result.recovery_distance, member, result))
            if not options:
                report.unrecoverable.extend(sorted(pending))
                break
            if strategy == "local":
                options.sort(key=lambda item: (item[0], item[1]))
            chosen_distance, chosen_member, chosen = options[0]
            if obs.tracer is not None:
                # One episode per member actually re-attached, against the
                # tree as it stood when that member was chosen.
                _trace_recovery_episode(
                    obs.tracer, topology, repaired, chosen, failures,
                    origin="repair",
                )
            graft = list(reversed(chosen.restoration_path))
            repaired.graft(graft)
            report.recoveries.append(chosen)
            report.new_links.update(
                edge_key(u, v) for u, v in zip(graft, graft[1:])
            )
            pending.remove(chosen_member)
        obs.counter("recovery.repair.members_restored").inc(len(report.recoveries))
        obs.counter("recovery.repair.unrecoverable").inc(len(report.unrecoverable))
    return report


def surviving_subtree(tree: MulticastTree, failures: FailureSet) -> MulticastTree:
    """Copy of ``tree`` restricted to the component still fed by the source.

    Public entry point for protocol families that assemble their own
    repairs (the alternate-path engine grafts precomputed routes onto
    this) — identical to what :func:`repair_tree` starts from.
    """
    return _surviving_subtree(tree, failures)


def _surviving_subtree(tree: MulticastTree, failures: FailureSet) -> MulticastTree:
    """Copy of the tree restricted to the component still fed by the source."""
    surviving = tree.surviving_component(failures)
    rebuilt = MulticastTree(tree.topology, tree.source)
    # Graft surviving branches in breadth-first order so parents exist first.
    frontier = [tree.source]
    while frontier:
        node = frontier.pop(0)
        for child in tree.children(node):
            if child not in surviving:
                continue
            rebuilt.graft([node, child], member=False)
            frontier.append(child)
    for member in tree.members:
        if member in surviving:
            rebuilt.add_member(member)
    # Trim surviving relays whose entire subtree was detached.
    _trim_dead_leaves(rebuilt)
    return rebuilt


def _trim_dead_leaves(tree: MulticastTree) -> None:
    """Remove relay leaves left behind after a partition copy."""
    changed = True
    while changed:
        changed = False
        for node in tree.on_tree_nodes():
            if node == tree.source:
                continue
            if not tree.children(node) and not tree.is_member(node):
                parent = tree.parent(node)
                assert parent is not None
                tree._children[parent].discard(node)  # noqa: SLF001
                del tree._parent[node]  # noqa: SLF001
                del tree._children[node]  # noqa: SLF001
                changed = True


def _already_connected(
    tree: MulticastTree, member: NodeId, strategy: str
) -> RecoveryResult:
    return RecoveryResult(
        member=member,
        strategy=strategy,
        attach_node=member,
        restoration_path=(member,),
        recovery_distance=0.0,
        recovery_hops=0,
        new_end_to_end_delay=tree.delay_from_source(member),
        already_connected=True,
    )


def _truncate_at_first_contact(
    path: list[NodeId], surviving: set[NodeId]
) -> list[NodeId]:
    """Cut ``path`` (starting off-tree) at its first surviving-tree node."""
    for index, node in enumerate(path):
        if node in surviving:
            return path[: index + 1]
    raise RecoveryError("path never touches the surviving tree")
