"""The per-node simulation runtime.

A :class:`SimNode` is a router participating in the simulation: it
receives messages from the network and dispatches them to handlers
registered per message type.  Protocol implementations subclass it and
register their handlers in ``__init__``.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import SimulationError
from repro.graph.topology import NodeId
from repro.sim.messages import Message
from repro.sim.network import SimNetwork


class SimNode:
    """Base class for simulated routers."""

    def __init__(self, node_id: NodeId, network: SimNetwork) -> None:
        self.node_id = node_id
        self.network = network
        self.sim = network.sim
        self._handlers: dict[type, Callable[[Message], None]] = {}
        network.register(self)

    def on(self, message_type: type, handler: Callable[[Message], None]) -> None:
        """Register ``handler`` for messages of ``message_type``."""
        if message_type in self._handlers:
            raise SimulationError(
                f"node {self.node_id} already handles {message_type.__name__}"
            )
        self._handlers[message_type] = handler

    def receive(self, message: Message) -> None:
        """Dispatch an arriving message; dead nodes ignore everything."""
        if not self.network.node_alive(self.node_id):
            return
        handler = self._handlers.get(type(message))
        if handler is None:
            raise SimulationError(
                f"node {self.node_id} has no handler for {message.kind}"
            )
        handler(message)

    def send(self, message: Message) -> None:
        """Transmit a message whose ``hop_src`` must be this node."""
        if message.hop_src != self.node_id:
            raise SimulationError(
                f"node {self.node_id} cannot send a message from {message.hop_src}"
            )
        self.network.transmit(message)

    def trace(self, category: str, event: str, detail: str = "") -> None:
        if self.network.trace is not None:
            self.network.trace.record(
                self.sim.now, category, self.node_id, event, detail
            )
