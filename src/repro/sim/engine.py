"""The discrete-event engine: a clock and a priority queue of callbacks.

Deliberately minimal and deterministic:

- events with equal timestamps fire in scheduling order (a monotonically
  increasing sequence number breaks ties),
- cancellation is O(1) (a tombstone flag; the heap entry is skipped when
  popped),
- the engine never advances past ``run(until=...)``, and detects runaway
  simulations via an event-count limit.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import SimulationError
from repro.obs import Observability


@dataclass(order=True)
class _ScheduledEvent:
    time: float
    seq: int
    action: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventHandle:
    """Returned by :meth:`Simulator.schedule`; allows cancellation."""

    __slots__ = ("_event",)

    def __init__(self, event: _ScheduledEvent) -> None:
        self._event = event

    def cancel(self) -> None:
        self._event.cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    @property
    def time(self) -> float:
        return self._event.time


class Simulator:
    """A deterministic discrete-event simulator.

    Examples
    --------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(5.0, lambda: fired.append(sim.now))
    >>> _ = sim.schedule(1.0, lambda: fired.append(sim.now))
    >>> sim.run()
    >>> fired
    [1.0, 5.0]
    """

    def __init__(
        self, max_events: int = 10_000_000, obs: Observability | None = None
    ) -> None:
        self.now = 0.0
        self.events_processed = 0
        self._queue: list[_ScheduledEvent] = []
        self._seq = itertools.count()
        self._max_events = max_events
        # A single attribute check keeps the per-event cost of disabled
        # observability at one branch; instruments are bound once here.
        self._obs = obs if obs is not None and obs.enabled else None
        if self._obs is not None:
            metrics = self._obs.metrics
            self._c_scheduled = metrics.counter("sim.engine.events_scheduled")
            self._c_fired = metrics.counter("sim.engine.events_fired")
            self._c_cancelled = metrics.counter("sim.engine.events_cancelled")
            self._g_queue = metrics.gauge("sim.engine.queue_depth")

    def schedule(self, delay: float, action: Callable[[], None]) -> EventHandle:
        """Run ``action`` after ``delay`` simulated time units."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self.now + delay, action)

    def schedule_at(self, time: float, action: Callable[[], None]) -> EventHandle:
        """Run ``action`` at absolute simulated time ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time}; clock is already at {self.now}"
            )
        event = _ScheduledEvent(time=time, seq=next(self._seq), action=action)
        heapq.heappush(self._queue, event)
        if self._obs is not None:
            self._c_scheduled.inc()
            self._g_queue.set(len(self._queue))
        return EventHandle(event)

    def run(self, until: float | None = None) -> None:
        """Process events in time order, optionally stopping at ``until``.

        When ``until`` is given, the clock is advanced to exactly that
        time afterwards (even if the queue drained earlier), so periodic
        processes can be resumed by further ``run`` calls.

        The runaway guard fires *before* the event past the limit runs:
        exactly ``max_events`` events execute, ``events_processed`` counts
        only events that actually ran, and the overflowing event stays in
        the queue rather than being popped and silently dropped.
        """
        while self._queue:
            event = self._queue[0]
            if until is not None and event.time > until:
                break
            if event.cancelled:
                heapq.heappop(self._queue)
                if self._obs is not None:
                    self._c_cancelled.inc()
                continue
            if self.events_processed >= self._max_events:
                raise SimulationError(
                    f"event limit reached ({self._max_events}); likely a "
                    "runaway timer loop"
                )
            heapq.heappop(self._queue)
            self.now = event.time
            self.events_processed += 1
            if self._obs is not None:
                self._c_fired.inc()
            event.action()
        if until is not None and until > self.now:
            self.now = until

    @property
    def pending_events(self) -> int:
        return sum(1 for e in self._queue if not e.cancelled)
