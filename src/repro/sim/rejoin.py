"""The global-detour baseline, measured entirely in simulated time.

The paper's motivation (§1, citing Wang et al. [25]) is that PIM-style
failure recovery is dominated by the *unicast re-convergence wait*: the
member's new shortest path only exists once OSPF has flooded the failure
and every router on the path has re-run SPF.  The analytic
:class:`~repro.routing.link_state.ConvergenceModel` estimates that wait;
this module *simulates* it message by message:

1. the router adjacent to a dead link detects it (loss of signal — its
   watchdog fired *and* the link is physically down) and originates an
   :class:`~repro.sim.messages.Lsa`, flooded hop by hop;
2. every router merges the LSA into its own
   :class:`~repro.routing.link_state.LinkStateDatabase` and re-floods
   when it learned something new;
3. the disconnected node periodically retries a
   :class:`~repro.sim.messages.HopByHopJoin` toward the source.  Each
   router forwards it by its *own current* routing table — a router that
   has not re-converged forwards the join straight into the failure,
   where it is lost.  Service restores only when the tables along the
   way are consistent, exactly the effect the paper describes.

The SMRP-vs-baseline restoration-latency bench runs the same scenario in
:class:`~repro.sim.protocols.SmrpSimulation` (local detour) and in
:class:`SpfRejoinSimulation` and compares the measured latencies.
"""

from __future__ import annotations

from repro.errors import NoPathError
from repro.graph.topology import NodeId, Topology
from repro.routing.link_state import LinkStateDatabase
from repro.routing.spf import dijkstra
from repro.routing.tables import RoutingTable
from repro.sim.messages import HopByHopAck, HopByHopJoin, Lsa, Message
from repro.sim.network import SimNetwork
from repro.sim.protocols import (
    MulticastSimNode,
    RecoveryRecord,
    SimTimers,
    _BaseSimulation,
)
from repro.sim.trace import Trace


class RejoinSimNode(MulticastSimNode):
    """A router with a link-state database and hop-by-hop join support.

    Routing tables are **not** updated the instant an LSA arrives: like
    real OSPF implementations (spfDelay/spfHoldtime), the router schedules
    an SPF recomputation ``owner.spf_recompute_delay`` after the LSDB
    changes and keeps forwarding on the stale table until then.  This is
    the re-convergence wait of [25] that the global detour inherits and
    the local detour sidesteps.
    """

    def __init__(self, node_id: NodeId, network: SimNetwork, owner) -> None:
        super().__init__(node_id, network, owner)
        self.lsdb = LinkStateDatabase(node_id, network.topology)
        # Computed eagerly: the pristine table must be in place before any
        # failure, so that post-failure knowledge only takes effect after
        # the scheduled SPF run (never by lazy first-use computation).
        self._routing_table: RoutingTable = self.lsdb.routing_table()
        self._spf_scheduled = False
        self.on(Lsa, self._handle_lsa)
        self.on(HopByHopJoin, self._handle_hop_join)
        self.on(HopByHopAck, self._handle_hop_ack)

    # ------------------------------------------------------------------
    # Link-state machinery
    # ------------------------------------------------------------------
    def routing_table(self) -> RoutingTable:
        return self._routing_table

    def _schedule_spf(self) -> None:
        """Queue an SPF run; the stale table keeps forwarding meanwhile."""
        if self._spf_scheduled:
            return
        self._spf_scheduled = True

        def recompute() -> None:
            self._spf_scheduled = False
            self._routing_table = self.lsdb.routing_table()
            self.trace("lsa", "spf-recomputed")
            self.owner.note_converged(self.node_id, self.sim.now)
            self._reevaluate_rpf()

        self.sim.schedule(self.owner.spf_recompute_delay, recompute)

    def _reevaluate_rpf(self) -> None:
        """PIM's RPF check after a table change: an on-tree router whose
        upstream no longer matches its route toward the source re-joins
        through the new RPF neighbor (this is what dissolves the
        transient loops formed by joins that merged at stale state)."""
        if self.is_source or not self.on_tree:
            return
        table = self._routing_table
        if not table.has_route(self.owner.source):
            return
        expected = table.next_hop(self.owner.source)
        if expected == self.upstream:
            return
        old_upstream = self.upstream
        self.trace(
            "join", "rpf-change", detail=f"{old_upstream} -> {expected}"
        )
        self.connected = False
        self.start_hop_by_hop_join(self.owner.source)
        if old_upstream is not None and old_upstream != self.upstream:
            from repro.sim.messages import Prune

            if self.network.topology.has_link(self.node_id, old_upstream):
                self.send(
                    Prune(
                        hop_src=self.node_id,
                        hop_dst=old_upstream,
                        pruned=self.node_id,
                    )
                )

    def originate_lsa(self, u: NodeId, v: NodeId) -> None:
        """Announce a dead link and flood it.

        Even the originator keeps forwarding on its stale table until its
        own scheduled SPF run — OSPF implementations batch exactly so.
        """
        from repro.routing.failure_view import FailureSet

        if self.lsdb.learn_failure(FailureSet.links((u, v))):
            self._schedule_spf()
        self.trace("lsa", "originate", detail=f"link {u}-{v}")
        self._flood_lsa(u, v, exclude=None)

    def _handle_lsa(self, message: Message) -> None:
        assert isinstance(message, Lsa)
        from repro.routing.failure_view import FailureSet

        learned = self.lsdb.learn_failure(
            FailureSet.links((message.failed_u, message.failed_v))
        )
        if not learned:
            return
        self._schedule_spf()
        self.owner.note_lsa(self.node_id, self.sim.now)
        self._flood_lsa(message.failed_u, message.failed_v, exclude=message.hop_src)

    def _flood_lsa(self, u: NodeId, v: NodeId, exclude: NodeId | None) -> None:
        for neighbor in self.network.topology.neighbors(self.node_id):
            if neighbor == exclude:
                continue
            self.send(
                Lsa(
                    hop_src=self.node_id,
                    hop_dst=neighbor,
                    failed_u=u,
                    failed_v=v,
                )
            )

    # ------------------------------------------------------------------
    # Hop-by-hop joins
    # ------------------------------------------------------------------
    def start_hop_by_hop_join(self, target: NodeId) -> None:
        """Issue (or retry) a table-routed join toward ``target``."""
        table = self.routing_table()
        if not table.has_route(target):
            self.trace("join", "no-route", detail=f"target {target}")
            return
        next_hop = table.next_hop(target)
        self.upstream = next_hop
        self._refresh_timer.start()
        self._advert_timer.start()
        self.send(
            HopByHopJoin(
                hop_src=self.node_id,
                hop_dst=next_hop,
                joiner=self.node_id,
                target=target,
                visited=(self.node_id,),
            )
        )

    def _handle_hop_join(self, message: Message) -> None:
        assert isinstance(message, HopByHopJoin)
        previous_hop = message.hop_src
        trail = message.visited + (self.node_id,)
        if self.node_id in message.visited:
            return  # routing loop during convergence; drop
        self.downstream.refresh(previous_hop, subtree_members=0)
        if self.on_tree and self.connected:
            self.trace("join", "merged", detail=f"joiner {message.joiner}")
            self.send(
                HopByHopAck(
                    hop_src=self.node_id,
                    hop_dst=previous_hop,
                    joiner=message.joiner,
                    merge_node=self.node_id,
                    trail=trail,
                )
            )
            return
        table = self.routing_table()
        if not table.has_route(message.target):
            return  # not converged / partitioned: the join dies here
        next_hop = table.next_hop(message.target)
        self.upstream = next_hop
        self._refresh_timer.start()
        self._advert_timer.start()
        self.send(
            HopByHopJoin(
                hop_src=self.node_id,
                hop_dst=next_hop,
                joiner=message.joiner,
                target=message.target,
                visited=trail,
            )
        )

    def _handle_hop_ack(self, message: Message) -> None:
        assert isinstance(message, HopByHopAck)
        self.connected = True
        if self.upstream is not None:
            self._watchdog.kick()
        if message.joiner == self.node_id:
            self.trace("join", "ack", detail=f"merge {message.merge_node}")
            self._awaiting_ack = False
            self.owner.complete_rejoin(self.node_id, self.sim.now)
            return
        index = message.trail.index(self.node_id)
        if index == 0:
            return
        self.send(
            HopByHopAck(
                hop_src=self.node_id,
                hop_dst=message.trail[index - 1],
                joiner=message.joiner,
                merge_node=message.merge_node,
                trail=message.trail,
            )
        )


class SpfRejoinSimulation(_BaseSimulation):
    """PIM-over-OSPF baseline: SPF joins, LSA flooding, table-routed rejoins."""

    node_class = RejoinSimNode

    def __init__(
        self,
        topology: Topology,
        source: NodeId,
        timers: SimTimers | None = None,
        trace: Trace | None = None,
        rejoin_retry_period: float | None = None,
        spf_recompute_delay: float | None = None,
    ) -> None:
        super().__init__(topology, source, timers=timers, trace=trace)
        self.rejoin_retry_period = (
            rejoin_retry_period
            if rejoin_retry_period is not None
            else self.timers.advert_period
        )
        # OSPF-style SPF scheduling delay (spfDelay + holdtime): routers
        # batch LSDB changes and recompute after this pause.  Scaled to
        # the protocol timers, like everything else in the simulation.
        self.spf_recompute_delay = (
            spf_recompute_delay
            if spf_recompute_delay is not None
            else 2.0 * self.timers.advert_period
        )
        self.lsa_arrivals: dict[NodeId, float] = {}
        self.convergence_times: dict[NodeId, float] = {}

    # ------------------------------------------------------------------
    # Joins follow the unicast SPF path (PIM source trees).
    # ------------------------------------------------------------------
    def select_join_path(self, member: NodeId) -> tuple[NodeId, ...]:
        paths = dijkstra(self.topology, member)
        return tuple(paths.path_to(self.source))

    # ------------------------------------------------------------------
    # Failure handling: flood, wait for convergence, re-join by table.
    # ------------------------------------------------------------------
    def handle_upstream_loss(self, detector: NodeId, lost_upstream: NodeId) -> None:
        record = RecoveryRecord(
            detector=detector,
            failed_at=self._failure_time(),
            detected_at=self.sim.now,
        )
        self.recovery_records.append(record)
        node = self.nodes[detector]
        assert isinstance(node, RejoinSimNode)
        node.connected = False
        # Loss of signal vs. mere silence: only a physically dead adjacent
        # link is advertised; silence means the outage is further upstream
        # and somebody closer to it will advertise.
        if not self.network.link_usable(detector, lost_upstream):
            node.originate_lsa(detector, lost_upstream)
        # First rejoin attempt goes out immediately (it will chase the
        # stale route and die until the tables converge), then retries.
        self._attempt_rejoin(detector, attempt=1)

    def _attempt_rejoin(self, member: NodeId, attempt: int) -> None:
        node = self.nodes[member]
        assert isinstance(node, RejoinSimNode)
        if node.connected or not self.network.node_alive(member):
            return
        node.trace("join", "rejoin-attempt", detail=f"#{attempt}")
        try:
            node.start_hop_by_hop_join(self.source)
        except NoPathError:
            pass
        if attempt < 200:  # bounded persistence; scenario-scale safety net
            self.sim.schedule(
                self.rejoin_retry_period,
                lambda: self._attempt_rejoin(member, attempt + 1),
            )

    # ------------------------------------------------------------------
    # Bookkeeping hooks
    # ------------------------------------------------------------------
    def note_lsa(self, node: NodeId, at: float) -> None:
        self.lsa_arrivals.setdefault(node, at)

    def note_converged(self, node: NodeId, at: float) -> None:
        self.convergence_times.setdefault(node, at)

    def complete_rejoin(self, member: NodeId, at: float) -> None:
        # Delegates to note_restored, which validates that the new
        # attachment genuinely reaches the source (a rejoin may have
        # merged at a stale fragment mid-convergence).
        self.note_restored(member)
