"""Control-message vocabulary of the simulated protocols.

Messages travel hop by hop: every message names only its transmitting and
receiving nodes on one link; multi-hop semantics (e.g. a ``Join_Req``
walking its selected path toward the source) are implemented by the
receiving node forwarding a successor message.  This mirrors how the real
protocol installs per-hop soft state as the request advances (§3.2.2).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, fields

from repro.graph.topology import NodeId

_message_ids = itertools.count(1)


@dataclass(frozen=True)
class Message:
    """Base class: one hop of one control message.

    ``hop_src``/``hop_dst`` are the link endpoints for this transmission;
    subclasses carry the protocol payload.
    """

    hop_src: NodeId
    hop_dst: NodeId
    msg_id: int = field(default_factory=lambda: next(_message_ids))

    @property
    def kind(self) -> str:
        return type(self).__name__


@dataclass(frozen=True)
class JoinReq(Message):
    """``Join_Req`` advancing along its selected path toward the source.

    ``joiner`` is the new member; ``path`` is the remaining route (the
    next element after ``hop_dst``'s position is where it forwards next);
    ``member`` distinguishes receiver joins from relay activations.
    """

    joiner: NodeId = -1
    path: tuple[NodeId, ...] = ()
    member: bool = True


@dataclass(frozen=True)
class JoinAck(Message):
    """Confirmation flowing back from the merge node to the joiner."""

    joiner: NodeId = -1
    merge_node: NodeId = -1
    path: tuple[NodeId, ...] = ()


@dataclass(frozen=True)
class LeaveReq(Message):
    """``Leave_Req`` walking from a departing member toward the source."""

    leaver: NodeId = -1


@dataclass(frozen=True)
class ShrQuery(Message):
    """§3.3.1 query relayed along a neighbor's SPF path to the source."""

    origin: NodeId = -1  # the joining member
    relay: NodeId = -1  # the neighbor that relays the query
    visited: tuple[NodeId, ...] = ()


@dataclass(frozen=True)
class ShrResponse(Message):
    """Response from the first on-tree node a query met."""

    origin: NodeId = -1
    relay: NodeId = -1
    on_tree_node: NodeId = -1
    shr: int = 0
    on_tree_delay: float = 0.0
    relay_path: tuple[NodeId, ...] = ()


@dataclass(frozen=True)
class Refresh(Message):
    """Soft-state refresh sent periodically from each node to its parent."""

    subtree_members: int = 0  # piggybacks N_R for SHR maintenance (Eq. 2)


@dataclass(frozen=True)
class ShrAdvert(Message):
    """Parent-to-child advertisement of the parent's SHR value (Eq. 2).

    Children compute their own ``SHR = advert.shr_upstream + N_self`` and
    propagate further down, implementing the iterative calculation of
    §3.2.1; it also serves as the downstream heartbeat that failure
    detection watches.
    """

    shr_upstream: int = 0


@dataclass(frozen=True)
class Prune(Message):
    """Sent upstream when a node's last downstream state disappears."""

    pruned: NodeId = -1


@dataclass(frozen=True)
class Lsa(Message):
    """Link-state advertisement: a router announces a dead link.

    Flooded hop by hop over the surviving topology; receivers that learn
    something new re-flood to their other neighbors (OSPF-style reliable
    flooding, without the ack machinery — persistent failures give
    endless re-detection opportunities).
    """

    failed_u: NodeId = -1
    failed_v: NodeId = -1


@dataclass(frozen=True)
class HopByHopJoin(Message):
    """A PIM-style join routed by each hop's *own* unicast table.

    Unlike :class:`JoinReq` (source-routed along a path the joiner
    selected), this join carries only the target and the visited trail;
    every router forwards it toward the source according to its current
    link-state view.  Before re-convergence that view may still point at
    the failure — the join is then lost and must be retried, which is
    precisely the re-convergence wait the paper's local detour avoids.
    """

    joiner: NodeId = -1
    target: NodeId = -1
    visited: tuple[NodeId, ...] = ()


@dataclass(frozen=True)
class HopByHopAck(Message):
    """Ack for a hop-by-hop join, returned along the recorded trail."""

    joiner: NodeId = -1
    merge_node: NodeId = -1
    trail: tuple[NodeId, ...] = ()


#: Fixed per-hop framing: link header plus the src/dst/id triple every
#: message carries (comparable to an IP + small control header).
_HEADER_BYTES = 20

_PAYLOAD_FIELDS: dict[type, tuple[str, ...]] = {}


def wire_bytes(message: Message) -> int:
    """Bytes-equivalent size of one control message on one link.

    The paper's §4.4 overhead metric counts control traffic; comparing
    message *counts* alone hides that a ``Join_Req`` carrying a recorded
    path is heavier than a two-field ``Prune``.  This estimator charges a
    fixed per-hop header plus 4 bytes per node id, 8 per float, 4 per int
    and 1 per flag in the payload — a stable, implementation-independent
    proxy for wire size.
    """
    names = _PAYLOAD_FIELDS.get(type(message))
    if names is None:
        names = tuple(
            f.name
            for f in fields(message)
            if f.name not in ("hop_src", "hop_dst", "msg_id")
        )
        _PAYLOAD_FIELDS[type(message)] = names
    size = _HEADER_BYTES
    for name in names:
        value = getattr(message, name)
        if isinstance(value, bool):
            size += 1
        elif isinstance(value, int):
            size += 4
        elif isinstance(value, float):
            size += 8
        elif isinstance(value, tuple):
            size += 4 * len(value)
    return size


@dataclass(frozen=True)
class DataPacket(Message):
    """One multicast data packet, forwarded down the tree's soft state.

    ``seq`` is the source's monotone sequence number; receivers log the
    sequence numbers they see, and gaps measure the service disruption a
    failure caused.  ``ttl`` caps forwarding depth as a transient-loop
    guard (real multicast routers do the same).
    """

    seq: int = 0
    ttl: int = 64
