"""Timer helpers built on the simulator engine."""

from __future__ import annotations

from typing import Callable

from repro.errors import SimulationError
from repro.sim.engine import EventHandle, Simulator


class PeriodicTimer:
    """A repeating timer (soft-state refresh, reshaping Condition II).

    The callback runs every ``period`` time units until :meth:`stop` is
    called.  The first firing happens one full period after :meth:`start`.
    """

    def __init__(
        self, sim: Simulator, period: float, callback: Callable[[], None]
    ) -> None:
        if period <= 0:
            raise SimulationError(f"timer period must be positive, got {period}")
        self._sim = sim
        self._period = period
        self._callback = callback
        self._handle: EventHandle | None = None
        self._running = False

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._arm()

    def stop(self) -> None:
        self._running = False
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    @property
    def running(self) -> bool:
        return self._running

    def _arm(self) -> None:
        self._handle = self._sim.schedule(self._period, self._fire)

    def _fire(self) -> None:
        if not self._running:
            return
        self._callback()
        if self._running:
            self._arm()


class WatchdogTimer:
    """A deadline that is pushed back every time activity is observed.

    Used for heartbeat-based failure detection: the watchdog fires only
    when ``timeout`` elapses with no :meth:`kick`.
    """

    def __init__(
        self, sim: Simulator, timeout: float, on_expire: Callable[[], None]
    ) -> None:
        if timeout <= 0:
            raise SimulationError(f"watchdog timeout must be positive, got {timeout}")
        self._sim = sim
        self._timeout = timeout
        self._on_expire = on_expire
        self._handle: EventHandle | None = None

    def kick(self) -> None:
        """Record activity: re-arm the deadline."""
        if self._handle is not None:
            self._handle.cancel()
        self._handle = self._sim.schedule(self._timeout, self._expire)

    def disarm(self) -> None:
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    @property
    def armed(self) -> bool:
        return self._handle is not None and not self._handle.cancelled

    def _expire(self) -> None:
        self._handle = None
        self._on_expire()
