"""Soft-state tables with refresh and expiry (paper §3.2).

SMRP "adopts the soft-state mechanism to maintain each constructed
multicast tree for robustness": forwarding state installed by a
``Join_Req`` is kept alive by periodic refreshes from downstream and
silently evaporates when refreshes stop (e.g. the downstream branch died
or a ``Leave_Req`` was lost).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.errors import SimulationError
from repro.graph.topology import NodeId
from repro.sim.engine import Simulator


@dataclass
class SoftStateEntry:
    """One piece of per-neighbor soft state (a downstream interface)."""

    neighbor: NodeId
    expires_at: float
    is_member_branch: bool = True
    subtree_members: int = 0


class SoftStateTable:
    """Downstream soft state of one node, with lazy expiry.

    Entries are refreshed by :meth:`refresh` and reaped by :meth:`expire`,
    which the owner calls from a periodic timer; expired entries trigger
    the ``on_expire`` callback so the protocol can prune.
    """

    def __init__(
        self,
        sim: Simulator,
        lifetime: float,
        on_expire: Callable[[SoftStateEntry], None],
    ) -> None:
        if lifetime <= 0:
            raise SimulationError(f"soft-state lifetime must be positive: {lifetime}")
        self.sim = sim
        self.lifetime = lifetime
        self.on_expire = on_expire
        self._entries: dict[NodeId, SoftStateEntry] = {}

    def refresh(
        self, neighbor: NodeId, subtree_members: int = 0, is_member_branch: bool = True
    ) -> SoftStateEntry:
        """Create or renew the entry for a downstream neighbor."""
        entry = self._entries.get(neighbor)
        if entry is None:
            entry = SoftStateEntry(
                neighbor=neighbor,
                expires_at=self.sim.now + self.lifetime,
                is_member_branch=is_member_branch,
                subtree_members=subtree_members,
            )
            self._entries[neighbor] = entry
        else:
            entry.expires_at = self.sim.now + self.lifetime
            entry.subtree_members = subtree_members
            entry.is_member_branch = is_member_branch
        return entry

    def remove(self, neighbor: NodeId) -> None:
        self._entries.pop(neighbor, None)

    def expire(self) -> list[SoftStateEntry]:
        """Reap entries past their lifetime; returns the expired ones."""
        now = self.sim.now
        expired = [e for e in self._entries.values() if e.expires_at <= now]
        for entry in expired:
            del self._entries[entry.neighbor]
            self.on_expire(entry)
        return expired

    def neighbors(self) -> list[NodeId]:
        return sorted(self._entries)

    def entry(self, neighbor: NodeId) -> SoftStateEntry | None:
        return self._entries.get(neighbor)

    def total_subtree_members(self) -> int:
        return sum(e.subtree_members for e in self._entries.values())

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, neighbor: NodeId) -> bool:
        return neighbor in self._entries
