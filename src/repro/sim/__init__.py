"""Discrete-event simulation substrate (the paper's ns2 substitute).

The paper evaluates SMRP in ns2; this subpackage provides the equivalent
control-plane simulation: nodes exchange ``Join_Req``/``Leave_Req``/query/
refresh/heartbeat messages over delay-weighted links, soft state expires
unless refreshed, failures are injected at absolute times, and recovery
latency is measured in simulated time.

- :mod:`repro.sim.engine` — event queue and simulation clock,
- :mod:`repro.sim.events` — timers and event records,
- :mod:`repro.sim.messages` — the control-message vocabulary,
- :mod:`repro.sim.network` — links with delays and dynamic failure state,
- :mod:`repro.sim.node` — the per-node message-dispatch runtime,
- :mod:`repro.sim.softstate` — soft-state table with refresh/expiry,
- :mod:`repro.sim.failures` — failure injection schedules,
- :mod:`repro.sim.protocols` — SMRP and the SPF baseline over the DES,
- :mod:`repro.sim.trace` — structured event tracing.
"""

from repro.sim.engine import Simulator
from repro.sim.network import SimNetwork
from repro.sim.failures import FailureSchedule
from repro.sim.protocols import SmrpSimulation, SpfSimulation
from repro.sim.trace import Trace, TraceRecord

__all__ = [
    "Simulator",
    "SimNetwork",
    "FailureSchedule",
    "SmrpSimulation",
    "SpfSimulation",
    "Trace",
    "TraceRecord",
]
