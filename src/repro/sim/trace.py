"""Structured event tracing for simulations.

A :class:`Trace` is an append-only log of timestamped records; tests and
examples filter it to verify protocol behaviour ("the join reached the
source", "recovery completed at t=…") without poking at node internals.

Filtering accepts either keyword equality filters (``category=``,
``node=``, ``event=``) or an arbitrary predicate callable over the
record; ``count`` tallies matches without materialising them.  A trace
may be bounded with ``max_records``: once full, the oldest records are
dropped and ``dropped`` counts how many were discarded.

Records are optionally *causal*: when a restoration episode is in flight
(:mod:`repro.obs.tracing`), the emitting layer stamps the record with the
episode id and span linkage (``episode_id``, ``span_id``, ``parent_id``),
upgrading the flat log into a join table against the episode's span tree.
The fields default to empty/-1 so every existing predicate-filter caller
is unaffected.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from itertools import islice
from typing import Callable, Iterator

from repro.graph.topology import NodeId

Predicate = Callable[["TraceRecord"], bool]


@dataclass(frozen=True)
class TraceRecord:
    """One logged event.

    ``episode_id``/``span_id``/``parent_id`` causally link the record to
    a restoration episode when one was open at emission time; they stay
    at their defaults (``""``/``-1``/``-1``) for records outside any
    episode.
    """

    time: float
    category: str
    node: NodeId
    event: str
    detail: str = ""
    episode_id: str = ""
    span_id: int = -1
    parent_id: int = -1

    def __str__(self) -> str:
        suffix = f" ({self.detail})" if self.detail else ""
        if self.episode_id:
            suffix += f" [{self.episode_id}]"
        return f"[{self.time:10.3f}] node {self.node:>3} {self.category}/{self.event}{suffix}"


@dataclass
class Trace:
    """Append-only simulation log, optionally bounded (drop-oldest)."""

    records: deque[TraceRecord] = field(default_factory=deque)
    enabled: bool = True
    max_records: int | None = None
    dropped: int = 0

    def __post_init__(self) -> None:
        if self.max_records is not None and self.max_records <= 0:
            raise ValueError(f"max_records must be positive, got {self.max_records}")
        # Accept a plain list (the historical field type) and rebuild the
        # bounded deque so maxlen is enforced from the start.
        if not isinstance(self.records, deque) or (
            self.records.maxlen != self.max_records
        ):
            self.records = deque(self.records, maxlen=self.max_records)

    def record(
        self,
        time: float,
        category: str,
        node: NodeId,
        event: str,
        detail: str = "",
        episode_id: str = "",
        span_id: int = -1,
        parent_id: int = -1,
    ) -> None:
        if self.enabled:
            if (
                self.max_records is not None
                and len(self.records) == self.max_records
            ):
                self.dropped += 1
            self.records.append(
                TraceRecord(
                    time, category, node, event, detail,
                    episode_id, span_id, parent_id,
                )
            )

    def merge_from(self, other: "Trace") -> None:
        """Fold another trace (e.g. a worker's) into this one.

        Records append in call order; drop accounting **sums** — both the
        records ``other`` had already discarded and any overflow this
        trace's own bound forces during the merge.  (The historical
        pattern of copying ``other.dropped`` over ``self.dropped``
        silently lost this trace's own count: last-write-win instead of
        a sum.)
        """
        self.dropped += other.dropped
        for rec in other.records:
            if (
                self.max_records is not None
                and len(self.records) == self.max_records
            ):
                self.dropped += 1
            self.records.append(rec)

    def filter(
        self,
        predicate: Predicate | str | None = None,
        *,
        category: str | None = None,
        node: NodeId | None = None,
        event: str | None = None,
    ) -> Iterator[TraceRecord]:
        """Records matching a predicate and/or keyword equality filters.

        The first positional argument may be a callable predicate over the
        record, or (for backward compatibility) a category string.
        """
        if predicate is not None and not callable(predicate):
            if category is not None:
                raise TypeError("category given both positionally and by keyword")
            category, predicate = predicate, None
        for rec in self.records:
            if category is not None and rec.category != category:
                continue
            if node is not None and rec.node != node:
                continue
            if event is not None and rec.event != event:
                continue
            if predicate is not None and not predicate(rec):
                continue
            yield rec

    def first(
        self,
        predicate: Predicate | str | None = None,
        *,
        category: str | None = None,
        node: NodeId | None = None,
        event: str | None = None,
    ) -> TraceRecord | None:
        return next(
            self.filter(predicate, category=category, node=node, event=event),
            None,
        )

    def count(
        self,
        predicate: Predicate | str | None = None,
        *,
        category: str | None = None,
        node: NodeId | None = None,
        event: str | None = None,
    ) -> int:
        return sum(
            1
            for _ in self.filter(
                predicate, category=category, node=node, event=event
            )
        )

    def __len__(self) -> int:
        return len(self.records)

    def dump(self, limit: int | None = None) -> str:
        """Multi-line rendering, for examples and debugging."""
        rows = self.records if limit is None else islice(self.records, limit)
        return "\n".join(str(rec) for rec in rows)
