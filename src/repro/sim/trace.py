"""Structured event tracing for simulations.

A :class:`Trace` is an append-only log of timestamped records; tests and
examples filter it to verify protocol behaviour ("the join reached the
source", "recovery completed at t=…") without poking at node internals.

Filtering accepts either keyword equality filters (``category=``,
``node=``, ``event=``) or an arbitrary predicate callable over the
record; ``count`` tallies matches without materialising them.  A trace
may be bounded with ``max_records``: once full, the oldest records are
dropped and ``dropped`` counts how many were discarded.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from itertools import islice
from typing import Callable, Iterator

from repro.graph.topology import NodeId

Predicate = Callable[["TraceRecord"], bool]


@dataclass(frozen=True)
class TraceRecord:
    """One logged event."""

    time: float
    category: str
    node: NodeId
    event: str
    detail: str = ""

    def __str__(self) -> str:
        suffix = f" ({self.detail})" if self.detail else ""
        return f"[{self.time:10.3f}] node {self.node:>3} {self.category}/{self.event}{suffix}"


@dataclass
class Trace:
    """Append-only simulation log, optionally bounded (drop-oldest)."""

    records: deque[TraceRecord] = field(default_factory=deque)
    enabled: bool = True
    max_records: int | None = None
    dropped: int = 0

    def __post_init__(self) -> None:
        if self.max_records is not None and self.max_records <= 0:
            raise ValueError(f"max_records must be positive, got {self.max_records}")
        # Accept a plain list (the historical field type) and rebuild the
        # bounded deque so maxlen is enforced from the start.
        if not isinstance(self.records, deque) or (
            self.records.maxlen != self.max_records
        ):
            self.records = deque(self.records, maxlen=self.max_records)

    def record(
        self, time: float, category: str, node: NodeId, event: str, detail: str = ""
    ) -> None:
        if self.enabled:
            if (
                self.max_records is not None
                and len(self.records) == self.max_records
            ):
                self.dropped += 1
            self.records.append(TraceRecord(time, category, node, event, detail))

    def filter(
        self,
        predicate: Predicate | str | None = None,
        *,
        category: str | None = None,
        node: NodeId | None = None,
        event: str | None = None,
    ) -> Iterator[TraceRecord]:
        """Records matching a predicate and/or keyword equality filters.

        The first positional argument may be a callable predicate over the
        record, or (for backward compatibility) a category string.
        """
        if predicate is not None and not callable(predicate):
            if category is not None:
                raise TypeError("category given both positionally and by keyword")
            category, predicate = predicate, None
        for rec in self.records:
            if category is not None and rec.category != category:
                continue
            if node is not None and rec.node != node:
                continue
            if event is not None and rec.event != event:
                continue
            if predicate is not None and not predicate(rec):
                continue
            yield rec

    def first(
        self,
        predicate: Predicate | str | None = None,
        *,
        category: str | None = None,
        node: NodeId | None = None,
        event: str | None = None,
    ) -> TraceRecord | None:
        return next(
            self.filter(predicate, category=category, node=node, event=event),
            None,
        )

    def count(
        self,
        predicate: Predicate | str | None = None,
        *,
        category: str | None = None,
        node: NodeId | None = None,
        event: str | None = None,
    ) -> int:
        return sum(
            1
            for _ in self.filter(
                predicate, category=category, node=node, event=event
            )
        )

    def __len__(self) -> int:
        return len(self.records)

    def dump(self, limit: int | None = None) -> str:
        """Multi-line rendering, for examples and debugging."""
        rows = self.records if limit is None else islice(self.records, limit)
        return "\n".join(str(rec) for rec in rows)
