"""Structured event tracing for simulations.

A :class:`Trace` is an append-only log of timestamped records; tests and
examples filter it to verify protocol behaviour ("the join reached the
source", "recovery completed at t=…") without poking at node internals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.graph.topology import NodeId


@dataclass(frozen=True)
class TraceRecord:
    """One logged event."""

    time: float
    category: str
    node: NodeId
    event: str
    detail: str = ""

    def __str__(self) -> str:
        suffix = f" ({self.detail})" if self.detail else ""
        return f"[{self.time:10.3f}] node {self.node:>3} {self.category}/{self.event}{suffix}"


@dataclass
class Trace:
    """Append-only simulation log."""

    records: list[TraceRecord] = field(default_factory=list)
    enabled: bool = True

    def record(
        self, time: float, category: str, node: NodeId, event: str, detail: str = ""
    ) -> None:
        if self.enabled:
            self.records.append(TraceRecord(time, category, node, event, detail))

    def filter(
        self,
        category: str | None = None,
        node: NodeId | None = None,
        event: str | None = None,
    ) -> Iterator[TraceRecord]:
        for rec in self.records:
            if category is not None and rec.category != category:
                continue
            if node is not None and rec.node != node:
                continue
            if event is not None and rec.event != event:
                continue
            yield rec

    def first(
        self,
        category: str | None = None,
        node: NodeId | None = None,
        event: str | None = None,
    ) -> TraceRecord | None:
        return next(self.filter(category=category, node=node, event=event), None)

    def __len__(self) -> int:
        return len(self.records)

    def dump(self, limit: int | None = None) -> str:
        """Multi-line rendering, for examples and debugging."""
        rows = self.records if limit is None else self.records[:limit]
        return "\n".join(str(rec) for rec in rows)
