"""SMRP and the SPF baseline as message-level simulated protocols.

Every router runs a :class:`MulticastSimNode`: it keeps per-session soft
state (upstream neighbor, downstream interfaces), refreshes it
periodically, learns its ``SHR`` through parent-to-child adverts
(the iterative calculation of Eq. 2), detects upstream failures through
advert watchdogs, and restores service with a local detour join — all via
messages delivered over delay-weighted links by the
:class:`~repro.sim.network.SimNetwork`.

Division of labour with the graph-level engine
(:class:`repro.core.protocol.SMRPProtocol`):

- the graph engine is the *reference algorithm* (used by the parameter
  sweeps); this module demonstrates that the same decisions emerge from a
  distributed, message-driven implementation with soft state and
  failure detection, and measures **latencies in simulated time**
  (join latency, detection latency, service-restoration latency);
- a cross-validation test builds the same scenario on both engines and
  asserts the trees match.

Path selection runs at the joining node exactly as §3.2.2 assumes: the
member knows the topology (or uses the §3.3.1 query scheme) and reads the
SHR values *currently advertised* by on-tree nodes — which may be stale
while adverts propagate, a fidelity the graph engine cannot express.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.graph.topology import NodeId, Topology
from repro.multicast.tree import MulticastTree
from repro.core.candidates import Candidate, enumerate_candidates
from repro.core.join import select_path
from repro.obs import NULL_OBS, Observability
from repro.routing.failure_view import FailureSet
from repro.routing.route_cache import RouteCache
from repro.routing.spf import dijkstra_with_barriers
from repro.sim.engine import Simulator
from repro.sim.events import PeriodicTimer, WatchdogTimer
from repro.sim.messages import (
    DataPacket,
    JoinAck,
    JoinReq,
    LeaveReq,
    Message,
    Prune,
    Refresh,
    ShrAdvert,
)
from repro.sim.network import SimNetwork
from repro.sim.node import SimNode
from repro.sim.softstate import SoftStateTable
from repro.sim.trace import Trace


@dataclass(frozen=True)
class SimTimers:
    """Protocol timer configuration (all in simulated time units).

    Timers must be scaled to the topology's link delays: the watchdog
    timeout has to exceed the advert period plus one link traversal, or
    healthy upstreams get declared dead.  :meth:`for_topology` derives a
    consistent set from the maximum link delay; the class defaults suit
    unit-delay topologies like the paper's worked examples.
    """

    refresh_period: float = 5.0
    advert_period: float = 5.0
    softstate_lifetime: float = 16.0
    failure_detection_timeout: float = 12.0
    join_retry_interval: float = 20.0
    max_join_retries: int = 5

    def __post_init__(self) -> None:
        if min(
            self.refresh_period,
            self.advert_period,
            self.softstate_lifetime,
            self.failure_detection_timeout,
            self.join_retry_interval,
        ) <= 0:
            raise SimulationError("all protocol timers must be positive")
        if self.failure_detection_timeout <= self.advert_period:
            raise SimulationError(
                "failure_detection_timeout must exceed advert_period, or "
                "every healthy upstream is declared dead"
            )

    @classmethod
    def for_topology(cls, topology: Topology) -> "SimTimers":
        """Timers consistent with the topology's largest link delay."""
        links = topology.links()
        max_delay = max((l.delay for l in links), default=1.0)
        advert = 2.0 * max_delay
        return cls(
            refresh_period=advert,
            advert_period=advert,
            softstate_lifetime=3.2 * advert + max_delay,
            failure_detection_timeout=2.4 * advert + max_delay,
            join_retry_interval=8.0 * advert,
        )


@dataclass
class JoinRecord:
    """Lifecycle of one join, for latency measurement."""

    member: NodeId
    requested_at: float
    path: tuple[NodeId, ...] = ()
    acked_at: float | None = None

    @property
    def latency(self) -> float | None:
        if self.acked_at is None:
            return None
        return self.acked_at - self.requested_at


@dataclass
class RecoveryRecord:
    """Lifecycle of one failure recovery, for latency measurement."""

    detector: NodeId
    failed_at: float
    detected_at: float | None = None
    restored_at: float | None = None
    detour: tuple[NodeId, ...] = ()

    @property
    def restoration_latency(self) -> float | None:
        """Failure injection → service restored."""
        if self.restored_at is None:
            return None
        return self.restored_at - self.failed_at

    @property
    def post_detection_latency(self) -> float | None:
        """Detection → restored: the part the recovery strategy controls
        (detection itself is identical across protocols)."""
        if self.restored_at is None or self.detected_at is None:
            return None
        return self.restored_at - self.detected_at


class MulticastSimNode(SimNode):
    """A router running the simulated multicast protocol."""

    def __init__(
        self, node_id: NodeId, network: SimNetwork, owner: "_BaseSimulation"
    ) -> None:
        super().__init__(node_id, network)
        self.owner = owner
        self.upstream: NodeId | None = None
        self.is_member = False
        self.is_source = False
        self.connected = False  # believes it currently receives data
        self.shr_upstream_value = 0
        self._join_retries_left = 0
        self._awaiting_ack = False
        self.downstream = SoftStateTable(
            self.sim,
            owner.timers.softstate_lifetime,
            on_expire=self._on_softstate_expired,
        )
        self._refresh_timer = PeriodicTimer(
            self.sim, owner.timers.refresh_period, self._send_refresh
        )
        self._advert_timer = PeriodicTimer(
            self.sim, owner.timers.advert_period, self._send_adverts
        )
        self._watchdog = WatchdogTimer(
            self.sim, owner.timers.failure_detection_timeout, self._on_upstream_lost
        )
        self._last_data_seq = -1
        self.on(JoinReq, self._handle_join_req)
        self.on(JoinAck, self._handle_join_ack)
        self.on(LeaveReq, self._handle_leave_req)
        self.on(Refresh, self._handle_refresh)
        self.on(ShrAdvert, self._handle_shr_advert)
        self.on(Prune, self._handle_prune)
        self.on(DataPacket, self._handle_data)

    # ------------------------------------------------------------------
    # Derived state
    # ------------------------------------------------------------------
    @property
    def on_tree(self) -> bool:
        return self.is_source or self.upstream is not None

    @property
    def n_self(self) -> int:
        """``N_R``: own membership plus everything below (Figure 3)."""
        return (1 if self.is_member else 0) + self.downstream.total_subtree_members()

    @property
    def shr(self) -> int:
        """``SHR_{S,R} = SHR_{S,R_u} + N_R`` (Eq. 2); 0 at the source."""
        if self.is_source:
            return 0
        return self.shr_upstream_value + self.n_self

    # ------------------------------------------------------------------
    # Actions initiated by the owner simulation
    # ------------------------------------------------------------------
    def become_source(self) -> None:
        self.is_source = True
        self.connected = True
        self._refresh_timer.start()
        self._advert_timer.start()

    def start_join(self, path: tuple[NodeId, ...]) -> None:
        """Issue a ``Join_Req`` along ``path`` (this node first)."""
        if path[0] != self.node_id:
            raise SimulationError(f"join path must start at {self.node_id}")
        self.is_member = True
        if self.on_tree:
            # Already relaying: membership flag is enough (§3.2.2).
            self.owner.complete_join(self.node_id, self.sim.now)
            return
        if len(path) < 2:
            raise SimulationError("off-tree joiner needs a path of length >= 2")
        self.upstream = path[1]
        self.trace("join", "request", detail=f"path {'-'.join(map(str, path))}")
        self.send(
            JoinReq(
                hop_src=self.node_id, hop_dst=path[1], joiner=self.node_id, path=path
            )
        )
        self._refresh_timer.start()
        self._advert_timer.start()
        # The watchdog arms only once the ack confirms connectivity; until
        # then a retransmission timer covers lost requests.
        self._arm_join_retry(path)

    def start_leave(self) -> None:
        """Issue a ``Leave_Req`` toward the source."""
        if not self.is_member:
            raise SimulationError(f"node {self.node_id} is not a member")
        self.is_member = False
        self.trace("leave", "request")
        if len(self.downstream) == 0 and not self.is_source:
            self._detach_and_prune_upstream()

    # ------------------------------------------------------------------
    # Message handlers
    # ------------------------------------------------------------------
    def _handle_join_req(self, message: Message) -> None:
        assert isinstance(message, JoinReq)
        previous_hop = message.hop_src
        self.downstream.refresh(previous_hop, subtree_members=0)
        if self.on_tree:
            # Merge point reached (possibly earlier than planned: the join
            # stops at the first on-tree router, PIM-style).
            self.trace("join", "merged", detail=f"joiner {message.joiner}")
            self.send(
                JoinAck(
                    hop_src=self.node_id,
                    hop_dst=previous_hop,
                    joiner=message.joiner,
                    merge_node=self.node_id,
                    path=message.path,
                )
            )
            return
        index = message.path.index(self.node_id)
        if index + 1 >= len(message.path):
            raise SimulationError(
                f"join request ran out of path at off-tree node {self.node_id}"
            )
        self.upstream = message.path[index + 1]
        self._refresh_timer.start()
        self._advert_timer.start()
        self.send(
            JoinReq(
                hop_src=self.node_id,
                hop_dst=self.upstream,
                joiner=message.joiner,
                path=message.path,
            )
        )

    def _handle_join_ack(self, message: Message) -> None:
        assert isinstance(message, JoinAck)
        self.connected = True
        if self.upstream is not None:
            self._watchdog.kick()
        if message.joiner == self.node_id:
            self.trace("join", "ack", detail=f"merge {message.merge_node}")
            self._join_retries_left = 0
            self._awaiting_ack = False
            self.owner.complete_join(self.node_id, self.sim.now)
            self.owner.note_restored(self.node_id)
            return
        # Relay the ack downstream along the recorded path.
        index = message.path.index(self.node_id)
        if index == 0:
            raise SimulationError(f"ack overshot the joiner at {self.node_id}")
        self.send(
            JoinAck(
                hop_src=self.node_id,
                hop_dst=message.path[index - 1],
                joiner=message.joiner,
                merge_node=message.merge_node,
                path=message.path,
            )
        )

    def _handle_leave_req(self, message: Message) -> None:
        assert isinstance(message, LeaveReq)
        self.downstream.remove(message.hop_src)
        if len(self.downstream) == 0 and not self.is_member and not self.is_source:
            self._detach_and_prune_upstream()

    def _handle_refresh(self, message: Message) -> None:
        assert isinstance(message, Refresh)
        self.downstream.refresh(
            message.hop_src, subtree_members=message.subtree_members
        )

    def _handle_shr_advert(self, message: Message) -> None:
        assert isinstance(message, ShrAdvert)
        if message.hop_src != self.upstream:
            return  # stale advert from a former parent
        self.shr_upstream_value = message.shr_upstream
        self.connected = True
        self._watchdog.kick()
        self.owner.note_heartbeat(self.node_id)

    def _handle_prune(self, message: Message) -> None:
        assert isinstance(message, Prune)
        self.downstream.remove(message.hop_src)
        if len(self.downstream) == 0 and not self.is_member and not self.is_source:
            self._detach_and_prune_upstream()

    def _handle_data(self, message: Message) -> None:
        assert isinstance(message, DataPacket)
        # Monotone-sequence dedup kills transient forwarding loops; the
        # TTL is the backstop for anything pathological.
        if message.seq <= self._last_data_seq or message.ttl <= 0:
            return
        self._last_data_seq = message.seq
        if self.is_member:
            self.owner.record_delivery(self.node_id, message.seq, self.sim.now)
        self.forward_data(message.seq, message.ttl - 1, exclude=message.hop_src)

    def forward_data(self, seq: int, ttl: int, exclude: NodeId | None = None) -> None:
        """Replicate a data packet to every downstream interface."""
        for child in self.downstream.neighbors():
            if child == exclude:
                continue
            self.send(
                DataPacket(hop_src=self.node_id, hop_dst=child, seq=seq, ttl=ttl)
            )

    # ------------------------------------------------------------------
    # Timers
    # ------------------------------------------------------------------
    def _send_refresh(self) -> None:
        self.downstream.expire()
        if self.upstream is not None and self.network.node_alive(self.node_id):
            self.send(
                Refresh(
                    hop_src=self.node_id,
                    hop_dst=self.upstream,
                    subtree_members=self.n_self,
                )
            )

    def _send_adverts(self) -> None:
        # A node only claims tree membership downstream while it believes
        # it is itself receiving data; a disconnected node falls silent so
        # its children's watchdogs fire and they recover independently.
        if (
            not self.on_tree
            or not self.connected
            or not self.network.node_alive(self.node_id)
        ):
            return
        for child in self.downstream.neighbors():
            self.send(
                ShrAdvert(hop_src=self.node_id, hop_dst=child, shr_upstream=self.shr)
            )

    def _on_upstream_lost(self) -> None:
        if self.upstream is None or self.is_source:
            return
        self.trace("failure", "detected", detail=f"upstream {self.upstream} silent")
        self.connected = False
        self.owner.handle_upstream_loss(self.node_id, self.upstream)

    def _on_softstate_expired(self, entry) -> None:
        self.trace("softstate", "expired", detail=f"downstream {entry.neighbor}")
        if len(self.downstream) == 0 and not self.is_member and not self.is_source:
            self._detach_and_prune_upstream()

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _detach_and_prune_upstream(self) -> None:
        if self.upstream is not None:
            self.send(
                Prune(hop_src=self.node_id, hop_dst=self.upstream, pruned=self.node_id)
            )
        self.upstream = None
        self.connected = False
        self.shr_upstream_value = 0
        self._watchdog.disarm()
        self._refresh_timer.stop()
        self._advert_timer.stop()

    def mark_disconnected(self) -> None:
        """Recovery failed here: fall silent so descendants try themselves."""
        self.connected = False
        self._watchdog.disarm()

    def force_new_upstream(self, path: tuple[NodeId, ...]) -> None:
        """Switch to a detour path (failure recovery / reshape switch)."""
        if path[0] != self.node_id or len(path) < 2:
            raise SimulationError(f"bad detour path {path} for node {self.node_id}")
        self.upstream = path[1]
        self._watchdog.disarm()
        self._refresh_timer.start()
        self._advert_timer.start()
        self.send(
            JoinReq(
                hop_src=self.node_id,
                hop_dst=path[1],
                joiner=self.node_id,
                path=path,
                member=self.is_member,
            )
        )
        self._arm_join_retry(path)

    def _arm_join_retry(self, path: tuple[NodeId, ...]) -> None:
        """Retransmit the join until an ack confirms it was installed."""
        self._join_retries_left = self.owner.timers.max_join_retries
        self._awaiting_ack = True
        self._schedule_join_retry(path)

    def _schedule_join_retry(self, path: tuple[NodeId, ...]) -> None:
        def retry() -> None:
            if not self._awaiting_ack or self._join_retries_left <= 0:
                return
            if self.upstream != path[1]:
                return  # a newer path superseded this join
            self._join_retries_left -= 1
            self.trace("join", "retry", detail=f"path {'-'.join(map(str, path))}")
            self.send(
                JoinReq(
                    hop_src=self.node_id,
                    hop_dst=path[1],
                    joiner=self.node_id,
                    path=path,
                    member=self.is_member,
                )
            )
            self._schedule_join_retry(path)

        self.sim.schedule(self.owner.timers.join_retry_interval, retry)


class _BaseSimulation:
    """Shared harness: builds the network, tracks joins and recoveries."""

    #: Router implementation; subclasses may install an extended node type.
    node_class: type = MulticastSimNode

    def __init__(
        self,
        topology: Topology,
        source: NodeId,
        timers: SimTimers | None = None,
        trace: Trace | None = None,
        obs: Observability | None = None,
    ) -> None:
        self.topology = topology
        self.source = source
        self.timers = timers or SimTimers.for_topology(topology)
        self.obs = obs if obs is not None else NULL_OBS
        self.sim = Simulator(obs=obs)
        self.trace = trace if trace is not None else Trace()
        if self.obs.tracer is not None:
            # Restoration episodes and ambient spans (reshape evaluations,
            # candidate searches) read the simulated clock from here on.
            self.obs.tracer.bind_clock(lambda: self.sim.now)
        self.network = SimNetwork(self.sim, topology, trace=self.trace, obs=obs)
        metrics = self.obs.metrics
        self._c_detections = metrics.counter("sim.recovery.detections")
        self._c_unrecoverable = metrics.counter("sim.recovery.unrecoverable")
        self._c_restored = metrics.counter("sim.recovery.restored")
        self._h_detour_hops = metrics.histogram("sim.recovery.detour_hops")
        self.nodes: dict[NodeId, MulticastSimNode] = {
            node: self.node_class(node, self.network, self)
            for node in topology.nodes()
        }
        self.nodes[source].become_source()
        # Per-simulation memo of failure-free member-rooted SPF state:
        # join-path selection repeats the same lookups across retries and
        # reshapes, and the failure-aware cache keys keep post-failure
        # searches distinct.
        self.route_cache = RouteCache()
        self.join_records: dict[NodeId, JoinRecord] = {}
        self.recovery_records: list[RecoveryRecord] = []
        #: member → list of (sequence number, arrival time) data receipts.
        self.deliveries: dict[NodeId, list[tuple[int, float]]] = {}
        self._data_timer: PeriodicTimer | None = None
        self._data_seq = 0
        self.data_period: float | None = None

    # -- overridden by concrete protocols --------------------------------
    def select_join_path(self, member: NodeId) -> tuple[NodeId, ...]:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------
    def start_data(self, period: float) -> None:
        """Have the source multicast one data packet every ``period``.

        Members log every packet they receive (:attr:`deliveries`);
        :meth:`disruption` turns the sequence gaps into the user-visible
        outage metric.
        """
        if self._data_timer is not None:
            self._data_timer.stop()
        self.data_period = period
        self._data_timer = PeriodicTimer(self.sim, period, self._emit_data)
        self._data_timer.start()

    def _emit_data(self) -> None:
        source_node = self.nodes[self.source]
        if not self.network.node_alive(self.source):
            return
        self._data_seq += 1
        source_node.forward_data(self._data_seq, ttl=64)

    def record_delivery(self, member: NodeId, seq: int, at: float) -> None:
        self.deliveries.setdefault(member, []).append((seq, at))

    def disruption(self, member: NodeId) -> tuple[int, float]:
        """Worst service gap a member experienced.

        Returns ``(packets lost in the largest gap, gap duration)`` over
        the member's delivery log — (0, 0.0) for uninterrupted service.
        """
        log = self.deliveries.get(member, [])
        if len(log) < 2:
            return (0, 0.0)
        worst_missing = 0
        worst_duration = 0.0
        for (seq_a, t_a), (seq_b, t_b) in zip(log, log[1:]):
            missing = seq_b - seq_a - 1
            if missing > worst_missing:
                worst_missing = missing
                worst_duration = t_b - t_a
        return (worst_missing, worst_duration)

    # ------------------------------------------------------------------
    # Workload API
    # ------------------------------------------------------------------
    def schedule_join(self, time: float, member: NodeId) -> None:
        self.sim.schedule_at(time, lambda: self._do_join(member))

    def schedule_leave(self, time: float, member: NodeId) -> None:
        self.sim.schedule_at(time, lambda: self._do_leave(member))

    def run(self, until: float) -> None:
        self.sim.run(until=until)

    # ------------------------------------------------------------------
    # Callbacks from nodes
    # ------------------------------------------------------------------
    def complete_join(self, member: NodeId, at: float) -> None:
        record = self.join_records.get(member)
        if record is not None and record.acked_at is None:
            record.acked_at = at

    def note_heartbeat(self, node: NodeId) -> None:
        """Hook for latency bookkeeping; a node heard from its parent."""
        self.note_restored(node)

    def note_restored(self, node: NodeId) -> None:
        """Close any pending recovery record for ``node`` — but only when
        its data path genuinely reaches the source.

        A re-join can transiently attach to a *stale* on-tree fragment
        (e.g. one of the node's own detached descendants, before that
        descendant has detected the outage) — the transient multicast
        loops real PIM exhibits during convergence.  Such an attachment
        must not count as restored service; the record stays open and is
        re-examined on later heartbeats until the chain is genuine.
        """
        if not self._reaches_source(node):
            return
        for record in self.recovery_records:
            if record.detector == node and record.restored_at is None:
                if record.detected_at is not None:
                    record.restored_at = self.sim.now
                    self._c_restored.inc()
                    if self.obs.tracer is not None:
                        # Closes the open ``repair`` span and the episode
                        # root at the restoration time; hops still in
                        # flight are trimmed so causality stays valid.
                        self.obs.tracer.close(node, self.sim.now)
                    self.obs.emit(
                        "recovery_restored",
                        node=node,
                        at=self.sim.now,
                        latency=record.restoration_latency,
                    )

    def _reaches_source(self, node: NodeId) -> bool:
        """True when the node's upstream chain reaches the source over
        live links (measurement-only check; nodes never read this)."""
        cursor = node
        seen = {node}
        while cursor != self.source:
            upstream = self.nodes[cursor].upstream
            if upstream is None or upstream in seen:
                return False
            if not self.network.link_usable(cursor, upstream):
                return False
            if not self.network.node_alive(upstream):
                return False
            seen.add(upstream)
            cursor = upstream
        return True

    def _failure_time(self) -> float:
        """When the triggering failure happened (injection time when
        known; otherwise bounded by the detection timeout)."""
        if self.network.last_failure_at is not None:
            return self.network.last_failure_at
        return self.sim.now - self.timers.failure_detection_timeout

    def handle_upstream_loss(self, detector: NodeId, lost_upstream: NodeId) -> None:
        """A node's upstream went silent: run the local-detour recovery.

        The detecting node (the root of the detached subtree) computes a
        detour to the last-known tree, avoiding the component it has just
        diagnosed as faulty, and re-joins.  Its descendants never notice.
        """
        record = RecoveryRecord(
            detector=detector,
            failed_at=self._failure_time(),
            detected_at=self.sim.now,
        )
        self.recovery_records.append(record)
        self._c_detections.inc()
        tracer = self.obs.tracer
        episode = None
        if tracer is not None:
            # The episode spans failure injection to service restoration;
            # ``detect`` covers the silent-upstream window, ``repair``
            # opens now and is closed by :meth:`note_restored`.
            episode = tracer.open(
                detector,
                "local",
                self.network.current_failures.describe(),
                record.failed_at,
            )
            episode.child(
                "detect", detector, record.failed_at, record.detected_at,
                payload={"lost_upstream": lost_upstream},
            )
        with self.obs.span("sim.recovery.detour"):
            known_failures = self.network.current_failures
            # The node states still hold the pre-failure upstream pointers
            # (the detector included), so the extracted tree IS the
            # last-known tree.
            known_tree = self.extract_tree()
            detached = known_tree.subtree_nodes(detector) if (
                known_tree.is_on_tree(detector)
            ) else {detector}
            surviving = known_tree.surviving_component(known_failures)
            barriers = set(known_tree.on_tree_nodes())
            paths = dijkstra_with_barriers(
                self.topology,
                detector,
                barriers=barriers - {detector},
                failures=known_failures.union(
                    FailureSet(failed_nodes=frozenset(detached - {detector}))
                ),
            )
            reachable = [n for n in surviving if n in paths.dist and n != detector]
            if not reachable:
                # This subtree root cannot reach the surviving tree itself
                # (e.g. its only exits run through its own descendants).  It
                # falls silent; descendants' watchdogs will expire and they
                # recover on their own — the member-driven recovery of §3.1.
                if self.trace is not None:
                    self.trace.record(
                        self.sim.now, "failure", detector, "unrecoverable",
                        episode_id=(
                            episode.episode.episode_id if episode is not None
                            else ""
                        ),
                    )
                if tracer is not None:
                    tracer.abandon(detector)
                self._c_unrecoverable.inc()
                self.nodes[detector].mark_disconnected()
                return
            target = min(reachable, key=lambda n: (paths.dist[n], n))
            toward = paths.path_to(target)
            detour = tuple(toward)
        record.detour = detour
        self._h_detour_hops.observe(len(detour) - 1)
        if episode is not None:
            episode.instant(
                "search", detector, self.sim.now,
                payload={
                    "detour_hops": len(detour) - 1,
                    "attach_node": detour[-1],
                },
            )
            episode.open_phase(
                "repair", detector, self.sim.now,
                payload={"detour": "-".join(str(n) for n in detour)},
            )
        self.obs.emit(
            "recovery_detour",
            node=detector,
            at=self.sim.now,
            hops=len(detour) - 1,
        )
        node = self.nodes[detector]
        node.force_new_upstream(detour)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def extract_tree(self) -> MulticastTree:
        """Reconstruct the multicast tree from live node states."""
        tree = MulticastTree(self.topology, self.source)
        # Attach nodes in upstream-chain order.
        remaining = {
            n.node_id: n.upstream
            for n in self.nodes.values()
            if n.upstream is not None and self.network.node_alive(n.node_id)
        }
        progress = True
        while remaining and progress:
            progress = False
            for node, up in sorted(remaining.items()):
                if tree.is_on_tree(up):
                    tree.graft([up, node], member=False)
                    del remaining[node]
                    progress = True
        for node in self.nodes.values():
            if node.is_member and tree.is_on_tree(node.node_id):
                tree.add_member(node.node_id)
        return tree

    def shr_view(self) -> dict[NodeId, int]:
        """The SHR values nodes currently believe (may lag the truth)."""
        return {
            n.node_id: n.shr
            for n in self.nodes.values()
            if n.on_tree and self.network.node_alive(n.node_id)
        }

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _do_join(self, member: NodeId) -> None:
        node = self.nodes[member]
        if node.is_member:
            return
        self.join_records[member] = JoinRecord(member=member, requested_at=self.sim.now)
        if node.on_tree:
            node.is_member = True
            self.complete_join(member, self.sim.now)
            return
        with self.obs.span("sim.join.select_path"):
            path = self.select_join_path(member)
        self.join_records[member].path = path
        node.start_join(path)

    def _do_leave(self, member: NodeId) -> None:
        node = self.nodes[member]
        if not node.is_member:
            return
        node.start_leave()


class SmrpSimulation(_BaseSimulation):
    """SMRP over the DES: SHR-driven selection with the D_thresh bound.

    The joining member enumerates candidates against the *advertised* SHR
    values (full-knowledge mode of §3.2.2; possibly stale mid-convergence)
    and applies the Path Selection Criterion.

    Condition-II reshaping (§3.2.3) can be enabled with
    :meth:`enable_reshaping`: a periodic timer re-runs path selection at
    every member and switches it (make-before-break: ``Join_Req`` along
    the new path, then ``Prune`` up the old one) when a strictly better
    attachment exists.  The evaluation assumes SHR adverts have converged
    between timer firings, which holds when the reshape period is long
    relative to the advert period — the recommended regime anyway, since
    reshaping exists to track slow membership drift, not message noise.
    """

    def __init__(
        self,
        topology: Topology,
        source: NodeId,
        d_thresh: float = 0.3,
        timers: SimTimers | None = None,
        trace: Trace | None = None,
        obs: Observability | None = None,
    ) -> None:
        super().__init__(topology, source, timers=timers, trace=trace, obs=obs)
        self.d_thresh = d_thresh
        self.reshapes_performed = 0
        self._reshape_timer: PeriodicTimer | None = None

    # ------------------------------------------------------------------
    # Condition-II reshaping
    # ------------------------------------------------------------------
    def enable_reshaping(self, period: float) -> None:
        """Arm the periodic re-selection timer (Condition II)."""
        if self._reshape_timer is not None:
            self._reshape_timer.stop()
        self._reshape_timer = PeriodicTimer(self.sim, period, self._reshape_pass)
        self._reshape_timer.start()

    def _reshape_pass(self) -> None:
        from repro.core.reshape import evaluate_reshape

        tree = self.extract_tree()
        for member in sorted(tree.members):
            if member == self.source:
                continue
            node = self.nodes[member]
            if not node.connected or not self.network.node_alive(member):
                continue
            decision = evaluate_reshape(
                self.topology, tree, member, self.d_thresh,
                failures=self.network.current_failures,
            )
            if not decision.performed:
                continue
            old_upstream = node.upstream
            detour = tuple(reversed(decision.new_path))
            node.force_new_upstream(detour)
            if old_upstream is not None and old_upstream != detour[1]:
                node.send(
                    Prune(
                        hop_src=member, hop_dst=old_upstream, pruned=member
                    )
                )
            self.reshapes_performed += 1
            if self.trace is not None:
                self.trace.record(
                    self.sim.now, "reshape", member, "switched",
                    detail=f"merge {decision.new_merge_node}",
                )
            # Re-read the tree so later members see the switch.
            tree = self.extract_tree()

    def select_join_path(self, member: NodeId) -> tuple[NodeId, ...]:
        tree = self.extract_tree()
        shr_values = self.shr_view()
        shr_values.setdefault(self.source, 0)
        candidates = enumerate_candidates(
            self.topology, tree, member, shr_values
        )
        spf = self.route_cache.shortest_paths(self.topology, member, obs=self.obs)
        selection = select_path(candidates, spf.distance(self.source), self.d_thresh)
        # start_join expects joiner-first ordering.
        return tuple(reversed(selection.candidate.graft_path))


class SpfSimulation(_BaseSimulation):
    """The PIM/MOSPF-style baseline over the DES."""

    def select_join_path(self, member: NodeId) -> tuple[NodeId, ...]:
        paths = self.route_cache.shortest_paths(self.topology, member, obs=self.obs)
        return tuple(paths.path_to(self.source))
