"""The simulated network: message delivery over links with failure state.

The network owns the dynamic failure state (links and nodes can fail at
any simulated time).  Transmission semantics for persistent failures:

- a message sent over a failed link is silently lost (exactly what a
  cable cut does — detection is the protocols' job, via heartbeats),
- a failed node neither sends nor receives,
- link delays are the topology's ``delay`` weights; per-message jitter is
  zero so runs are exactly reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, TYPE_CHECKING

from repro.errors import SimulationError, TopologyError
from repro.graph.topology import Edge, NodeId, Topology, edge_key
from repro.obs import Counter, Observability
from repro.routing.failure_view import FailureSet
from repro.sim.engine import Simulator
from repro.sim.messages import Message, wire_bytes
from repro.sim.trace import Trace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.sim.node import SimNode


@dataclass
class NetworkStats:
    """Message accounting over the whole run."""

    sent: int = 0
    delivered: int = 0
    lost_link_failed: int = 0
    lost_node_failed: int = 0
    by_kind: dict[str, int] = field(default_factory=dict)


class SimNetwork:
    """Delivers messages between registered nodes with link delays."""

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        trace: Trace | None = None,
        obs: Observability | None = None,
    ) -> None:
        self.sim = sim
        self.topology = topology
        self.trace = trace
        self.stats = NetworkStats()
        self._nodes: dict[NodeId, "SimNode"] = {}
        self._failed_links: set[Edge] = set()
        self._failed_nodes: set[NodeId] = set()
        #: When the most recent failure was injected (None: never).
        self.last_failure_at: float | None = None
        self._obs = obs if obs is not None and obs.enabled else None
        #: Restoration tracer, when attached: message hops addressed to a
        #: node with an open episode become ``signal.hop`` child spans.
        self._tracer = obs.tracer if obs is not None else None
        #: kind -> (sent counter, bytes counter), bound lazily per kind so
        #: the transmit hot path is two dict lookups when enabled.
        self._kind_meters: dict[str, tuple[Counter, Counter]] = {}
        if self._obs is not None:
            metrics = self._obs.metrics
            self._c_delivered = metrics.counter("sim.msg.delivered")
            self._c_lost = metrics.counter("sim.msg.lost")

    # ------------------------------------------------------------------
    # Registration and failure state
    # ------------------------------------------------------------------
    def register(self, node: "SimNode") -> None:
        if node.node_id in self._nodes:
            raise SimulationError(f"node {node.node_id} registered twice")
        if not self.topology.has_node(node.node_id):
            raise TopologyError(f"node {node.node_id} is not in the topology")
        self._nodes[node.node_id] = node

    def node(self, node_id: NodeId) -> "SimNode":
        try:
            return self._nodes[node_id]
        except KeyError:
            raise SimulationError(f"node {node_id} is not registered") from None

    def nodes(self) -> list["SimNode"]:
        return [self._nodes[n] for n in sorted(self._nodes)]

    def fail_link(self, u: NodeId, v: NodeId) -> None:
        if not self.topology.has_link(u, v):
            raise TopologyError(f"cannot fail missing link {edge_key(u, v)}")
        self._failed_links.add(edge_key(u, v))
        self.last_failure_at = self.sim.now

    def fail_node(self, node: NodeId) -> None:
        if not self.topology.has_node(node):
            raise TopologyError(f"cannot fail missing node {node}")
        self._failed_nodes.add(node)
        self.last_failure_at = self.sim.now

    def repair_all(self) -> None:
        self._failed_links.clear()
        self._failed_nodes.clear()

    @property
    def current_failures(self) -> FailureSet:
        return FailureSet(
            failed_links=frozenset(self._failed_links),
            failed_nodes=frozenset(self._failed_nodes),
        )

    def link_usable(self, u: NodeId, v: NodeId) -> bool:
        return self.current_failures.link_usable(u, v)

    def node_alive(self, node: NodeId) -> bool:
        return node not in self._failed_nodes

    # ------------------------------------------------------------------
    # Transmission
    # ------------------------------------------------------------------
    def transmit(self, message: Message) -> None:
        """Send one message over one link; deliver after the link delay."""
        u, v = message.hop_src, message.hop_dst
        if not self.topology.has_link(u, v):
            raise TopologyError(f"no link {edge_key(u, v)} for message {message.kind}")
        self.stats.sent += 1
        self.stats.by_kind[message.kind] = self.stats.by_kind.get(message.kind, 0) + 1
        if self._obs is not None:
            meters = self._kind_meters.get(message.kind)
            if meters is None:
                metrics = self._obs.metrics
                meters = (
                    metrics.counter(f"sim.msg.sent.{message.kind}"),
                    metrics.counter(f"sim.msg.bytes.{message.kind}"),
                )
                self._kind_meters[message.kind] = meters
            meters[0].inc()
            meters[1].inc(wire_bytes(message))
        if self.trace is not None:
            self.trace.record(
                self.sim.now, "send", u, message.kind, detail=f"to {v}",
                episode_id=self._episode_id_for(message),
            )
        if u in self._failed_nodes:
            self.stats.lost_node_failed += 1
            if self._obs is not None:
                self._c_lost.inc()
            return
        if edge_key(u, v) in self._failed_links:
            self.stats.lost_link_failed += 1
            if self._obs is not None:
                self._c_lost.inc()
            return
        delay = self.topology.delay(u, v)
        self.sim.schedule(delay, lambda: self._deliver(message))

    def _deliver(self, message: Message) -> None:
        v = message.hop_dst
        # Failure state is re-checked at delivery time: a failure injected
        # while the message was in flight loses it.
        if v in self._failed_nodes or message.hop_src in self._failed_nodes:
            self.stats.lost_node_failed += 1
            if self._obs is not None:
                self._c_lost.inc()
            return
        if edge_key(message.hop_src, v) in self._failed_links:
            self.stats.lost_link_failed += 1
            if self._obs is not None:
                self._c_lost.inc()
            return
        receiver = self._nodes.get(v)
        if receiver is None:
            raise SimulationError(f"message for unregistered node {v}")
        self.stats.delivered += 1
        if self._obs is not None:
            self._c_delivered.inc()
        episode_id, span_id, parent_id = "", -1, -1
        episode = self._open_episode_for(message)
        if episode is not None:
            # A control hop serving an in-flight restoration: record it as
            # a child span of the episode's open repair phase, covering
            # exactly the link's propagation window.
            delay = self.topology.delay(message.hop_src, v)
            parent_id = episode.current_phase()
            span_id = episode.child(
                "signal.hop", v, self.sim.now - delay, self.sim.now,
                parent=parent_id,
                payload={"kind": message.kind,
                         "link": f"{message.hop_src}-{v}"},
            )
            episode_id = episode.episode.episode_id
        if self.trace is not None:
            self.trace.record(
                self.sim.now, "recv", v, message.kind,
                detail=f"from {message.hop_src}",
                episode_id=episode_id, span_id=span_id, parent_id=parent_id,
            )
        receiver.receive(message)

    # ------------------------------------------------------------------
    # Restoration-episode linkage
    # ------------------------------------------------------------------
    def _open_episode_for(self, message: Message):
        """The open restoration episode this message serves, if any.

        Join/ack/leave messages name the node they act for (``joiner`` /
        ``leaver``); when that node currently has an episode open, the
        message hop belongs to its recovery signaling.
        """
        if self._tracer is None:
            return None
        target = getattr(message, "joiner", None)
        if target is None:
            target = getattr(message, "leaver", None)
        if target is None:
            return None
        return self._tracer.open_for(target)

    def _episode_id_for(self, message: Message) -> str:
        episode = self._open_episode_for(message)
        return episode.episode.episode_id if episode is not None else ""
