"""Failure injection schedules.

Persistent failures are injected at absolute simulated times and never
heal by themselves (the paper's failure model: cable cuts, crashed
routers, §1).  A :class:`FailureSchedule` binds injection times to a
:class:`~repro.sim.network.SimNetwork` and arms them on a simulator.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.graph.topology import NodeId
from repro.sim.engine import Simulator
from repro.sim.network import SimNetwork


@dataclass(frozen=True)
class LinkFailure:
    time: float
    u: NodeId
    v: NodeId


@dataclass(frozen=True)
class NodeFailure:
    time: float
    node: NodeId


@dataclass
class FailureSchedule:
    """A set of timed persistent failures."""

    link_failures: list[LinkFailure] = field(default_factory=list)
    node_failures: list[NodeFailure] = field(default_factory=list)
    #: Simulators this schedule is already armed on (weak: a schedule must
    #: not keep dead simulators alive).  Not part of value equality.
    _armed: "weakref.WeakSet[Simulator]" = field(
        default_factory=weakref.WeakSet, repr=False, compare=False
    )

    def fail_link_at(self, time: float, u: NodeId, v: NodeId) -> "FailureSchedule":
        if time < 0:
            raise ConfigurationError(f"failure time must be non-negative: {time}")
        self.link_failures.append(LinkFailure(time, u, v))
        return self

    def fail_node_at(self, time: float, node: NodeId) -> "FailureSchedule":
        if time < 0:
            raise ConfigurationError(f"failure time must be non-negative: {time}")
        self.node_failures.append(NodeFailure(time, node))
        return self

    def arm(self, sim: Simulator, network: SimNetwork) -> None:
        """Schedule every failure on the simulator, exactly once per sim.

        Arming is idempotent per simulator: re-arming the same schedule —
        e.g. when setup code is re-driven after a checkpoint resume — is a
        no-op instead of double-injecting every failure.  Failures added
        *after* the first ``arm`` call are not picked up by a re-arm;
        schedule them before arming (a distinct simulator arms afresh).
        """
        if sim in self._armed:
            return
        self._armed.add(sim)
        for lf in self.link_failures:
            sim.schedule_at(lf.time, lambda lf=lf: self._inject_link(network, lf))
        for nf in self.node_failures:
            sim.schedule_at(nf.time, lambda nf=nf: self._inject_node(network, nf))

    @staticmethod
    def _inject_link(network: SimNetwork, failure: LinkFailure) -> None:
        network.fail_link(failure.u, failure.v)
        if network.trace is not None:
            network.trace.record(
                network.sim.now,
                "failure",
                failure.u,
                "link_failed",
                detail=f"link {failure.u}-{failure.v}",
            )

    @staticmethod
    def _inject_node(network: SimNetwork, failure: NodeFailure) -> None:
        network.fail_node(failure.node)
        if network.trace is not None:
            network.trace.record(
                network.sim.now, "failure", failure.node, "node_failed"
            )

    @property
    def is_empty(self) -> bool:
        return not self.link_failures and not self.node_failures
