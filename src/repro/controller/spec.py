"""Declarative controller runs: the :class:`ServiceSpec`.

A :class:`ServiceSpec` is to a controller run what
:class:`~repro.experiments.exec.spec.ExperimentSpec` is to a sweep: a
frozen, validated, JSON-round-trippable value whose
:meth:`~ServiceSpec.content_key` (SHA-256 prefix of the canonical JSON
form) names everything derived from it — checkpoint entries, shard work
units, telemetry records.  Every quantity a run needs — the topology,
each group's source, size, membership workload, and the injected
failure — is a pure function of the spec, which is what makes sharded
runs byte-identical to serial ones: a group's restoration row cannot
depend on which worker hosted it.

:func:`resolve_failure` turns the spec's ``failure`` field into a
concrete :class:`~repro.routing.failure_view.FailureSet` using only the
spec and the topology (never the built trees), so every shard resolves
the identical failure independently.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass

from repro.errors import ConfigurationError
from repro.graph.topology import Topology
from repro.graph.waxman import WaxmanConfig
from repro.routing.failure_view import NO_FAILURES, FailureSet
from repro.routing.spf import dijkstra

#: Group-population protocols the controller can host.
PROTOCOLS = ("smrp", "spf", "protection", "hybrid", "alternate")

#: Membership workload shapes (see :mod:`repro.controller.workload`).
WORKLOADS = ("static", "poisson", "flash")


@dataclass(frozen=True)
class ServiceSpec:
    """One reproducible multi-group controller run.

    Attributes
    ----------
    n, alpha, beta, topology_seed:
        The shared Waxman topology (same parameterisation as
        :class:`~repro.experiments.scenario.ScenarioConfig`).
    groups:
        Number of hosted ``(source, group)`` sessions.
    sources:
        Size of the source pool.  Groups are assigned to sources by Zipf
        popularity: rank-0 (the "hot" source) hosts the largest share.
    source_skew:
        Zipf exponent of the source popularity distribution (> 0;
        larger = more skew toward the hot source).
    group_size_min, group_size_max, size_skew:
        Initial group sizes are ``min + (Zipf(size_skew) - 1)`` clipped
        to ``max`` — a heavy-tailed population where most groups are
        small and a few are large (``size_skew`` > 1).
    member_seed:
        Seeds the per-group generators (sources pool, member picks,
        churn); a group's randomness derives from
        ``(member_seed, topology_seed, group index)`` only.
    protocol:
        ``"smrp"`` (local-detour restoration), ``"spf"`` (the PIM/MOSPF
        global-detour baseline), ``"protection"`` (SPF + per-link
        backup trees), ``"hybrid"`` (SMRP + per-link backup trees), or
        ``"alternate"`` (SPF + precomputed single-failure alternate
        routes) for every hosted group.
    d_thresh, reshape_enabled:
        SMRP parameters (ignored by the SPF baseline).
    protect_budget:
        Protected-link budget ``F`` of the ``protection``/``hybrid``
        engines (ignored by the others).
    workload:
        ``"static"`` — members join once; ``"poisson"`` — Poisson
        arrivals with exponential holding times; ``"flash"`` — a static
        base plus a simultaneous flash-crowd burst that partially
        drains again.
    churn_duration, mean_holding_time, mean_interarrival:
        Churn-shape parameters (``poisson`` and ``flash``).
    flash_fraction:
        Fraction of non-member candidates that join in the flash burst.
    failure:
        ``"none"``, ``"auto"`` (the busiest link out of the hot source —
        a regional failure hitting the largest share of groups),
        ``"link:U-V"``, or ``"node:X"``.
    shard_size:
        Groups per :class:`~repro.controller.service.ServiceShard` work
        unit.  Part of the spec (not an execution knob) so shard
        content keys — and therefore checkpoint identities — do not
        depend on ``--jobs``.
    """

    n: int = 100
    alpha: float = 0.2
    beta: float = 0.25
    topology_seed: int = 0
    groups: int = 200
    sources: int = 8
    source_skew: float = 1.1
    group_size_min: int = 2
    group_size_max: int = 12
    size_skew: float = 1.6
    member_seed: int = 0
    protocol: str = "smrp"
    d_thresh: float = 0.3
    reshape_enabled: bool = True
    protect_budget: int = 4
    workload: str = "static"
    churn_duration: float = 200.0
    mean_holding_time: float = 120.0
    mean_interarrival: float = 10.0
    flash_fraction: float = 0.25
    failure: str = "auto"
    shard_size: int = 50

    def __post_init__(self) -> None:
        if self.n < 3:
            raise ConfigurationError(f"n must be >= 3, got {self.n}")
        if self.groups < 1:
            raise ConfigurationError(f"groups must be >= 1, got {self.groups}")
        if not 1 <= self.sources < self.n:
            raise ConfigurationError(
                f"sources must be in [1, n), got {self.sources} with n={self.n}"
            )
        if self.source_skew <= 0:
            raise ConfigurationError(
                f"source_skew must be positive, got {self.source_skew}"
            )
        if not 1 <= self.group_size_min <= self.group_size_max:
            raise ConfigurationError(
                f"need 1 <= group_size_min <= group_size_max, got "
                f"[{self.group_size_min}, {self.group_size_max}]"
            )
        if self.group_size_max > self.n - 1:
            raise ConfigurationError(
                f"group_size_max {self.group_size_max} exceeds the "
                f"{self.n - 1} candidate members"
            )
        if self.size_skew <= 1:
            raise ConfigurationError(
                f"size_skew must be > 1 (Zipf exponent), got {self.size_skew}"
            )
        if self.protocol not in PROTOCOLS:
            raise ConfigurationError(
                f"unknown protocol {self.protocol!r}; expected one of {PROTOCOLS}"
            )
        if self.d_thresh < 0:
            raise ConfigurationError(f"d_thresh must be >= 0, got {self.d_thresh}")
        if self.protect_budget < 0:
            raise ConfigurationError(
                f"protect_budget must be >= 0, got {self.protect_budget}"
            )
        if self.workload not in WORKLOADS:
            raise ConfigurationError(
                f"unknown workload {self.workload!r}; expected one of {WORKLOADS}"
            )
        if (
            self.churn_duration <= 0
            or self.mean_holding_time <= 0
            or self.mean_interarrival <= 0
        ):
            raise ConfigurationError("churn parameters must be positive")
        if not 0 < self.flash_fraction <= 1:
            raise ConfigurationError(
                f"flash_fraction must be in (0, 1], got {self.flash_fraction}"
            )
        if self.shard_size < 1:
            raise ConfigurationError(
                f"shard_size must be >= 1, got {self.shard_size}"
            )
        self._check_failure_syntax()

    def _check_failure_syntax(self) -> None:
        mode = self.failure
        if mode in ("none", "auto"):
            return
        if mode.startswith("link:"):
            u, sep, v = mode[len("link:"):].partition("-")
            if sep and u.lstrip("-").isdigit() and v.lstrip("-").isdigit():
                return
            raise ConfigurationError(
                f"failure {mode!r}: expected link:U-V with integer node ids"
            )
        if mode.startswith("node:"):
            if mode[len("node:"):].lstrip("-").isdigit():
                return
            raise ConfigurationError(
                f"failure {mode!r}: expected node:X with an integer node id"
            )
        raise ConfigurationError(
            f"unknown failure {mode!r}; expected none, auto, link:U-V, or node:X"
        )

    # ------------------------------------------------------------------
    # Derived values
    # ------------------------------------------------------------------
    def waxman_config(self) -> WaxmanConfig:
        """The run's topology parameters — also the substrate cache key,
        so controller runs and scenario sweeps share generated graphs."""
        return WaxmanConfig(
            n=self.n, alpha=self.alpha, beta=self.beta, seed=self.topology_seed
        )

    # ------------------------------------------------------------------
    # Serialisation and identity
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return asdict(self)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_dict(cls, payload: dict) -> "ServiceSpec":
        known = {f.name for f in cls.__dataclass_fields__.values()}
        unknown = set(payload) - known
        if unknown:
            raise ConfigurationError(
                f"unknown ServiceSpec fields: {sorted(unknown)}"
            )
        return cls(**payload)

    @classmethod
    def from_json(cls, text: str) -> "ServiceSpec":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"invalid ServiceSpec JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise ConfigurationError("ServiceSpec JSON must be an object")
        return cls.from_dict(payload)

    def key(self) -> str:
        """Stable content digest — the run's identity for caching."""
        canonical = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]

    def content_key(self) -> str:
        """Alias of :meth:`key`, matching the checkpoint layer's name."""
        return self.key()

    def describe(self) -> str:
        return (
            f"{self.groups} {self.protocol} groups on N={self.n} "
            f"(sources={self.sources}, workload={self.workload}, "
            f"failure={self.failure})"
        )


def resolve_failure(spec: ServiceSpec, topology: Topology) -> FailureSet:
    """The spec's injected failure as a concrete :class:`FailureSet`.

    Resolution uses only the spec and the topology — never the hosted
    trees — so every shard of a sharded run derives the identical
    failure without coordination.  ``auto`` picks the busiest link out
    of the *hot* source (Zipf rank 0): the source-incident link whose
    SPF first-hop subtree covers the most nodes, i.e. the single link
    failure expected to cut the largest share of hosted groups.
    """
    mode = spec.failure
    if mode == "none":
        return NO_FAILURES
    if mode == "auto":
        return _busiest_source_link(spec, topology)
    if mode.startswith("link:"):
        u_text, _, v_text = mode[len("link:"):].partition("-")
        u, v = int(u_text), int(v_text)
        if not topology.has_link(u, v):
            raise ConfigurationError(
                f"failure {mode!r}: topology has no link {u}-{v}"
            )
        return FailureSet.links((u, v))
    node = int(mode[len("node:"):])
    if not topology.has_node(node):
        raise ConfigurationError(f"failure {mode!r}: topology has no node {node}")
    return FailureSet.nodes(node)


def _busiest_source_link(spec: ServiceSpec, topology: Topology) -> FailureSet:
    from repro.controller.workload import source_pool

    hot = source_pool(spec, topology)[0]
    paths = dijkstra(topology, hot, weight="delay")
    # Count, per first hop out of the hot source, how many nodes route
    # through it; memoised walk up the SPF parent chain.
    first_hop: dict = {hot: None}

    def hop_of(node):
        if node in first_hop:
            return first_hop[node]
        hop = node if paths.parent[node] == hot else hop_of(paths.parent[node])
        first_hop[node] = hop
        return hop

    counts: dict = {}
    for node in paths.dist:
        if node == hot:
            continue
        hop = hop_of(node)
        counts[hop] = counts.get(hop, 0) + 1
    if not counts:
        raise ConfigurationError(
            f"failure 'auto': hot source {hot} has no reachable neighbors"
        )
    # Largest subtree wins; node-id tie-break keeps the choice stable.
    best = max(counts, key=lambda hop: (counts[hop], -hop))
    return FailureSet.links((hot, best))
