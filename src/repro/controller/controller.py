"""The long-lived multi-group controller.

A :class:`MulticastController` hosts many concurrent ``(source, group)``
multicast sessions over one shared topology — the service setting the
paper's per-tree machinery is built for.  Each hosted group owns a full
protocol engine — :class:`~repro.core.protocol.SMRPProtocol`, the
:class:`~repro.multicast.spf_protocol.SPFMulticastProtocol` baseline, or
one of the protection family
(:class:`~repro.multicast.backup_trees.BackupTreeProtocol` in
``protection``/``hybrid`` mode,
:class:`~repro.multicast.backup_trees.AlternatePathProtocol`) — with its
own tree and standing state; the controller contributes what the
engines cannot do alone:

- a **group registry** with join/leave/workload verbs addressed by
  group id;
- shared substrate: one topology and one failure-aware
  :class:`~repro.routing.route_cache.RouteCache` amortise SPF state
  across all hosted groups;
- **one-pass failure dispatch** — a reverse index from links/nodes to
  the groups whose trees traverse them, so a failure event fans out to
  exactly the affected groups (:meth:`MulticastController.fail`) and a
  single :meth:`~MulticastController.restore` pass repairs them all,
  producing one :class:`GroupRestoration` accounting row per group and
  a ``group.restore`` telemetry record when a hub is attached.

The reverse index is maintained lazily: membership changes only mark a
group dirty, and the index is refreshed on the next dispatch — churn
between failures costs nothing extra.
"""

from __future__ import annotations

import os
from dataclasses import asdict, dataclass

from repro.core.protocol import SMRPConfig, SMRPProtocol
from repro.core.recovery import estimate_restoration_latency
from repro.errors import ConfigurationError
from repro.graph.topology import Edge, NodeId, Topology, edge_key
from repro.multicast.backup_trees import (
    DEFAULT_BUDGET,
    AlternatePathProtocol,
    BackupTreeProtocol,
)
from repro.multicast.group import GroupAction, GroupWorkload
from repro.multicast.spf_protocol import SPFMulticastProtocol
from repro.obs import NULL_OBS, Observability
from repro.routing.failure_view import FailureSet
from repro.routing.link_state import ConvergenceModel

#: A hosted session's identity: ``(source node, group number)``.
GroupId = tuple

#: Protocol engines the controller can host, by spec name.
_ENGINES = ("smrp", "spf", "protection", "hybrid", "alternate")


def _batch_restore_default() -> bool:
    """Resolve the ``REPRO_BATCH_RESTORE`` environment toggle (default on).

    An environment variable rather than a spec field so existing
    :class:`~repro.controller.spec.ServiceSpec` content keys (and the
    checkpoints hashed from them) are untouched — batching changes how
    many kernel runs a restoration takes, never its result, and the
    variable is inherited by pool workers so sharded runs follow suit.
    """
    value = os.environ.get("REPRO_BATCH_RESTORE")
    if value is None:
        return True
    return value.strip().lower() not in ("0", "false", "no", "off", "")


@dataclass(frozen=True)
class GroupRestoration:
    """Per-group accounting row of one restoration pass.

    ``latency_s`` is the group's service-restoration latency — the
    *slowest* member's :func:`~repro.core.recovery.estimate_restoration_latency`
    (the group is restored when its last member is); ``mean_latency_s``
    and ``recovery_distance`` (mean ``RD_R``) summarise the rest.
    """

    source: NodeId
    group: int
    protocol: str
    members: int
    affected: int
    restored: int
    unrecoverable: int
    strategy: str
    recovery_distance: float
    latency_s: float
    mean_latency_s: float

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "GroupRestoration":
        return cls(**payload)


@dataclass(frozen=True)
class FailureDispatch:
    """Outcome of one failure → restore cycle across the registry."""

    failure: str
    groups_hosted: int
    groups_checked: int
    rows: tuple

    @property
    def affected(self) -> int:
        return len(self.rows)

    @property
    def restored(self) -> int:
        return sum(row.restored for row in self.rows)

    @property
    def unrecoverable(self) -> int:
        return sum(row.unrecoverable for row in self.rows)

    def describe(self) -> str:
        return (
            f"{self.failure}: {self.affected}/{self.groups_hosted} groups "
            f"affected ({self.groups_checked} indexed candidates), "
            f"{self.restored} members restored, "
            f"{self.unrecoverable} unrecoverable"
        )


class _HostedGroup:
    """Registry entry: the engine plus its indexed footprint."""

    __slots__ = ("engine", "protocol", "links", "nodes", "dirty")

    def __init__(self, engine, protocol: str) -> None:
        self.engine = engine
        self.protocol = protocol
        self.links: frozenset = frozenset()
        self.nodes: frozenset = frozenset()
        self.dirty = True


class MulticastController:
    """Host thousands of multicast groups over one topology.

    Parameters
    ----------
    topology:
        The shared substrate every hosted tree lives on.
    protocol:
        Default engine for new groups: ``"smrp"``, ``"spf"``,
        ``"protection"`` (SPF + per-link backup trees), ``"hybrid"``
        (SMRP + per-link backup trees), or ``"alternate"`` (SPF +
        precomputed single-failure alternate routes).
    smrp_config:
        Shared :class:`~repro.core.protocol.SMRPConfig` for SMRP groups
        (``self_check`` off by default at service scale); also the inner
        config of ``hybrid`` groups.
    protect_budget:
        Protected-link budget ``F`` for ``protection``/``hybrid``
        groups — the top-``F`` most-loaded tree links get a precomputed
        backup tree each.
    cache:
        Optional :class:`~repro.experiments.exec.cache.SubstrateCache`;
        its route cache is shared by every hosted engine, so the
        thousandth group's joins mostly hit memoised SPF state.
    convergence:
        :class:`~repro.routing.link_state.ConvergenceModel` used for
        restoration-latency estimates (global detours wait on it).
    telemetry:
        Optional :class:`~repro.obs.live.TelemetryHub`; each restored
        group publishes one ``group.restore`` record.  Observe-only:
        results are identical with or without a hub.
    batch_restoration:
        When True (the default; overridable via the
        ``REPRO_BATCH_RESTORE`` environment variable), a failure
        dispatch buckets every affected session's disconnected members
        by ``(weight, failure set)`` and pre-computes their post-failure
        SPF state with one multi-root kernel run per bucket
        (:meth:`~repro.routing.route_cache.RouteCache.warm_batch` on the
        shared route cache).  The per-group repairs then consume warmed,
        byte-identical entries instead of issuing one scalar kernel run
        per member — :class:`GroupRestoration` rows are identical either
        way (CI diffs them for real).
    """

    def __init__(
        self,
        topology: Topology,
        *,
        protocol: str = "smrp",
        smrp_config: SMRPConfig | None = None,
        protect_budget: int = DEFAULT_BUDGET,
        cache=None,
        convergence: ConvergenceModel | None = None,
        obs: Observability | None = None,
        telemetry=None,
        batch_restoration: bool | None = None,
    ) -> None:
        if protocol not in _ENGINES:
            raise ConfigurationError(
                f"unknown protocol {protocol!r}; expected one of {_ENGINES}"
            )
        if protect_budget < 0:
            raise ConfigurationError(
                f"protect_budget must be >= 0, got {protect_budget}"
            )
        self.topology = topology
        self.protocol = protocol
        self.smrp_config = smrp_config or SMRPConfig(self_check=False)
        self.protect_budget = protect_budget
        self.cache = cache
        self.convergence = convergence
        self.obs = obs if obs is not None else NULL_OBS
        self.telemetry = telemetry
        self.batch_restoration = (
            _batch_restore_default()
            if batch_restoration is None
            else bool(batch_restoration)
        )
        self._groups: dict[GroupId, _HostedGroup] = {}
        self._by_link: dict[Edge, set] = {}
        self._by_node: dict[NodeId, set] = {}
        self._next_group = 0
        self._pending: tuple[FailureSet, list] | None = None
        self._restorations = 0

    # ------------------------------------------------------------------
    # Registry
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._groups)

    def group_ids(self) -> list[GroupId]:
        return sorted(self._groups)

    def _hosted(self, gid: GroupId) -> _HostedGroup:
        try:
            return self._groups[gid]
        except KeyError:
            raise ConfigurationError(f"no hosted group {gid!r}") from None

    def tree(self, gid: GroupId):
        """The group's current :class:`~repro.multicast.tree.MulticastTree`."""
        return self._hosted(gid).engine.tree

    def open_group(
        self,
        source: NodeId,
        group: int | None = None,
        *,
        protocol: str | None = None,
        members=(),
    ) -> GroupId:
        """Register a new ``(source, group)`` session; joins ``members``
        in order.  ``group`` auto-increments when omitted."""
        if not self.topology.has_node(source):
            raise ConfigurationError(f"source {source} is not in the topology")
        if group is None:
            group = self._next_group
            self._next_group += 1
        else:
            self._next_group = max(self._next_group, group + 1)
        gid = (source, group)
        if gid in self._groups:
            raise ConfigurationError(f"group {gid!r} is already hosted")
        kind = protocol if protocol is not None else self.protocol
        if kind not in _ENGINES:
            raise ConfigurationError(
                f"unknown protocol {kind!r}; expected one of {_ENGINES}"
            )
        routes = self.cache.routes if self.cache is not None else None
        if kind == "smrp":
            engine = SMRPProtocol(
                self.topology,
                source,
                config=self.smrp_config,
                obs=self.obs,
                route_cache=routes,
            )
        elif kind in ("protection", "hybrid"):
            engine = BackupTreeProtocol(
                self.topology,
                source,
                mode=kind,
                budget=self.protect_budget,
                smrp_config=self.smrp_config,
                route_cache=routes,
                obs=self.obs,
            )
        elif kind == "alternate":
            engine = AlternatePathProtocol(
                self.topology,
                source,
                route_cache=routes,
                obs=self.obs,
            )
        else:
            engine = SPFMulticastProtocol(
                self.topology,
                source,
                self_check=False,
                route_cache=routes,
                obs=self.obs,
            )
        self._groups[gid] = _HostedGroup(engine, kind)
        self.obs.counter("controller.groups_opened").inc()
        for member in members:
            self.join(gid, member)
        return gid

    def close_group(self, gid: GroupId) -> None:
        hosted = self._hosted(gid)
        self._drop_from_index(gid, hosted)
        del self._groups[gid]

    def join(self, gid: GroupId, node: NodeId) -> None:
        hosted = self._hosted(gid)
        hosted.engine.join(node)
        hosted.dirty = True

    def leave(self, gid: GroupId, node: NodeId) -> None:
        hosted = self._hosted(gid)
        hosted.engine.leave(node)
        hosted.dirty = True

    def apply_workload(self, gid: GroupId, workload: GroupWorkload) -> int:
        """Replay a membership workload against the group; returns the
        number of events applied.

        Defensive replay: a join of a current member (or of the source)
        and a leave of a non-member are skipped rather than raised —
        workload generators overlap their initial member sets with churn
        arrivals by design.
        """
        hosted = self._hosted(gid)
        engine = hosted.engine
        applied = 0
        for event in workload:
            if event.action is GroupAction.JOIN:
                if event.node == engine.source or engine.tree.is_member(event.node):
                    continue
                engine.join(event.node)
            else:
                if not engine.tree.is_member(event.node):
                    continue
                engine.leave(event.node)
            applied += 1
        hosted.dirty = True
        self.obs.counter("controller.workload_events").inc(applied)
        return applied

    # ------------------------------------------------------------------
    # Failure dispatch
    # ------------------------------------------------------------------
    def _drop_from_index(self, gid: GroupId, hosted: _HostedGroup) -> None:
        for link in hosted.links:
            bucket = self._by_link.get(link)
            if bucket is not None:
                bucket.discard(gid)
        for node in hosted.nodes:
            bucket = self._by_node.get(node)
            if bucket is not None:
                bucket.discard(gid)

    def _refresh_index(self) -> None:
        for gid, hosted in self._groups.items():
            if not hosted.dirty:
                continue
            self._drop_from_index(gid, hosted)
            hosted.links = frozenset(hosted.engine.tree.tree_links())
            hosted.nodes = frozenset(hosted.engine.tree.on_tree_nodes())
            for link in hosted.links:
                self._by_link.setdefault(link, set()).add(gid)
            for node in hosted.nodes:
                self._by_node.setdefault(node, set()).add(gid)
            hosted.dirty = False

    def fail(self, failures: FailureSet) -> list[GroupId]:
        """Dispatch a failure event: one index pass finds every group
        whose tree it touches.  Returns the affected group ids (sorted)
        and arms :meth:`restore`.

        With ``batch_restoration`` on and a shared route cache present,
        the dispatch also buckets every affected session's disconnected
        members by ``(weight, failure set)`` and pre-computes their
        post-failure SPF state — one multi-root kernel run per bucket —
        so the armed :meth:`restore` repairs from warmed cache entries.
        """
        if failures.is_empty:
            self._pending = (failures, [])
            return []
        with self.obs.span("controller.fail"):
            self._refresh_index()
            candidates: set = set()
            for u, v in failures.iter_failed_links():
                candidates |= self._by_link.get(edge_key(u, v), set())
            for node in failures.iter_failed_nodes():
                candidates |= self._by_node.get(node, set())
            affected = sorted(
                gid
                for gid in candidates
                if self._groups[gid].engine.tree.affected_by(failures)
            )
        self._pending = (failures, affected)
        self._last_checked = len(candidates)
        self.obs.counter("controller.failures_dispatched").inc()
        self.obs.counter("controller.groups_affected").inc(len(affected))
        if affected:
            self._warm_restoration_routes(failures, affected)
        return affected

    def _warm_restoration_routes(self, failures: FailureSet, affected) -> None:
        """One multi-root SPF per ``(weight, failure)`` bucket of members.

        Every disconnected, still-alive member of every affected group
        will need its post-failure SPF state during repair (the engines'
        recovery paths all route ``weight="delay"`` lookups through the
        shared :class:`~repro.routing.route_cache.RouteCache`); warming
        those entries in one batched kernel run replaces one scalar run
        per member.  Purely a kernel-scheduling change: warmed entries
        are byte-identical, so the repairs and their
        :class:`GroupRestoration` rows never differ from the per-group
        path.  Skipped entirely when batching is off or no shared cache
        exists (engines then fall back to per-member scalar runs).
        """
        if not self.batch_restoration or self.cache is None:
            return
        routes = getattr(self.cache, "routes", None)
        if routes is None or not hasattr(routes, "warm_batch"):
            return
        with self.obs.span("controller.batch_warm"):
            # All engine recovery lookups share this dispatch's failure
            # set and route over delay, so today the bucketing yields a
            # single (weight, failures) bucket; the shape is kept
            # general for protocol families with per-group weights.
            buckets: dict[str, list] = {}
            seen: set = set()
            for gid in affected:
                tree = self._groups[gid].engine.tree
                for member in tree.disconnected_members(failures):
                    if member in seen or failures.node_failed(member):
                        continue
                    seen.add(member)
                    buckets.setdefault("delay", []).append(member)
            if not buckets:
                return
            self.obs.counter("controller.batch.buckets").inc(len(buckets))
            warmed = 0
            for weight, members in buckets.items():
                self.obs.counter("controller.batch.bucket_size").inc(len(members))
                warmed += routes.warm_batch(
                    self.topology,
                    members,
                    weight=weight,
                    failures=failures,
                    obs=self.obs,
                )
            self.obs.counter("controller.batch.warmed").inc(warmed)

    def restore(self, failures: FailureSet | None = None) -> FailureDispatch:
        """Repair every affected group in one pass.

        Uses the failure armed by the last :meth:`fail` call (or
        dispatches ``failures`` first when given).  Each group repairs
        through its own engine — local detours for SMRP, global SPF
        detours for the baseline — and contributes one
        :class:`GroupRestoration` row, in group-id order.
        """
        if failures is not None:
            self.fail(failures)
        if self._pending is None:
            raise ConfigurationError(
                "nothing to restore: call fail() first or pass failures"
            )
        failures, affected = self._pending
        self._pending = None
        rows = []
        with self.obs.span("controller.restore"):
            for gid in affected:
                rows.append(self._restore_group(gid, failures))
        dispatch = FailureDispatch(
            failure=failures.describe(),
            groups_hosted=len(self._groups),
            groups_checked=getattr(self, "_last_checked", len(affected)),
            rows=tuple(rows),
        )
        self.obs.counter("controller.members_restored").inc(dispatch.restored)
        return dispatch

    def _restore_group(self, gid: GroupId, failures: FailureSet) -> GroupRestoration:
        hosted = self._groups[gid]
        engine = hosted.engine
        cut = engine.tree.disconnected_members(failures)
        report = engine.repair(failures)
        latencies = [
            estimate_restoration_latency(
                self.topology,
                engine.tree,
                recovery,
                failures,
                convergence=self.convergence,
            )
            for recovery in report.recoveries
            if not recovery.already_connected
        ]
        distances = [
            r.recovery_distance
            for r in report.recoveries
            if not r.already_connected
        ]
        restored = len(distances)
        row = GroupRestoration(
            source=gid[0],
            group=gid[1],
            protocol=hosted.protocol,
            members=len(engine.tree.members),
            affected=len(cut),
            restored=restored,
            unrecoverable=len(report.unrecoverable),
            strategy=report.strategy,
            recovery_distance=round(
                sum(distances) / restored if restored else 0.0, 6
            ),
            latency_s=round(max(latencies, default=0.0), 6),
            mean_latency_s=round(
                sum(latencies) / len(latencies) if latencies else 0.0, 6
            ),
        )
        hosted.dirty = True
        self._restorations += 1
        if self.telemetry is not None:
            self.telemetry.publish(
                "group.restore",
                group=f"{gid[0]}:{gid[1]}",
                protocol=row.protocol,
                affected=row.affected,
                restored=row.restored,
                unrecoverable=row.unrecoverable,
                strategy=row.strategy,
                latency_s=row.latency_s,
            )
        return row

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def metrics(self) -> dict:
        """Point-in-time registry snapshot (plain values, render-friendly)."""
        return {
            "groups": len(self._groups),
            "members": sum(
                len(h.engine.tree.members) for h in self._groups.values()
            ),
            "indexed_links": sum(1 for b in self._by_link.values() if b),
            "indexed_nodes": sum(1 for b in self._by_node.values() if b),
            "restorations": self._restorations,
        }

    def __repr__(self) -> str:
        return (
            f"MulticastController(groups={len(self._groups)}, "
            f"protocol={self.protocol!r})"
        )
