"""Population generators for controller runs.

Turns a :class:`~repro.controller.spec.ServiceSpec` into the concrete
group population: which sources exist, which groups each hosts (Zipf
popularity — a few hot sources carry most groups), how big each group
starts (heavy-tailed sizes), and each group's membership workload
(static joins, Poisson churn, or a flash crowd), extending
:class:`~repro.multicast.group.GroupWorkload`.

Everything is a pure function of ``(spec, topology, group index)``.  In
particular each group draws from its own
``default_rng([member_seed, topology_seed, index])`` stream, so a group
generates identically whether it lands in a serial run, a process-pool
worker, or a resumed resilient shard — the property the byte-identical
sharding guarantee rests on.
"""

from __future__ import annotations

import numpy as np

from repro.controller.spec import ServiceSpec
from repro.graph.topology import NodeId, Topology
from repro.multicast.group import GroupAction, GroupEvent, GroupWorkload, random_member_set


def source_pool(spec: ServiceSpec, topology: Topology) -> list[NodeId]:
    """The run's source nodes, hottest first.

    Drawn once per spec (not per group) from a stream independent of the
    per-group streams; index 0 is the "hot" source that Zipf popularity
    favours and that ``failure="auto"`` targets.
    """
    rng = np.random.default_rng([spec.topology_seed, spec.member_seed, 7])
    nodes = topology.nodes()
    picked = rng.choice(len(nodes), size=spec.sources, replace=False)
    return [nodes[i] for i in picked]


def group_sources(spec: ServiceSpec, topology: Topology) -> list[NodeId]:
    """Source of every group index, Zipf-skewed toward the hot source.

    Deterministic proportional fill rather than sampling: source rank
    ``k`` gets weight ``1/(k+1)^source_skew`` and group ``g`` maps to the
    rank whose cumulative weight bracket contains ``(g + 0.5)/groups``.
    Group→source assignment is therefore exact, monotone in ``g``, and
    independent of sharding.
    """
    pool = source_pool(spec, topology)
    weights = np.array(
        [1.0 / (k + 1) ** spec.source_skew for k in range(len(pool))]
    )
    cumulative = np.cumsum(weights / weights.sum())
    positions = (np.arange(spec.groups) + 0.5) / spec.groups
    ranks = np.searchsorted(cumulative, positions)
    return [pool[int(rank)] for rank in ranks]


def build_workload(
    spec: ServiceSpec, topology: Topology, index: int, source: NodeId
) -> GroupWorkload:
    """Group ``index``'s membership events, from its private rng stream."""
    rng = np.random.default_rng([spec.member_seed, spec.topology_seed, index])
    size = int(
        min(spec.group_size_max, spec.group_size_min - 1 + rng.zipf(spec.size_skew))
    )
    members = random_member_set(topology, source, size, rng)
    if spec.workload == "static":
        return GroupWorkload.static_joins(members)
    if spec.workload == "poisson":
        return GroupWorkload.churn(
            topology,
            source,
            rng,
            duration=spec.churn_duration,
            mean_holding_time=spec.mean_holding_time,
            mean_interarrival=spec.mean_interarrival,
            initial_members=members,
        )
    return _flash_crowd(spec, topology, source, rng, members)


def _flash_crowd(
    spec: ServiceSpec,
    topology: Topology,
    source: NodeId,
    rng: np.random.Generator,
    members: list[NodeId],
) -> GroupWorkload:
    """A static base plus a simultaneous burst that partially drains.

    The crowd all joins at the *same* timestamp — the worst case for
    replay determinism, which is exactly why the workload layer sorts
    simultaneous events canonically — and odd-ranked crowd members leave
    again one holding time later.
    """
    workload = GroupWorkload.static_joins(members)
    outsiders = [
        n for n in topology.nodes() if n != source and n not in set(members)
    ]
    crowd_size = max(1, int(len(outsiders) * spec.flash_fraction))
    picked = rng.choice(len(outsiders), size=min(crowd_size, len(outsiders)), replace=False)
    burst = spec.churn_duration * 0.5
    crowd = [outsiders[i] for i in picked]
    for node in crowd:
        workload.add(GroupEvent(time=burst, node=node, action=GroupAction.JOIN))
    for rank, node in enumerate(crowd):
        if rank % 2 == 1:
            workload.add(
                GroupEvent(
                    time=burst + spec.mean_holding_time,
                    node=node,
                    action=GroupAction.LEAVE,
                )
            )
    return workload
