"""Multi-session service layer: thousands of groups, one topology.

The paper evaluates SMRP one tree at a time, but its hierarchical
recovery and reshaping machinery (§3.2.3, §3.3.3) is designed for a
*service*: many concurrent ``(source, group)`` multicast sessions
sharing one topology, hit by the same failures.  This package hosts
that service:

- :mod:`repro.controller.spec` — :class:`ServiceSpec`, the declarative,
  content-keyed description of a controller run (topology, group
  population, workload shape, failure), plus the deterministic failure
  resolver;
- :mod:`repro.controller.workload` — Zipf source popularity,
  heavy-tailed group sizes, and the per-group membership workload
  generators (static joins, Poisson churn, flash crowds) extending
  :class:`~repro.multicast.group.GroupWorkload`;
- :mod:`repro.controller.controller` — the long-lived
  :class:`MulticastController`: group registry, join/leave verbs, and
  one-pass failure dispatch with per-group restoration accounting;
- :mod:`repro.controller.service` — declarative runs:
  :class:`ServiceShard` work units that ride the standard executors
  (serial, process pool, resilient with checkpoint/resume) and
  :func:`run_service`, whose merged restoration table is byte-identical
  however the groups were sharded.
"""

from repro.controller.controller import (
    FailureDispatch,
    GroupRestoration,
    MulticastController,
)
from repro.controller.service import (
    ServiceReport,
    ServiceShard,
    ShardResult,
    run_service,
)
from repro.controller.spec import ServiceSpec, resolve_failure

__all__ = [
    "FailureDispatch",
    "GroupRestoration",
    "MulticastController",
    "ServiceReport",
    "ServiceShard",
    "ServiceSpec",
    "ShardResult",
    "resolve_failure",
    "run_service",
]
