"""Declarative controller runs over the standard executors.

A :class:`~repro.controller.spec.ServiceSpec` names a whole multi-group
run; this module executes it.  The spec's group range is cut into
:class:`ServiceShard` work units — consecutive ``[start, stop)`` slices
of ``spec.shard_size`` groups — which implement the execution layer's
work-unit protocol (``run(obs=..., cache=...)`` + ``content_key()`` +
``describe()``), so they ride every executor the scenario sweeps do:
serial, process pool, and the resilient executor with
checkpoint/resume (:class:`ShardResult` registers itself under the
``"service_shard"`` checkpoint type tag).

Because every per-group quantity is a pure function of
``(spec, group index)`` — sources, member sets, workloads, and the
failure all resolve from the spec and the shared topology — each shard
builds only *its* groups yet produces exactly the rows a serial run
would for those indices.  :func:`run_service` merges shard results in
shard order and the resulting :class:`ServiceReport` renders
byte-identically whether the run was serial, pooled, resilient, or
resumed from a checkpoint (the determinism suite asserts this; the CI
``controller-smoke`` job diffs the outputs for real).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from repro.controller.controller import GroupRestoration, MulticastController
from repro.controller.spec import ServiceSpec, resolve_failure
from repro.controller.workload import build_workload, group_sources
from repro.core.protocol import SMRPConfig
from repro.errors import CheckpointError
from repro.experiments.tables import format_table
from repro.obs import NULL_OBS

#: Bumped when :class:`ShardResult`'s serialised layout changes, so a
#: checkpoint written by one version is never misread by another.
SERVICE_PAYLOAD_VERSION = 1


@dataclass(frozen=True)
class ServiceShard:
    """Groups ``[start, stop)`` of one service spec, as a work unit."""

    spec: ServiceSpec
    start: int
    stop: int

    def __post_init__(self) -> None:
        if not 0 <= self.start < self.stop <= self.spec.groups:
            raise CheckpointError(
                f"shard [{self.start}, {self.stop}) is outside the spec's "
                f"{self.spec.groups} groups"
            )

    def content_key(self) -> str:
        canonical = json.dumps(
            {
                "kind": "service_shard",
                "spec": self.spec.to_dict(),
                "start": self.start,
                "stop": self.stop,
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]

    def describe(self) -> str:
        return (
            f"service shard groups [{self.start}, {self.stop}) of "
            f"{self.spec.describe()}"
        )

    def run(self, obs=None, cache=None) -> "ShardResult":
        """Host this shard's groups, inject the spec's failure, restore.

        ``cache`` is the executor-provided substrate cache: the topology
        comes from it (shared across shards landing on the same worker)
        and its route cache amortises SPF state across this shard's
        groups.  Workers never publish telemetry — ``group.restore``
        records are emitted parent-side after the merge, so every
        executor kind produces the identical record stream.
        """
        obs = obs if obs is not None else NULL_OBS
        spec = self.spec
        if cache is None:
            from repro.experiments.exec.cache import SubstrateCache

            cache = SubstrateCache()
        topology = cache.topology_for(spec, obs=obs)
        controller = MulticastController(
            topology,
            protocol=spec.protocol,
            smrp_config=SMRPConfig(
                d_thresh=spec.d_thresh,
                reshape_enabled=spec.reshape_enabled,
                self_check=False,
            ),
            protect_budget=spec.protect_budget,
            cache=cache,
            obs=obs,
        )
        sources = group_sources(spec, topology)
        events = 0
        with obs.span("service.shard"):
            for index in range(self.start, self.stop):
                gid = controller.open_group(sources[index], index)
                workload = build_workload(spec, topology, index, sources[index])
                events += controller.apply_workload(gid, workload)
            failures = resolve_failure(spec, topology)
            rows: tuple = ()
            failure_text = failures.describe()
            if not failures.is_empty:
                controller.fail(failures)
                rows = controller.restore().rows
        return ShardResult(
            spec_key=spec.content_key(),
            start=self.start,
            stop=self.stop,
            groups=self.stop - self.start,
            members=controller.metrics()["members"],
            events=events,
            failure=failure_text,
            rows=list(rows),
        )


@dataclass
class ShardResult:
    """One shard's outcome — plain data, checkpointable.

    ``rows`` holds a :class:`GroupRestoration` per *affected* group of
    the shard (unaffected groups contribute membership counts only).
    """

    #: Checkpoint type tag (see ``repro.experiments.exec.checkpoint``).
    checkpoint_type = "service_shard"

    spec_key: str
    start: int
    stop: int
    groups: int
    members: int
    events: int
    failure: str
    rows: list = field(default_factory=list)
    payload_version: int = SERVICE_PAYLOAD_VERSION

    def to_dict(self) -> dict:
        return {
            "payload_version": self.payload_version,
            "spec_key": self.spec_key,
            "start": self.start,
            "stop": self.stop,
            "groups": self.groups,
            "members": self.members,
            "events": self.events,
            "failure": self.failure,
            "rows": [row.to_dict() for row in self.rows],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ShardResult":
        version = payload.get("payload_version")
        if version != SERVICE_PAYLOAD_VERSION:
            raise CheckpointError(
                f"service shard payload version {version!r} is not "
                f"{SERVICE_PAYLOAD_VERSION}; refusing to reinterpret"
            )
        data = dict(payload)
        data["rows"] = [
            GroupRestoration.from_dict(row) for row in payload.get("rows", [])
        ]
        return cls(**data)


@dataclass(frozen=True)
class ServiceReport:
    """Merged outcome of a whole service run.

    :meth:`render_table` is the run's canonical text form.  It depends
    only on the spec and the merged rows — never on executor kind, job
    count, or shard placement — which is what the serial-vs-sharded
    byte-identity guarantee (and the CI diff) is asserted against.
    """

    spec: ServiceSpec
    failure: str
    groups: int
    members: int
    events: int
    shards: int
    rows: tuple

    @property
    def affected(self) -> int:
        return len(self.rows)

    @property
    def restored(self) -> int:
        return sum(row.restored for row in self.rows)

    @property
    def unrecoverable(self) -> int:
        return sum(row.unrecoverable for row in self.rows)

    def render_table(self) -> str:
        spec = self.spec
        lines = [
            f"service {spec.content_key()}",
            f"topology: waxman n={spec.n} alpha={spec.alpha:g} "
            f"beta={spec.beta:g} seed={spec.topology_seed}",
            f"population: {spec.groups} {spec.protocol} groups over "
            f"{spec.sources} sources (workload={spec.workload})",
            f"failure: {self.failure}",
            f"hosted: {self.groups} groups, {self.members} members, "
            f"{self.events} membership events, {self.shards} shards",
            "",
        ]
        if self.rows:
            table_rows = [
                (
                    f"{row.source}:{row.group}",
                    row.protocol,
                    str(row.members),
                    str(row.affected),
                    str(row.restored),
                    str(row.unrecoverable),
                    row.strategy,
                    f"{row.recovery_distance:.1f}",
                    f"{row.latency_s:.1f}",
                )
                for row in self.rows
            ]
            lines.append(
                format_table(
                    (
                        "group",
                        "proto",
                        "members",
                        "cut",
                        "restored",
                        "unrec",
                        "strategy",
                        "mean-RD",
                        "latency",
                    ),
                    table_rows,
                )
            )
            latencies = [row.latency_s for row in self.rows if row.restored]
            worst = max(latencies, default=0.0)
            lines.append("")
            lines.append(
                f"affected: {self.affected}/{self.groups} groups; "
                f"restored {self.restored} members "
                f"({self.unrecoverable} unrecoverable); "
                f"worst restoration latency {worst:.1f}"
            )
        else:
            lines.append("no groups affected")
        return "\n".join(lines)


def plan_shards(spec: ServiceSpec) -> list[ServiceShard]:
    """Cut the spec's group range into its shard work units.

    The partition depends only on ``spec.shard_size`` — never on the
    executor or job count — so shard content keys (and therefore
    checkpoint entries) survive re-runs with different ``--jobs``.
    """
    return [
        ServiceShard(spec, start, min(start + spec.shard_size, spec.groups))
        for start in range(0, spec.groups, spec.shard_size)
    ]


def run_service(
    spec: ServiceSpec,
    *,
    executor=None,
    jobs: int = 1,
    policy=None,
    telemetry=None,
    obs=None,
) -> ServiceReport:
    """Execute a service spec and merge its shards into one report.

    Executor selection follows the shared
    :func:`~repro.experiments.exec.executor.resolve_executor` rules.
    After the merge, one ``group.restore`` telemetry record per restored
    group is published on the executor's hub (if any) — parent-side and
    in group order, so the record stream is identical across executor
    kinds (pool workers have no live telemetry channel).
    """
    from repro.experiments.exec.executor import resolve_executor

    obs = obs if obs is not None else NULL_OBS
    executor, owned = resolve_executor(
        executor=executor, jobs=jobs, policy=policy, telemetry=telemetry
    )
    shards = plan_shards(spec)
    try:
        with obs.span("service.run"):
            results = executor.map_units(shards, obs=obs)
        hub = executor.telemetry
    finally:
        if owned:
            executor.close()
    rows: list[GroupRestoration] = []
    members = 0
    events = 0
    failure = "no failures"
    for result in results:
        rows.extend(result.rows)
        members += result.members
        events += result.events
        failure = result.failure
    if hub is not None:
        for row in rows:
            hub.publish(
                "group.restore",
                group=f"{row.source}:{row.group}",
                protocol=row.protocol,
                affected=row.affected,
                restored=row.restored,
                unrecoverable=row.unrecoverable,
                strategy=row.strategy,
                latency_s=row.latency_s,
            )
    return ServiceReport(
        spec=spec,
        failure=failure,
        groups=spec.groups,
        members=members,
        events=events,
        shards=len(shards),
        rows=tuple(rows),
    )
