"""Machine-readable export of experiment results.

The figure drivers return structured results; this module serializes
them — CSV for plotting elsewhere, JSON for archival, and a Markdown
section per figure in the EXPERIMENTS.md style — so a downstream user
can regenerate the full evaluation record::

    from repro.experiments.fig8 import run_figure8
    from repro.experiments.report import sweep_to_csv
    csv_text = sweep_to_csv("D_thresh", run_figure8().points)
"""

from __future__ import annotations

import csv
import io
import json
from typing import Sequence

from repro.experiments.fig7 import Figure7Result
from repro.experiments.sweeps import SweepPoint
from repro.experiments.tables import format_summary


def sweep_to_csv(parameter_name: str, points: Sequence[SweepPoint]) -> str:
    """One CSV row per sweep point, with means and 95% CI bounds."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(
        [
            parameter_name,
            "n",
            "rd_relative_mean",
            "rd_relative_ci_low",
            "rd_relative_ci_high",
            "delay_relative_mean",
            "delay_relative_ci_low",
            "delay_relative_ci_high",
            "cost_relative_mean",
            "cost_relative_ci_low",
            "cost_relative_ci_high",
            "avg_degree",
        ]
    )
    for point in points:
        rd = point.rd_relative
        delay = point.delay_relative
        cost = point.cost_relative
        writer.writerow(
            [
                point.parameter,
                rd.n,
                f"{rd.mean:.6f}",
                f"{rd.ci_low:.6f}",
                f"{rd.ci_high:.6f}",
                f"{delay.mean:.6f}",
                f"{delay.ci_low:.6f}",
                f"{delay.ci_high:.6f}",
                f"{cost.mean:.6f}",
                f"{cost.ci_low:.6f}",
                f"{cost.ci_high:.6f}",
                f"{point.average_degree:.4f}",
            ]
        )
    return buffer.getvalue()


def scatter_to_csv(result: Figure7Result) -> str:
    """Figure 7's scatter: one row per (topology, member) point."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["topology_seed", "member", "rd_global", "rd_local"])
    for point in result.points:
        writer.writerow(
            [
                point.topology_seed,
                point.member,
                f"{point.rd_global:.6f}",
                f"{point.rd_local:.6f}",
            ]
        )
    return buffer.getvalue()


def sweep_to_json(parameter_name: str, points: Sequence[SweepPoint]) -> str:
    """Nested JSON record of a sweep, including scenario counts."""
    payload = {
        "parameter": parameter_name,
        "points": [
            {
                "value": point.parameter,
                "scenarios": len(point.scenarios),
                "avg_degree": point.average_degree,
                "rd_relative": _summary_dict(point.rd_relative),
                "delay_relative": _summary_dict(point.delay_relative),
                "cost_relative": _summary_dict(point.cost_relative),
                "unrecoverable_members": point.unrecoverable_members,
            }
            for point in points
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def sweep_to_markdown(
    title: str, parameter_name: str, points: Sequence[SweepPoint]
) -> str:
    """A Markdown table in the EXPERIMENTS.md house style."""
    lines = [
        f"## {title}",
        "",
        f"| {parameter_name} | RD_relative | D_relative | Cost_relative |",
        "|---|---|---|---|",
    ]
    for point in points:
        lines.append(
            f"| {point.label} | {format_summary(point.rd_relative)} | "
            f"{format_summary(point.delay_relative)} | "
            f"{format_summary(point.cost_relative)} |"
        )
    return "\n".join(lines)


def _summary_dict(summary) -> dict:
    return {
        "n": summary.n,
        "mean": summary.mean,
        "std": summary.std,
        "ci_low": summary.ci_low,
        "ci_high": summary.ci_high,
    }
