"""Worker-process entry points for the parallel executor.

Everything here must be importable by name in a fresh interpreter (the
``ProcessPoolExecutor`` contract): the task function is a module-level
callable, its payload and return value are plain picklable values.

A work unit travels as ``(unit, capture_obs, telemetry, trace)`` and
comes back as ``(result, worker run-report | None, telemetry records)``.
A unit is either a :class:`~repro.experiments.scenario.ScenarioConfig`
(executed via :func:`~repro.experiments.runner.run_scenario`) or any
object with a ``run(obs=..., cache=...)`` method — the seam that lets
the controller's service shards ride the same executors as scenario
sweeps (:func:`execute_unit` dispatches).  The worker runs each unit
against the per-process substrate cache
(:func:`~repro.experiments.exec.cache.process_cache`), so units landing
on the same worker share generated topologies and SPF state.
When observability capture is on, each task records into a fresh
:class:`~repro.obs.Observability` and ships back its run report; the
parent merges reports in seed order (:mod:`repro.obs.merge`), keeping the
combined report deterministic regardless of completion order.  When
restoration tracing is on (``trace``), the worker additionally attaches
a fresh :class:`~repro.obs.tracing.RestorationTracer`; its episodes
ride back inside the run report's ``tracing`` section, and the parent's
merge (:func:`~repro.obs.merge.merge_report_into`) absorbs them —
episode ids are seeded from each scenario's content key, so the merged
episode set is identical to a serial run's regardless of worker
placement.  When telemetry is on, the worker stamps ``scenario.start``
/ ``scenario.finish`` lifecycle records (wall-clock time, pid,
duration, the scenario content key) that ride back on the same result
channel for the parent's :class:`~repro.obs.live.TelemetryHub`.

Two entry points:

- :func:`run_unit_task` — the pool task of the
  :class:`~repro.experiments.exec.executor.ParallelExecutor`; its result
  tuple is the only channel back, so lifecycle records are delivered
  with the result (a pool worker has no side channel for mid-scenario
  heartbeats — that is the resilient executor's dedicated-pipe
  privilege);
- :func:`resilient_worker_main` — the process main of one
  :class:`~repro.experiments.exec.resilience.ResilientExecutor` attempt,
  speaking the multi-message pipe protocol described there: a ``ready``
  handshake, periodic ``telemetry`` heartbeats from a sampler thread
  (each carrying the live span-stack snapshot, which is what makes hang
  attribution possible), then exactly one final ``ok``/``error``
  message (and honouring the executor's injected test faults).
"""

from __future__ import annotations

import os
import threading
import time
import traceback
from time import perf_counter

from repro.errors import ExecutionError
from repro.experiments.runner import run_scenario
from repro.experiments.scenario import ScenarioConfig
from repro.experiments.exec.cache import process_cache

#: Fault kinds the resilient executor may inject for testing: die without
#: a word, never answer, or raise a transient in-scenario error.
FAULT_KINDS = ("crash", "hang", "error")

#: How long a "hang" fault sleeps — effectively forever next to any
#: realistic per-scenario timeout; the parent kills the process long
#: before this elapses.
_HANG_SECONDS = 3600.0

#: Span the injected "hang" fault sleeps under, so heartbeat snapshots
#: (and therefore the timeout record's hang attribution) have a concrete
#: location to report — exactly what a real wedged code path would show.
HANG_SPAN = "fault.injected_hang"


def execute_unit(unit, obs=None, cache=None):
    """Run one work unit and return its result.

    The dispatch seam of the execution layer: a
    :class:`~repro.experiments.scenario.ScenarioConfig` runs through
    :func:`~repro.experiments.runner.run_scenario`; anything else must
    provide ``run(obs=..., cache=...)`` (plus ``content_key()`` and
    ``describe()`` for scheduling and checkpointing) — the protocol the
    controller's service shards implement.
    """
    if isinstance(unit, ScenarioConfig):
        return run_scenario(unit, obs=obs, cache=cache)
    run = getattr(unit, "run", None)
    if run is None:
        raise ExecutionError(
            f"work unit {unit!r} is neither a ScenarioConfig nor provides "
            f"a run(obs=..., cache=...) method"
        )
    return run(obs=obs, cache=cache)


def run_unit_task(task: tuple) -> tuple:
    """Execute one work unit inside a pool worker process."""
    config, capture_obs, telemetry, trace = task
    records: list[dict] = []
    key = config.content_key()
    if telemetry:
        records.append(
            {"kind": "scenario.start", "t": round(time.time(), 6),
             "pid": os.getpid(), "key": key}
        )
    started = perf_counter()
    if capture_obs or trace:
        from repro.obs import Observability, build_run_report

        obs = Observability(enabled=capture_obs)
        if trace:
            from repro.obs.tracing import RestorationTracer

            obs.tracer = RestorationTracer()
        result = execute_unit(config, obs=obs, cache=process_cache())
        report = build_run_report(obs)
    else:
        result = execute_unit(config, cache=process_cache())
        report = None
    if telemetry:
        records.append(
            {"kind": "scenario.finish", "t": round(time.time(), 6),
             "pid": os.getpid(), "key": key,
             "duration_s": round(perf_counter() - started, 6)}
        )
    return result, report, records


#: Backwards-compatible name from when scenarios were the only unit kind.
run_scenario_task = run_unit_task


class _HeartbeatSampler(threading.Thread):
    """Worker-side heartbeat thread: periodically ships the live
    span-stack snapshot up the result pipe.

    Runs as a daemon so a wedged scenario cannot be kept alive by its
    own monitor; sends go through the worker's pipe lock so heartbeats
    never interleave with the final result message.
    """

    def __init__(self, send, profiler, interval: float) -> None:
        super().__init__(name="repro-heartbeat", daemon=True)
        self._send = send
        self._profiler = profiler
        self._interval = interval
        self.stop = threading.Event()

    def run(self) -> None:
        started = time.monotonic()
        while not self.stop.wait(self._interval):
            record = {
                "kind": "heartbeat",
                "t": round(time.time(), 6),
                "pid": os.getpid(),
                "spans": self._profiler.stack_snapshot(),
                "elapsed_s": round(time.monotonic() - started, 3),
            }
            try:
                self._send(("telemetry", record))
            except (OSError, ValueError, BrokenPipeError):
                return  # parent gone; nothing left to report to


def resilient_worker_main(
    conn,
    unit,
    capture_obs: bool,
    fault: str | None = None,
    heartbeat_interval: float | None = None,
    trace: bool = False,
) -> None:
    """Process main of one resilient work-unit attempt.

    The worker first sends a ``("ready",)`` handshake — the parent
    restarts the per-attempt wall-clock deadline on it, so interpreter
    startup and imports (which on spawn/forkserver platforms can rival a
    tight :attr:`~repro.experiments.exec.resilience.ExecPolicy.timeout`)
    do not count against the scenario.  When ``heartbeat_interval`` is
    set, a sampler thread then emits ``("telemetry", record)`` heartbeat
    messages every interval, each carrying the scenario's currently open
    span names — the parent keeps the latest one per attempt and attaches
    it to the timeout record if it has to kill this worker (hang
    attribution).  Exactly one *final* message follows:

    - ``("ok", ScenarioResult, run-report | None)`` on success;
    - ``("error", summary, traceback)`` when the scenario raised — a
      *transient* failure the parent may retry.

    A worker that dies without sending a final message (a real crash, an
    OOM kill, or the injected ``"crash"`` fault) is detected by the
    parent through the process sentinel; one that never answers
    (``"hang"``) is terminated at the policy's wall-clock timeout.
    ``fault`` is the executor's test-injection hook and does nothing in
    production runs.  ``trace`` attaches a restoration tracer; its
    episodes ship back inside the run report's ``tracing`` section (the
    report then ships even when ``capture_obs`` is off).
    """
    send_lock = threading.Lock()

    def send(message):
        with send_lock:
            conn.send(message)

    sampler = None
    try:
        send(("ready",))
        from repro.obs import Observability, build_run_report

        # Spans must be live whenever heartbeats are on — the snapshot
        # is the heartbeat's payload — even if no run report ships back.
        obs = Observability(
            enabled=capture_obs or heartbeat_interval is not None
        )
        if trace:
            from repro.obs.tracing import RestorationTracer

            obs.tracer = RestorationTracer()
        if heartbeat_interval is not None:
            sampler = _HeartbeatSampler(send, obs.spans, heartbeat_interval)
            sampler.start()
        if fault == "crash":
            os._exit(86)  # die wordlessly, as a segfaulted worker would
        if fault == "hang":
            with obs.span(HANG_SPAN):
                time.sleep(_HANG_SECONDS)
        if fault == "error":
            raise RuntimeError("injected transient error")
        result = execute_unit(unit, obs=obs, cache=process_cache())
        report = (
            build_run_report(obs) if (capture_obs or trace) else None
        )
        send(("ok", result, report))
    except (KeyboardInterrupt, SystemExit):
        # An interrupt (e.g. Ctrl-C hitting the whole process group) is
        # the parent unwinding, not a transient scenario failure: saying
        # nothing lets the parent's own shutdown see a plain dead worker
        # instead of burning retries on attempts that will be interrupted
        # again.
        raise
    except BaseException as exc:  # noqa: BLE001 - the pipe is the error channel
        try:
            send(
                ("error", f"{type(exc).__name__}: {exc}", traceback.format_exc())
            )
        except OSError:
            pass  # parent already gone; exiting is all that is left
    finally:
        if sampler is not None:
            sampler.stop.set()
            sampler.join(timeout=2.0)
        try:
            conn.close()
        except OSError:
            pass
