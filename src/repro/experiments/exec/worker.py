"""Worker-process entry points for the parallel executor.

Everything here must be importable by name in a fresh interpreter (the
``ProcessPoolExecutor`` contract): the task function is a module-level
callable, its payload and return value are plain picklable values.

A scenario work unit travels as ``(ScenarioConfig, capture_obs)`` and
comes back as ``(ScenarioResult, worker run-report | None)``.  The worker
runs each scenario against the per-process substrate cache
(:func:`~repro.experiments.exec.cache.process_cache`), so scenarios
landing on the same worker share generated topologies and SPF state.
When observability capture is on, each task records into a fresh
:class:`~repro.obs.Observability` and ships back its run report; the
parent merges reports in seed order (:mod:`repro.obs.merge`), keeping the
combined report deterministic regardless of completion order.
"""

from __future__ import annotations

from repro.experiments.runner import ScenarioResult, run_scenario
from repro.experiments.scenario import ScenarioConfig
from repro.experiments.exec.cache import process_cache


def run_scenario_task(
    task: tuple[ScenarioConfig, bool],
) -> tuple[ScenarioResult, dict | None]:
    """Execute one scenario work unit inside a worker process."""
    config, capture_obs = task
    if capture_obs:
        from repro.obs import Observability, build_run_report

        obs = Observability()
        result = run_scenario(config, obs=obs, cache=process_cache())
        return result, build_run_report(obs)
    result = run_scenario(config, cache=process_cache())
    return result, None
