"""Worker-process entry points for the parallel executor.

Everything here must be importable by name in a fresh interpreter (the
``ProcessPoolExecutor`` contract): the task function is a module-level
callable, its payload and return value are plain picklable values.

A scenario work unit travels as ``(ScenarioConfig, capture_obs)`` and
comes back as ``(ScenarioResult, worker run-report | None)``.  The worker
runs each scenario against the per-process substrate cache
(:func:`~repro.experiments.exec.cache.process_cache`), so scenarios
landing on the same worker share generated topologies and SPF state.
When observability capture is on, each task records into a fresh
:class:`~repro.obs.Observability` and ships back its run report; the
parent merges reports in seed order (:mod:`repro.obs.merge`), keeping the
combined report deterministic regardless of completion order.

Two entry points:

- :func:`run_scenario_task` — the pool task of the
  :class:`~repro.experiments.exec.executor.ParallelExecutor`;
- :func:`resilient_worker_main` — the process main of one
  :class:`~repro.experiments.exec.resilience.ResilientExecutor` attempt,
  speaking the one-message pipe protocol described there (and honouring
  the executor's injected test faults).
"""

from __future__ import annotations

import os
import time
import traceback

from repro.experiments.runner import ScenarioResult, run_scenario
from repro.experiments.scenario import ScenarioConfig
from repro.experiments.exec.cache import process_cache

#: Fault kinds the resilient executor may inject for testing: die without
#: a word, never answer, or raise a transient in-scenario error.
FAULT_KINDS = ("crash", "hang", "error")

#: How long a "hang" fault sleeps — effectively forever next to any
#: realistic per-scenario timeout; the parent kills the process long
#: before this elapses.
_HANG_SECONDS = 3600.0


def run_scenario_task(
    task: tuple[ScenarioConfig, bool],
) -> tuple[ScenarioResult, dict | None]:
    """Execute one scenario work unit inside a worker process."""
    config, capture_obs = task
    if capture_obs:
        from repro.obs import Observability, build_run_report

        obs = Observability()
        result = run_scenario(config, obs=obs, cache=process_cache())
        return result, build_run_report(obs)
    result = run_scenario(config, cache=process_cache())
    return result, None


def resilient_worker_main(
    conn,
    config: ScenarioConfig,
    capture_obs: bool,
    fault: str | None = None,
) -> None:
    """Process main of one resilient scenario attempt.

    The worker first sends a ``("ready",)`` handshake — the parent
    restarts the per-attempt wall-clock deadline on it, so interpreter
    startup and imports (which on spawn/forkserver platforms can rival a
    tight :attr:`~repro.experiments.exec.resilience.ExecPolicy.timeout`)
    do not count against the scenario.  Exactly one *final* message then
    follows:

    - ``("ok", ScenarioResult, run-report | None)`` on success;
    - ``("error", summary, traceback)`` when the scenario raised — a
      *transient* failure the parent may retry.

    A worker that dies without sending a final message (a real crash, an
    OOM kill, or the injected ``"crash"`` fault) is detected by the
    parent through the process sentinel; one that never answers
    (``"hang"``) is terminated at the policy's wall-clock timeout.
    ``fault`` is the executor's test-injection hook and does nothing in
    production runs.
    """
    try:
        conn.send(("ready",))
        if fault == "crash":
            os._exit(86)  # die wordlessly, as a segfaulted worker would
        if fault == "hang":
            time.sleep(_HANG_SECONDS)
        if fault == "error":
            raise RuntimeError("injected transient error")
        result, report = run_scenario_task((config, capture_obs))
        conn.send(("ok", result, report))
    except (KeyboardInterrupt, SystemExit):
        # An interrupt (e.g. Ctrl-C hitting the whole process group) is
        # the parent unwinding, not a transient scenario failure: saying
        # nothing lets the parent's own shutdown see a plain dead worker
        # instead of burning retries on attempts that will be interrupted
        # again.
        raise
    except BaseException as exc:  # noqa: BLE001 - the pipe is the error channel
        try:
            conn.send(
                ("error", f"{type(exc).__name__}: {exc}", traceback.format_exc())
            )
        except OSError:
            pass  # parent already gone; exiting is all that is left
    finally:
        try:
            conn.close()
        except OSError:
            pass
