"""Execution engine: declarative specs, executors, and substrate caching.

The pieces and how they fit:

- :class:`ExperimentSpec` (``spec``) — frozen, hashable, JSON-serializable
  description of a whole sweep;
- :class:`Executor` / :class:`SerialExecutor` / :class:`ParallelExecutor`
  (``executor``) — how scenario work units run (in-process or over a
  ``ProcessPoolExecutor``), with deterministic seed-order merging;
- :class:`SubstrateCache` (``cache``) — content-keyed topology + SPF
  route caches shared per executor / per worker process;
- :class:`ResilientExecutor` / :class:`ExecPolicy` (``resilience``) — the
  fault-tolerant backend: per-scenario timeouts, bounded retry with
  backoff, crash isolation, and checkpoint/resume through a
  :class:`CheckpointStore` (``checkpoint``);
- ``worker`` — the picklable worker-process entry points, which also
  emit lifecycle records and heartbeats for an attached
  :class:`~repro.obs.live.TelemetryHub` (observe-only live progress,
  flight recording, and hang attribution).

``make_executor(kind, jobs, policy, telemetry)`` is the CLI-facing
factory.  The public API is also re-exported at :mod:`repro.api`.
"""

from repro.experiments.exec.cache import SubstrateCache, process_cache
from repro.experiments.exec.checkpoint import CheckpointStore
from repro.experiments.exec.executor import (
    EXECUTOR_KINDS,
    Executor,
    ParallelExecutor,
    SerialExecutor,
    make_executor,
)
from repro.experiments.exec.resilience import ExecPolicy, ResilientExecutor
from repro.experiments.exec.spec import SWEEPABLE_PARAMETERS, ExperimentSpec

__all__ = [
    "CheckpointStore",
    "EXECUTOR_KINDS",
    "ExecPolicy",
    "Executor",
    "ExperimentSpec",
    "ParallelExecutor",
    "ResilientExecutor",
    "SWEEPABLE_PARAMETERS",
    "SerialExecutor",
    "SubstrateCache",
    "make_executor",
    "process_cache",
]
