"""The substrate cache: generated topologies + failure-free SPF state.

One :class:`SubstrateCache` bundles the two content-keyed caches the
scenario runner consults (:class:`~repro.graph.cache.TopologyCache` and
:class:`~repro.routing.route_cache.RouteCache`) behind a single handle:

- the :class:`~repro.experiments.exec.executor.SerialExecutor` owns one
  for its lifetime, so repeated sweep points share substrate state;
- each worker process of the
  :class:`~repro.experiments.exec.executor.ParallelExecutor` keeps a
  process-global instance (:func:`process_cache`), so scenarios dispatched
  to the same worker share it.

Cache reuse never changes results: topologies are deterministic functions
of their config, and cached SPF state is exactly what Dijkstra would
recompute (the determinism suite in ``tests/experiments/test_exec.py``
asserts both).  Hit/miss/eviction counters appear in run reports under
``cache.topology.*`` and ``cache.routes.*``.
"""

from __future__ import annotations

from repro.graph.cache import DEFAULT_MAX_TOPOLOGIES, TopologyCache
from repro.graph.topology import Topology
from repro.routing.route_cache import DEFAULT_MAX_ROUTES, RouteCache


class SubstrateCache:
    """Shared per-executor (or per-worker-process) substrate state."""

    def __init__(
        self,
        max_topologies: int = DEFAULT_MAX_TOPOLOGIES,
        max_routes: int = DEFAULT_MAX_ROUTES,
    ) -> None:
        self.topologies = TopologyCache(max_entries=max_topologies)
        self.routes = RouteCache(max_entries=max_routes)

    def topology_for(self, config, obs=None) -> Topology:
        """The (shared, treat-as-immutable) topology of a
        :class:`~repro.experiments.scenario.ScenarioConfig`."""
        return self.topologies.get(config.waxman_config(), obs=obs)

    @property
    def stats(self) -> dict[str, dict[str, int]]:
        return {
            "topologies": self.topologies.stats,
            "routes": self.routes.stats,
        }

    def clear(self) -> None:
        self.topologies.clear()
        self.routes.clear()

    def __repr__(self) -> str:
        return f"SubstrateCache(topologies={self.topologies!r}, routes={self.routes!r})"


_PROCESS_CACHE: SubstrateCache | None = None


def process_cache() -> SubstrateCache:
    """The per-process substrate cache (created on first use).

    Worker processes call this so consecutive scenarios dispatched to the
    same worker reuse topologies and routes; the parent process's instance
    is independent (and a forked child starts from whatever the parent had
    built, which is equally valid — entries are content-keyed).
    """
    global _PROCESS_CACHE
    if _PROCESS_CACHE is None:
        _PROCESS_CACHE = SubstrateCache()
    return _PROCESS_CACHE
