"""Content-keyed checkpoint store for completed scenario work units.

A :class:`CheckpointStore` persists every completed
:class:`~repro.experiments.runner.ScenarioResult` as one JSONL record in
``<directory>/results.jsonl``, keyed by
:meth:`ScenarioConfig.content_key
<repro.experiments.scenario.ScenarioConfig.content_key>` (the same
SHA-256-of-canonical-JSON construction as
``ExperimentSpec.content_key``).  Because keys are content identities —
not positions in a particular sweep — a store can be shared across
batches, figures, and interrupted runs: any later sweep that contains the
same ``(spec, seed)`` work unit resumes from the stored result instead of
recomputing it.

Durability model: records are appended and flushed line-by-line, so a
crash loses at most the line being written; :meth:`load` *truncates* a
torn trailing record back to the last complete line (and rejects
corruption anywhere earlier, which indicates real damage rather than an
interrupted write), so the first append after a resume starts on a fresh
line instead of gluing onto the partial one.  Results round-trip
exactly — JSON encodes doubles losslessly — so a resumed sweep's merged
tables are byte-identical to an uninterrupted run's.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.errors import CheckpointError
from repro.experiments.runner import ScenarioResult

#: Store layout version; a mismatching store is rejected, not guessed at.
STORE_VERSION = 1

#: The single append-only record file inside a checkpoint directory.
RESULTS_FILENAME = "results.jsonl"


class CheckpointStore:
    """Append-only, content-keyed store of completed scenario results."""

    def __init__(self, directory: str | os.PathLike) -> None:
        self.directory = Path(directory)
        self.path = self.directory / RESULTS_FILENAME
        self._index: dict[str, ScenarioResult] = {}
        self._writer = None
        self.directory.mkdir(parents=True, exist_ok=True)
        self.load()

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def load(self) -> int:
        """(Re)build the in-memory index from disk; returns entry count.

        The last line may be torn (a run interrupted mid-append); it is
        skipped *and the file is truncated back to the last complete
        record*, so a later :meth:`put` appends a fresh line rather than
        gluing onto the partial one (which would corrupt both records).
        A malformed record anywhere *before* the final line raises
        :class:`~repro.errors.CheckpointError` — that is corruption, not
        an interrupted write.
        """
        self._index.clear()
        if not self.path.exists():
            return 0
        with self.path.open("rb") as fh:
            data = fh.read()
        raw_lines = data.splitlines(keepends=True)
        good_end = 0  # byte offset just past the last intact record line
        torn = False
        offset = 0
        for lineno, raw in enumerate(raw_lines, start=1):
            end = offset + len(raw)
            last = lineno == len(raw_lines)
            try:
                line = raw.decode("utf-8").strip()
            except UnicodeDecodeError as exc:
                if last:
                    torn = True
                    break
                raise CheckpointError(
                    f"{self.path}:{lineno}: corrupt checkpoint record: {exc}"
                ) from exc
            if not line:
                offset = good_end = end
                continue
            try:
                record = json.loads(line)
                if record.get("store_version") != STORE_VERSION:
                    raise CheckpointError(
                        f"{self.path}: unsupported store version "
                        f"{record.get('store_version')!r}"
                    )
                key = record["key"]
                result = ScenarioResult.from_dict(record["result"])
            except CheckpointError:
                raise
            except (json.JSONDecodeError, KeyError, TypeError) as exc:
                if last:
                    torn = True
                    break  # torn trailing record from an interrupted run
                raise CheckpointError(
                    f"{self.path}:{lineno}: corrupt checkpoint record: {exc}"
                ) from exc
            self._index[key] = result
            offset = good_end = end
        if torn:
            with self.path.open("r+b") as fh:
                fh.truncate(good_end)
        elif data and not data.endswith(b"\n"):
            # Intact final record whose newline never made it to disk:
            # complete the line so the next append starts fresh.
            with self.path.open("ab") as fh:
                fh.write(b"\n")
        return len(self._index)

    def get(self, key: str) -> ScenarioResult | None:
        return self._index.get(key)

    def __contains__(self, key: str) -> bool:
        return key in self._index

    def __len__(self) -> int:
        return len(self._index)

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def put(self, key: str, result: ScenarioResult) -> bool:
        """Persist one completed result; returns False when already stored
        (content keys make duplicate completions a no-op, e.g. the same
        scenario appearing in two overlapping sweeps)."""
        if key in self._index:
            return False
        record = {
            "store_version": STORE_VERSION,
            "key": key,
            "config": result.config.describe(),
            "result": result.to_dict(),
        }
        if self._writer is None:
            self._writer = self.path.open("a", encoding="utf-8")
        self._writer.write(
            json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
        )
        self._writer.flush()
        self._index[key] = result
        return True

    def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            self._writer = None

    def __enter__(self) -> "CheckpointStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"CheckpointStore({str(self.directory)!r}, entries={len(self)})"
