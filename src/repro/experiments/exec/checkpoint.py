"""Content-keyed checkpoint store for completed work units.

A :class:`CheckpointStore` persists every completed work-unit result as
one JSONL record in ``<directory>/results.jsonl``, keyed by the unit's
``content_key()`` (the SHA-256-of-canonical-JSON construction shared by
``ScenarioConfig``, ``ExperimentSpec``, and the controller's service
shards).  Because keys are content identities — not positions in a
particular sweep — a store can be shared across batches, figures, and
interrupted runs: any later sweep that contains the same ``(spec, seed)``
work unit resumes from the stored result instead of recomputing it.

Records carry a ``type`` tag naming the payload class (``"scenario"``
for :class:`~repro.experiments.runner.ScenarioResult` — also the implied
type of tag-less records from older stores — and ``"service_shard"`` for
:class:`~repro.controller.service.ShardResult`), so one store format
serves every work-unit kind without guessing at payload shapes.

Durability model: records are appended and flushed line-by-line, so a
crash loses at most the line being written; :meth:`load` *truncates* a
torn trailing record back to the last complete line (and rejects
corruption anywhere earlier, which indicates real damage rather than an
interrupted write), so the first append after a resume starts on a fresh
line instead of gluing onto the partial one.  Results round-trip
exactly — JSON encodes doubles losslessly — so a resumed sweep's merged
tables are byte-identical to an uninterrupted run's.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.errors import CheckpointError
from repro.experiments.runner import ScenarioResult

#: Store layout version; a mismatching store is rejected, not guessed at.
STORE_VERSION = 1

#: The single append-only record file inside a checkpoint directory.
RESULTS_FILENAME = "results.jsonl"

#: Payload type tag -> (module, class) able to ``from_dict`` the record.
#: Lazy import paths keep the store free of a dependency on every result
#: kind it can hold (the controller package imports this module).
RESULT_TYPES = {
    "scenario": ("repro.experiments.runner", "ScenarioResult"),
    "service_shard": ("repro.controller.service", "ShardResult"),
    "protection_point": ("repro.experiments.figprotect", "ProtectionPointResult"),
}


def _result_class(type_name: str):
    try:
        module_name, attr = RESULT_TYPES[type_name]
    except KeyError:
        raise CheckpointError(
            f"unknown checkpoint payload type {type_name!r}; "
            f"expected one of {sorted(RESULT_TYPES)}"
        ) from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)


def _type_of(result) -> str:
    if isinstance(result, ScenarioResult):
        return "scenario"
    type_name = getattr(result, "checkpoint_type", None)
    if type_name is None or type_name not in RESULT_TYPES:
        raise CheckpointError(
            f"result {type(result).__name__} declares no registered "
            f"checkpoint_type; expected one of {sorted(RESULT_TYPES)}"
        )
    return type_name


class CheckpointStore:
    """Append-only, content-keyed store of completed scenario results."""

    def __init__(self, directory: str | os.PathLike) -> None:
        self.directory = Path(directory)
        self.path = self.directory / RESULTS_FILENAME
        self._index: dict[str, object] = {}
        self._writer = None
        self.directory.mkdir(parents=True, exist_ok=True)
        self.load()

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def load(self) -> int:
        """(Re)build the in-memory index from disk; returns entry count.

        The last line may be torn (a run interrupted mid-append); it is
        skipped *and the file is truncated back to the last complete
        record*, so a later :meth:`put` appends a fresh line rather than
        gluing onto the partial one (which would corrupt both records).
        A malformed record anywhere *before* the final line raises
        :class:`~repro.errors.CheckpointError` — that is corruption, not
        an interrupted write.
        """
        self._index.clear()
        if not self.path.exists():
            return 0
        with self.path.open("rb") as fh:
            data = fh.read()
        raw_lines = data.splitlines(keepends=True)
        good_end = 0  # byte offset just past the last intact record line
        torn = False
        offset = 0
        for lineno, raw in enumerate(raw_lines, start=1):
            end = offset + len(raw)
            last = lineno == len(raw_lines)
            try:
                line = raw.decode("utf-8").strip()
            except UnicodeDecodeError as exc:
                if last:
                    torn = True
                    break
                raise CheckpointError(
                    f"{self.path}:{lineno}: corrupt checkpoint record: {exc}"
                ) from exc
            if not line:
                offset = good_end = end
                continue
            try:
                record = json.loads(line)
                if record.get("store_version") != STORE_VERSION:
                    raise CheckpointError(
                        f"{self.path}: unsupported store version "
                        f"{record.get('store_version')!r}"
                    )
                key = record["key"]
                payload_cls = _result_class(record.get("type", "scenario"))
                result = payload_cls.from_dict(record["result"])
            except CheckpointError:
                raise
            except (json.JSONDecodeError, KeyError, TypeError) as exc:
                if last:
                    torn = True
                    break  # torn trailing record from an interrupted run
                raise CheckpointError(
                    f"{self.path}:{lineno}: corrupt checkpoint record: {exc}"
                ) from exc
            self._index[key] = result
            offset = good_end = end
        if torn:
            with self.path.open("r+b") as fh:
                fh.truncate(good_end)
        elif data and not data.endswith(b"\n"):
            # Intact final record whose newline never made it to disk:
            # complete the line so the next append starts fresh.
            with self.path.open("ab") as fh:
                fh.write(b"\n")
        return len(self._index)

    def get(self, key: str):
        return self._index.get(key)

    def __contains__(self, key: str) -> bool:
        return key in self._index

    def __len__(self) -> int:
        return len(self._index)

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def put(self, key: str, result, describe: str | None = None) -> bool:
        """Persist one completed result; returns False when already stored
        (content keys make duplicate completions a no-op, e.g. the same
        scenario appearing in two overlapping sweeps).  ``describe`` is a
        human-readable provenance string stored alongside the payload; it
        defaults to the scenario's config description when available."""
        if key in self._index:
            return False
        if describe is None:
            config = getattr(result, "config", None)
            describe = config.describe() if config is not None else ""
        record = {
            "store_version": STORE_VERSION,
            "key": key,
            "type": _type_of(result),
            "config": describe,
            "result": result.to_dict(),
        }
        if self._writer is None:
            self._writer = self.path.open("a", encoding="utf-8")
        self._writer.write(
            json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
        )
        self._writer.flush()
        self._index[key] = result
        return True

    def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            self._writer = None

    def __enter__(self) -> "CheckpointStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"CheckpointStore({str(self.directory)!r}, entries={len(self)})"
