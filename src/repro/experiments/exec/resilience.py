"""Fault-tolerant sweep execution: timeouts, retries, isolation, resume.

The paper's evaluation procedure is long sweeps of independent scenarios
(100 per sweep point, §4.1) — exactly the workload where one hung or
crashed worker must not cost the run.  This module supplies the
robustness layer the plain executors deliberately omit:

- **crash isolation** — every scenario attempt runs in its *own* worker
  process with a dedicated result pipe, so a dying worker loses one
  attempt, never a pool (a ``ProcessPoolExecutor`` marks itself broken
  and fails every in-flight future when any worker dies);
- **wall-clock timeouts** — an attempt exceeding
  :attr:`ExecPolicy.timeout` is killed and treated like a crash;
- **bounded retry with exponential backoff** — crashed, timed-out, and
  transiently erroring scenarios are re-attempted up to
  :attr:`ExecPolicy.retries` times; a scenario that fails every attempt
  raises :class:`~repro.errors.RetryExhaustedError`;
- **content-keyed checkpoint/resume** — completed results persist to a
  :class:`~repro.experiments.exec.checkpoint.CheckpointStore` keyed by
  ``ScenarioConfig.content_key`` / ``ExperimentSpec.content_key``, so an
  interrupted ``figures`` run resumes instead of restarting.

Determinism is preserved: results are recorded by batch index and worker
observability reports merge in seed order after the batch, so merged
tables are byte-identical to a serial run no matter how many faults,
retries, or checkpoint hits occurred along the way (the fault-injection
suite asserts it).  Fault activity is visible in run reports as
``exec.retries`` / ``exec.timeouts`` / ``exec.crashes`` /
``exec.scenario_errors`` and ``exec.checkpoint.{hits,writes}``.

Live telemetry rides the same pipes: when a
:class:`~repro.obs.live.TelemetryHub` is attached (or a timeout is
armed), each worker's dedicated result pipe also carries periodic
``("telemetry", heartbeat)`` messages from a sampler thread, each
holding the scenario's currently open span names.  The parent keeps the
latest heartbeat per attempt, forwards everything to the hub's sinks,
and — when it has to kill a hung worker — attaches that last span-stack
snapshot to the ``scenario.timeout`` telemetry record and the
``exec.timeout`` observability event, so a multi-hour sweep's hang is
attributed to a code path instead of dying anonymously.  Telemetry is
observe-only: results and merged reports are unchanged by any sink.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from multiprocessing import get_context
from multiprocessing.connection import wait as _connection_wait
from typing import Sequence

from repro.errors import ConfigurationError, RetryExhaustedError
from repro.obs import NULL_OBS, Observability, merge_report_into
from repro.experiments.exec.checkpoint import CheckpointStore
from repro.experiments.exec.executor import Executor
from repro.experiments.exec.spec import ExperimentSpec
from repro.experiments.exec.worker import FAULT_KINDS, resilient_worker_main

#: Extra wall-clock allowance for worker startup (interpreter boot and
#: imports) before the ``ready`` handshake restarts the deadline.  Keeps
#: a tight :attr:`ExecPolicy.timeout` from killing attempts that never
#: got to run, while still bounding a worker wedged during startup.
STARTUP_GRACE = 30.0


@dataclass(frozen=True)
class ExecPolicy:
    """Fault-tolerance envelope of a resilient sweep.

    Attributes
    ----------
    timeout:
        Per-scenario wall-clock limit in seconds (``None``: no limit).
        An attempt past its deadline is killed and retried.  The clock
        starts at the worker's ``ready`` handshake — when the scenario
        itself begins — not at process spawn, so interpreter startup on
        spawn/forkserver platforms never eats a tight limit.
    retries:
        Re-attempts allowed per scenario after its first try; ``0`` turns
        every fault into an immediate :class:`RetryExhaustedError`.
    backoff_base / backoff_cap:
        Retry ``n`` waits ``min(cap, base * 2**(n-1))`` seconds before
        redispatch (tests set ``backoff_base=0`` for speed).
    checkpoint_dir:
        Directory of the content-keyed result store; every completed
        scenario is appended there.  ``None`` disables checkpointing.
    resume:
        Serve scenarios already present in the checkpoint store from disk
        instead of recomputing them.  Requires ``checkpoint_dir``.
    heartbeat_interval:
        Seconds between worker heartbeats (each carrying the live
        span-stack snapshot).  Heartbeats flow whenever a telemetry hub
        is attached *or* a timeout is armed — the latter so a timeout
        kill can attribute the hang even without live sinks.
    """

    timeout: float | None = None
    retries: int = 2
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    checkpoint_dir: str | None = None
    resume: bool = False
    heartbeat_interval: float = 5.0

    def __post_init__(self) -> None:
        if self.timeout is not None and self.timeout <= 0:
            raise ConfigurationError(
                f"timeout must be positive (or None), got {self.timeout}"
            )
        if self.retries < 0:
            raise ConfigurationError(f"retries must be >= 0, got {self.retries}")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ConfigurationError("backoff must be non-negative")
        if self.resume and self.checkpoint_dir is None:
            raise ConfigurationError("resume requires a checkpoint directory")
        if self.heartbeat_interval <= 0:
            raise ConfigurationError(
                f"heartbeat_interval must be positive, "
                f"got {self.heartbeat_interval}"
            )

    def backoff(self, attempt: int) -> float:
        """Seconds to wait before retry number ``attempt`` (1-based)."""
        return min(self.backoff_cap, self.backoff_base * (2 ** (attempt - 1)))


class _Task:
    """One work unit's retry state inside a batch."""

    __slots__ = ("index", "unit", "key", "attempt", "not_before")

    def __init__(self, index: int, unit, key: str):
        self.index = index
        self.unit = unit
        self.key = key  # unit.content_key(): checkpoint + telemetry id
        self.attempt = 0  # attempts already failed
        self.not_before = 0.0  # monotonic instant the next attempt may start


class _Attempt:
    """One live worker process executing a task attempt."""

    __slots__ = ("task", "proc", "conn", "deadline", "started", "last_heartbeat")

    def __init__(self, task: _Task, proc, conn, deadline: float | None):
        self.task = task
        self.proc = proc
        self.conn = conn
        self.deadline = deadline
        self.started = time.monotonic()  # reset at the ready handshake
        self.last_heartbeat: dict | None = None


class ResilientExecutor(Executor):
    """Fault-tolerant executor: one process per scenario attempt.

    Spawning per attempt costs a few milliseconds of fork next to
    scenarios that run for tens to hundreds — the price of being able to
    kill a hung attempt outright and of confining any crash to exactly
    one scenario.  Workers still share substrate state where it is free:
    on fork-start platforms each child inherits whatever the parent's
    process cache held.

    ``inject_fault`` arms deterministic test faults (crash / hang /
    error) against a batch index — the hook behind the fault-injection
    suite and CI's resilience smoke job; production runs never set it.
    """

    kind = "resilient"

    def __init__(
        self,
        jobs: int | None = None,
        policy: ExecPolicy | None = None,
        telemetry=None,
    ) -> None:
        if jobs is None:
            jobs = os.cpu_count() or 1
        if jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.policy = policy if policy is not None else ExecPolicy()
        self.telemetry = telemetry
        self._ctx = get_context()
        self._store = (
            CheckpointStore(self.policy.checkpoint_dir)
            if self.policy.checkpoint_dir is not None
            else None
        )
        #: index -> (fault kind, persistent).  One-shot faults fire on the
        #: first attempt of the matching work unit, then disarm.
        self._fault_plan: dict[int, tuple[str, bool]] = {}

    # ------------------------------------------------------------------
    # Fault injection (testing hook)
    # ------------------------------------------------------------------
    def inject_fault(
        self, index: int, fault: str, persistent: bool = False
    ) -> None:
        """Arm ``fault`` against batch work unit ``index``.

        One-shot by default (first attempt only — the retry then
        succeeds); ``persistent`` faults hit every attempt, which is how
        the suite proves retry exhaustion fails loudly.
        """
        if fault not in FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault {fault!r}; expected one of {FAULT_KINDS}"
            )
        if index < 0:
            raise ConfigurationError(f"fault index must be >= 0, got {index}")
        self._fault_plan[index] = (fault, persistent)

    # ------------------------------------------------------------------
    # Executor interface
    # ------------------------------------------------------------------
    def map_units(
        self,
        units: Sequence,
        obs: Observability | None = None,
    ) -> list:
        obs = obs if obs is not None else NULL_OBS
        capture = obs.enabled
        trace = obs.tracer is not None
        hub = self.telemetry
        if hub is not None:
            hub.begin(
                len(units), meta={"executor": self.kind, "jobs": self.jobs}
            )
        results: list = [None] * len(units)
        reports: dict[int, dict] = {}
        tasks: list[_Task] = []
        try:
            for index, unit in enumerate(units):
                key = unit.content_key()
                if self._store is not None and self.policy.resume:
                    cached = self._store.get(key)
                    if cached is not None:
                        results[index] = cached
                        obs.counter("exec.checkpoint.hits").inc()
                        if hub is not None:
                            hub.publish(
                                "scenario.finish",
                                index=index,
                                attempt=0,
                                key=key,
                                cached=True,
                            )
                        continue
                tasks.append(_Task(index, unit, key))
            self._run_tasks(tasks, capture, trace, obs, results, reports)
        finally:
            # The flight recorder gets its sweep.finish record even when
            # the batch dies to retry exhaustion or an interrupt — that
            # is exactly when a post-mortem matters.
            if hub is not None:
                hub.end()
        # Merge worker reports by batch (seed) index, never completion
        # order, so the combined report is deterministic under retries.
        for index in sorted(reports):
            merge_report_into(obs, reports[index])
        obs.counter("exec.scenarios").inc(len(units))
        if capture:
            obs.gauge("exec.jobs").set(self.jobs)
            obs.counter("exec.worker_reports_merged").inc(len(reports))
        assert all(r is not None for r in results)
        return results  # type: ignore[return-value]

    def run_sweep(self, spec: ExperimentSpec, obs=None):
        if self._store is not None:
            self._write_manifest(spec)
        return super().run_sweep(spec, obs=obs)

    def close(self) -> None:
        if self._store is not None:
            self._store.close()

    # ------------------------------------------------------------------
    # Scheduler
    # ------------------------------------------------------------------
    def _run_tasks(self, tasks, capture, trace, obs, results, reports) -> None:
        hub = self.telemetry
        waiting: list[_Task] = list(tasks)
        running: list[_Attempt] = []
        try:
            while waiting or running:
                now = time.monotonic()
                ready = [t for t in waiting if t.not_before <= now]
                while ready and len(running) < self.jobs:
                    task = ready.pop(0)
                    waiting.remove(task)
                    running.append(self._start_attempt(task, capture, trace))
                if running:
                    self._poll(running, waiting, obs, results, reports)
                else:
                    # Every remaining task is backing off; sleep it out
                    # (in tick-sized slices when a hub wants refreshes).
                    wake = min(t.not_before for t in waiting)
                    delay = wake - time.monotonic()
                    if hub is not None:
                        delay = min(delay, hub.tick_interval)
                    if delay > 0:
                        time.sleep(delay)
                if hub is not None:
                    hub.maybe_tick()
        finally:
            # Only reached non-empty on an exception (retry exhaustion or
            # a caller interrupt): reap stragglers, leak no processes.
            for attempt in running:
                self._reap(attempt, kill=True)

    def _poll(self, running, waiting, obs, results, reports) -> None:
        hub = self.telemetry
        now = time.monotonic()
        wakeups = [a.deadline for a in running if a.deadline is not None]
        if len(running) < self.jobs and waiting:
            wakeups.append(min(t.not_before for t in waiting))
        timeout = None if not wakeups else max(0.0, min(wakeups) - now)
        if hub is not None:
            # Keep waking at tick cadence so progress lines advance even
            # while every worker is mid-scenario and silent.
            timeout = (
                hub.tick_interval
                if timeout is None
                else min(timeout, hub.tick_interval)
            )
        handles = []
        for attempt in running:
            handles.append(attempt.conn)
            handles.append(attempt.proc.sentinel)
        signalled = set(_connection_wait(handles, timeout))
        now = time.monotonic()
        for attempt in list(running):
            # Drain every queued message — "ready" handshake and
            # "telemetry" heartbeats arrive interleaved ahead of the
            # single final ok/error message.  The handshake marks the
            # instant the scenario actually starts, so the wall-clock
            # deadline restarts there (interpreter startup doesn't count
            # against the timeout on spawn/forkserver platforms).
            final = None
            dead = False
            if attempt.conn in signalled or attempt.proc.sentinel in signalled:
                while final is None and attempt.conn.poll():
                    try:
                        received = attempt.conn.recv()
                    except (EOFError, OSError):
                        dead = True
                        break
                    if received[0] == "ready":
                        attempt.started = time.monotonic()
                        if attempt.deadline is not None:
                            attempt.deadline = (
                                attempt.started + self.policy.timeout
                            )
                    elif received[0] == "telemetry":
                        record = received[1]
                        if record.get("kind") == "heartbeat":
                            attempt.last_heartbeat = record
                        if hub is not None:
                            hub.forward(
                                record,
                                index=attempt.task.index,
                                attempt=attempt.task.attempt,
                            )
                    else:
                        final = received
                if final is None and not dead and not attempt.proc.is_alive():
                    dead = True
            if final is not None and final[0] == "ok":
                self._complete(attempt, final, running, obs, results, reports)
            elif final is not None and final[0] == "error":
                self._fail(
                    attempt,
                    "scenario_errors",
                    f"worker raised {final[1]}",
                    running,
                    waiting,
                    obs,
                    remote_traceback=final[2],
                )
            elif dead:
                self._fail(
                    attempt,
                    "crashes",
                    f"worker died without a result "
                    f"(exit code {attempt.proc.exitcode})",
                    running,
                    waiting,
                    obs,
                )
            elif attempt.deadline is not None and now >= attempt.deadline:
                # Checked even when the pipe was signalled: a hung worker
                # whose heartbeat thread keeps the pipe busy must not be
                # able to starve its own deadline.
                self._fail(
                    attempt,
                    "timeouts",
                    f"exceeded the {self.policy.timeout:g}s wall-clock "
                    "timeout and was killed",
                    running,
                    waiting,
                    obs,
                    kill=True,
                )

    def _start_attempt(
        self, task: _Task, capture: bool, trace: bool = False
    ) -> _Attempt:
        fault = None
        armed = self._fault_plan.get(task.index)
        if armed is not None:
            kind, persistent = armed
            if persistent:
                fault = kind
            elif task.attempt == 0:
                fault = kind
                del self._fault_plan[task.index]
        # Heartbeats flow whenever someone can use them: a live hub, or
        # an armed timeout (hang attribution needs the span snapshots
        # even without sinks).
        heartbeat = (
            self.policy.heartbeat_interval
            if (self.telemetry is not None or self.policy.timeout is not None)
            else None
        )
        recv_conn, send_conn = self._ctx.Pipe(duplex=False)
        proc = self._ctx.Process(
            target=resilient_worker_main,
            args=(send_conn, task.unit, capture, fault, heartbeat, trace),
            daemon=True,
            name=f"repro-scenario-{task.index}",
        )
        proc.start()
        send_conn.close()  # the worker holds the only send end now
        if self.telemetry is not None:
            self.telemetry.publish(
                "scenario.start",
                index=task.index,
                attempt=task.attempt,
                key=task.key,
                pid=proc.pid,
            )
        # The provisional deadline grants startup its own grace; the
        # worker's "ready" handshake replaces it with a clean
        # ``now + timeout`` once the scenario actually begins.
        deadline = (
            time.monotonic() + self.policy.timeout + STARTUP_GRACE
            if self.policy.timeout is not None
            else None
        )
        return _Attempt(task, proc, recv_conn, deadline)

    def _complete(self, attempt, message, running, obs, results, reports) -> None:
        _, result, report = message
        task = attempt.task
        running.remove(attempt)
        self._reap(attempt)
        results[task.index] = result
        if report is not None:
            reports[task.index] = report
        if self.telemetry is not None:
            self.telemetry.publish(
                "scenario.finish",
                index=task.index,
                attempt=task.attempt,
                key=task.key,
                duration_s=round(time.monotonic() - attempt.started, 6),
            )
        if self._store is not None:
            if self._store.put(task.key, result, describe=task.unit.describe()):
                obs.counter("exec.checkpoint.writes").inc()

    def _fail(
        self,
        attempt,
        counter: str,
        reason: str,
        running,
        waiting,
        obs,
        remote_traceback: str | None = None,
        kill: bool = False,
    ) -> None:
        task = attempt.task
        running.remove(attempt)
        self._reap(attempt, kill=kill)
        obs.counter(f"exec.{counter}").inc()
        spans: list | None = None
        if counter == "timeouts":
            # Hang attribution: the last heartbeat's span-stack snapshot
            # is the best available answer to "where was it stuck?".
            heartbeat = attempt.last_heartbeat
            if heartbeat is not None:
                spans = heartbeat.get("spans") or []
            obs.emit(
                "exec.timeout",
                index=task.index,
                attempt=task.attempt,
                spans=spans,
            )
            if spans:
                reason = f"{reason}; last seen in span {' > '.join(spans)}"
        if self.telemetry is not None:
            record_kind = {
                "timeouts": "scenario.timeout",
                "crashes": "scenario.crash",
                "scenario_errors": "scenario.error",
            }[counter]
            fields: dict = {
                "index": task.index,
                "attempt": task.attempt,
                "key": task.key,
                "reason": reason,
            }
            if counter == "timeouts":
                fields["timeout_s"] = self.policy.timeout
                fields["spans"] = spans
                if attempt.last_heartbeat is not None:
                    fields["last_heartbeat_elapsed_s"] = (
                        attempt.last_heartbeat.get("elapsed_s")
                    )
            self.telemetry.publish(record_kind, **fields)
        if task.attempt >= self.policy.retries:
            detail = reason
            if remote_traceback:
                detail = f"{reason}\n{remote_traceback}"
            raise RetryExhaustedError(
                task.index, task.unit.describe(), task.attempt + 1, detail
            )
        task.attempt += 1
        obs.counter("exec.retries").inc()
        backoff = self.policy.backoff(task.attempt)
        task.not_before = time.monotonic() + backoff
        waiting.append(task)
        if self.telemetry is not None:
            self.telemetry.publish(
                "scenario.retry",
                index=task.index,
                attempt=task.attempt,
                key=task.key,
                reason=reason,
                backoff_s=round(backoff, 6),
            )

    def _reap(self, attempt: _Attempt, kill: bool = False) -> None:
        try:
            attempt.conn.close()
        except OSError:
            pass
        proc = attempt.proc
        if kill and proc.is_alive():
            proc.terminate()
            proc.join(2.0)
            if proc.is_alive():
                proc.kill()
        proc.join(5.0)

    # ------------------------------------------------------------------
    # Checkpoint manifest
    # ------------------------------------------------------------------
    def _write_manifest(self, spec: ExperimentSpec) -> None:
        """Archive the sweep's spec next to its results, named by its
        content key, so a checkpoint directory is self-describing."""
        path = self._store.directory / f"manifest-{spec.content_key()}.json"
        if not path.exists():
            path.write_text(spec.to_json() + "\n", encoding="utf-8")

    def __repr__(self) -> str:
        store = "" if self._store is None else f", store={self._store!r}"
        return (
            f"ResilientExecutor(jobs={self.jobs}, "
            f"timeout={self.policy.timeout}, retries={self.policy.retries}"
            f"{store})"
        )
