"""Fault-tolerant sweep execution: timeouts, retries, isolation, resume.

The paper's evaluation procedure is long sweeps of independent scenarios
(100 per sweep point, §4.1) — exactly the workload where one hung or
crashed worker must not cost the run.  This module supplies the
robustness layer the plain executors deliberately omit:

- **crash isolation** — every scenario attempt runs in its *own* worker
  process with a dedicated result pipe, so a dying worker loses one
  attempt, never a pool (a ``ProcessPoolExecutor`` marks itself broken
  and fails every in-flight future when any worker dies);
- **wall-clock timeouts** — an attempt exceeding
  :attr:`ExecPolicy.timeout` is killed and treated like a crash;
- **bounded retry with exponential backoff** — crashed, timed-out, and
  transiently erroring scenarios are re-attempted up to
  :attr:`ExecPolicy.retries` times; a scenario that fails every attempt
  raises :class:`~repro.errors.RetryExhaustedError`;
- **content-keyed checkpoint/resume** — completed results persist to a
  :class:`~repro.experiments.exec.checkpoint.CheckpointStore` keyed by
  ``ScenarioConfig.content_key`` / ``ExperimentSpec.content_key``, so an
  interrupted ``figures`` run resumes instead of restarting.

Determinism is preserved: results are recorded by batch index and worker
observability reports merge in seed order after the batch, so merged
tables are byte-identical to a serial run no matter how many faults,
retries, or checkpoint hits occurred along the way (the fault-injection
suite asserts it).  Fault activity is visible in run reports as
``exec.retries`` / ``exec.timeouts`` / ``exec.crashes`` /
``exec.scenario_errors`` and ``exec.checkpoint.{hits,writes}``.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from multiprocessing import get_context
from multiprocessing.connection import wait as _connection_wait
from typing import Sequence

from repro.errors import ConfigurationError, RetryExhaustedError
from repro.obs import NULL_OBS, Observability, merge_report_into
from repro.experiments.runner import ScenarioResult
from repro.experiments.scenario import ScenarioConfig
from repro.experiments.exec.checkpoint import CheckpointStore
from repro.experiments.exec.executor import Executor
from repro.experiments.exec.spec import ExperimentSpec
from repro.experiments.exec.worker import FAULT_KINDS, resilient_worker_main

#: Extra wall-clock allowance for worker startup (interpreter boot and
#: imports) before the ``ready`` handshake restarts the deadline.  Keeps
#: a tight :attr:`ExecPolicy.timeout` from killing attempts that never
#: got to run, while still bounding a worker wedged during startup.
STARTUP_GRACE = 30.0


@dataclass(frozen=True)
class ExecPolicy:
    """Fault-tolerance envelope of a resilient sweep.

    Attributes
    ----------
    timeout:
        Per-scenario wall-clock limit in seconds (``None``: no limit).
        An attempt past its deadline is killed and retried.  The clock
        starts at the worker's ``ready`` handshake — when the scenario
        itself begins — not at process spawn, so interpreter startup on
        spawn/forkserver platforms never eats a tight limit.
    retries:
        Re-attempts allowed per scenario after its first try; ``0`` turns
        every fault into an immediate :class:`RetryExhaustedError`.
    backoff_base / backoff_cap:
        Retry ``n`` waits ``min(cap, base * 2**(n-1))`` seconds before
        redispatch (tests set ``backoff_base=0`` for speed).
    checkpoint_dir:
        Directory of the content-keyed result store; every completed
        scenario is appended there.  ``None`` disables checkpointing.
    resume:
        Serve scenarios already present in the checkpoint store from disk
        instead of recomputing them.  Requires ``checkpoint_dir``.
    """

    timeout: float | None = None
    retries: int = 2
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    checkpoint_dir: str | None = None
    resume: bool = False

    def __post_init__(self) -> None:
        if self.timeout is not None and self.timeout <= 0:
            raise ConfigurationError(
                f"timeout must be positive (or None), got {self.timeout}"
            )
        if self.retries < 0:
            raise ConfigurationError(f"retries must be >= 0, got {self.retries}")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ConfigurationError("backoff must be non-negative")
        if self.resume and self.checkpoint_dir is None:
            raise ConfigurationError("resume requires a checkpoint directory")

    def backoff(self, attempt: int) -> float:
        """Seconds to wait before retry number ``attempt`` (1-based)."""
        return min(self.backoff_cap, self.backoff_base * (2 ** (attempt - 1)))


class _Task:
    """One scenario work unit's retry state inside a batch."""

    __slots__ = ("index", "config", "key", "attempt", "not_before")

    def __init__(self, index: int, config: ScenarioConfig, key: str | None):
        self.index = index
        self.config = config
        self.key = key
        self.attempt = 0  # attempts already failed
        self.not_before = 0.0  # monotonic instant the next attempt may start


class _Attempt:
    """One live worker process executing a task attempt."""

    __slots__ = ("task", "proc", "conn", "deadline")

    def __init__(self, task: _Task, proc, conn, deadline: float | None):
        self.task = task
        self.proc = proc
        self.conn = conn
        self.deadline = deadline


class ResilientExecutor(Executor):
    """Fault-tolerant executor: one process per scenario attempt.

    Spawning per attempt costs a few milliseconds of fork next to
    scenarios that run for tens to hundreds — the price of being able to
    kill a hung attempt outright and of confining any crash to exactly
    one scenario.  Workers still share substrate state where it is free:
    on fork-start platforms each child inherits whatever the parent's
    process cache held.

    ``inject_fault`` arms deterministic test faults (crash / hang /
    error) against a batch index — the hook behind the fault-injection
    suite and CI's resilience smoke job; production runs never set it.
    """

    kind = "resilient"

    def __init__(
        self, jobs: int | None = None, policy: ExecPolicy | None = None
    ) -> None:
        if jobs is None:
            jobs = os.cpu_count() or 1
        if jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.policy = policy if policy is not None else ExecPolicy()
        self._ctx = get_context()
        self._store = (
            CheckpointStore(self.policy.checkpoint_dir)
            if self.policy.checkpoint_dir is not None
            else None
        )
        #: index -> (fault kind, persistent).  One-shot faults fire on the
        #: first attempt of the matching work unit, then disarm.
        self._fault_plan: dict[int, tuple[str, bool]] = {}

    # ------------------------------------------------------------------
    # Fault injection (testing hook)
    # ------------------------------------------------------------------
    def inject_fault(
        self, index: int, fault: str, persistent: bool = False
    ) -> None:
        """Arm ``fault`` against batch work unit ``index``.

        One-shot by default (first attempt only — the retry then
        succeeds); ``persistent`` faults hit every attempt, which is how
        the suite proves retry exhaustion fails loudly.
        """
        if fault not in FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault {fault!r}; expected one of {FAULT_KINDS}"
            )
        if index < 0:
            raise ConfigurationError(f"fault index must be >= 0, got {index}")
        self._fault_plan[index] = (fault, persistent)

    # ------------------------------------------------------------------
    # Executor interface
    # ------------------------------------------------------------------
    def map_scenarios(
        self,
        configs: Sequence[ScenarioConfig],
        obs: Observability | None = None,
    ) -> list[ScenarioResult]:
        obs = obs if obs is not None else NULL_OBS
        capture = obs.enabled
        results: list[ScenarioResult | None] = [None] * len(configs)
        reports: dict[int, dict] = {}
        tasks: list[_Task] = []
        for index, config in enumerate(configs):
            key = config.content_key() if self._store is not None else None
            if self._store is not None and self.policy.resume:
                cached = self._store.get(key)
                if cached is not None:
                    results[index] = cached
                    obs.counter("exec.checkpoint.hits").inc()
                    continue
            tasks.append(_Task(index, config, key))
        self._run_tasks(tasks, capture, obs, results, reports)
        # Merge worker reports by batch (seed) index, never completion
        # order, so the combined report is deterministic under retries.
        for index in sorted(reports):
            merge_report_into(obs, reports[index])
        obs.counter("exec.scenarios").inc(len(configs))
        if capture:
            obs.gauge("exec.jobs").set(self.jobs)
            obs.counter("exec.worker_reports_merged").inc(len(reports))
        assert all(r is not None for r in results)
        return results  # type: ignore[return-value]

    def run_sweep(self, spec: ExperimentSpec, obs=None):
        if self._store is not None:
            self._write_manifest(spec)
        return super().run_sweep(spec, obs=obs)

    def close(self) -> None:
        if self._store is not None:
            self._store.close()

    # ------------------------------------------------------------------
    # Scheduler
    # ------------------------------------------------------------------
    def _run_tasks(self, tasks, capture, obs, results, reports) -> None:
        waiting: list[_Task] = list(tasks)
        running: list[_Attempt] = []
        try:
            while waiting or running:
                now = time.monotonic()
                ready = [t for t in waiting if t.not_before <= now]
                while ready and len(running) < self.jobs:
                    task = ready.pop(0)
                    waiting.remove(task)
                    running.append(self._start_attempt(task, capture))
                if running:
                    self._poll(running, waiting, obs, results, reports)
                else:
                    # Every remaining task is backing off; sleep it out.
                    wake = min(t.not_before for t in waiting)
                    delay = wake - time.monotonic()
                    if delay > 0:
                        time.sleep(delay)
        finally:
            # Only reached non-empty on an exception (retry exhaustion or
            # a caller interrupt): reap stragglers, leak no processes.
            for attempt in running:
                self._reap(attempt, kill=True)

    def _poll(self, running, waiting, obs, results, reports) -> None:
        now = time.monotonic()
        wakeups = [a.deadline for a in running if a.deadline is not None]
        if len(running) < self.jobs and waiting:
            wakeups.append(min(t.not_before for t in waiting))
        timeout = None if not wakeups else max(0.0, min(wakeups) - now)
        handles = []
        for attempt in running:
            handles.append(attempt.conn)
            handles.append(attempt.proc.sentinel)
        signalled = set(_connection_wait(handles, timeout))
        now = time.monotonic()
        for attempt in list(running):
            if attempt.conn in signalled or attempt.proc.sentinel in signalled:
                # Drain the "ready" handshake before looking for the
                # final message: it marks the instant the scenario
                # actually starts, so the wall-clock deadline restarts
                # there (interpreter startup doesn't count against the
                # timeout on spawn/forkserver platforms).
                message = None
                while message is None and attempt.conn.poll():
                    try:
                        received = attempt.conn.recv()
                    except (EOFError, OSError):
                        break
                    if received[0] == "ready":
                        if attempt.deadline is not None:
                            attempt.deadline = (
                                time.monotonic() + self.policy.timeout
                            )
                    else:
                        message = received
                if message is None and attempt.proc.is_alive():
                    continue  # just the handshake; the attempt runs on
                if message is not None and message[0] == "ok":
                    self._complete(attempt, message, running, obs, results, reports)
                elif message is not None and message[0] == "error":
                    self._fail(
                        attempt,
                        "scenario_errors",
                        f"worker raised {message[1]}",
                        running,
                        waiting,
                        obs,
                        remote_traceback=message[2],
                    )
                else:
                    self._fail(
                        attempt,
                        "crashes",
                        f"worker died without a result "
                        f"(exit code {attempt.proc.exitcode})",
                        running,
                        waiting,
                        obs,
                    )
            elif attempt.deadline is not None and now >= attempt.deadline:
                self._fail(
                    attempt,
                    "timeouts",
                    f"exceeded the {self.policy.timeout:g}s wall-clock "
                    "timeout and was killed",
                    running,
                    waiting,
                    obs,
                    kill=True,
                )

    def _start_attempt(self, task: _Task, capture: bool) -> _Attempt:
        fault = None
        armed = self._fault_plan.get(task.index)
        if armed is not None:
            kind, persistent = armed
            if persistent:
                fault = kind
            elif task.attempt == 0:
                fault = kind
                del self._fault_plan[task.index]
        recv_conn, send_conn = self._ctx.Pipe(duplex=False)
        proc = self._ctx.Process(
            target=resilient_worker_main,
            args=(send_conn, task.config, capture, fault),
            daemon=True,
            name=f"repro-scenario-{task.index}",
        )
        proc.start()
        send_conn.close()  # the worker holds the only send end now
        # The provisional deadline grants startup its own grace; the
        # worker's "ready" handshake replaces it with a clean
        # ``now + timeout`` once the scenario actually begins.
        deadline = (
            time.monotonic() + self.policy.timeout + STARTUP_GRACE
            if self.policy.timeout is not None
            else None
        )
        return _Attempt(task, proc, recv_conn, deadline)

    def _complete(self, attempt, message, running, obs, results, reports) -> None:
        _, result, report = message
        task = attempt.task
        running.remove(attempt)
        self._reap(attempt)
        results[task.index] = result
        if report is not None:
            reports[task.index] = report
        if self._store is not None and task.key is not None:
            if self._store.put(task.key, result):
                obs.counter("exec.checkpoint.writes").inc()

    def _fail(
        self,
        attempt,
        counter: str,
        reason: str,
        running,
        waiting,
        obs,
        remote_traceback: str | None = None,
        kill: bool = False,
    ) -> None:
        task = attempt.task
        running.remove(attempt)
        self._reap(attempt, kill=kill)
        obs.counter(f"exec.{counter}").inc()
        if task.attempt >= self.policy.retries:
            detail = reason
            if remote_traceback:
                detail = f"{reason}\n{remote_traceback}"
            raise RetryExhaustedError(
                task.index, task.config.describe(), task.attempt + 1, detail
            )
        task.attempt += 1
        obs.counter("exec.retries").inc()
        task.not_before = time.monotonic() + self.policy.backoff(task.attempt)
        waiting.append(task)

    def _reap(self, attempt: _Attempt, kill: bool = False) -> None:
        try:
            attempt.conn.close()
        except OSError:
            pass
        proc = attempt.proc
        if kill and proc.is_alive():
            proc.terminate()
            proc.join(2.0)
            if proc.is_alive():
                proc.kill()
        proc.join(5.0)

    # ------------------------------------------------------------------
    # Checkpoint manifest
    # ------------------------------------------------------------------
    def _write_manifest(self, spec: ExperimentSpec) -> None:
        """Archive the sweep's spec next to its results, named by its
        content key, so a checkpoint directory is self-describing."""
        path = self._store.directory / f"manifest-{spec.content_key()}.json"
        if not path.exists():
            path.write_text(spec.to_json() + "\n", encoding="utf-8")

    def __repr__(self) -> str:
        store = "" if self._store is None else f", store={self._store!r}"
        return (
            f"ResilientExecutor(jobs={self.jobs}, "
            f"timeout={self.policy.timeout}, retries={self.policy.retries}"
            f"{store})"
        )
