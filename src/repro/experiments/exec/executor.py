"""Executors: how a batch of work units actually runs.

An :class:`Executor` turns a list of work units into their results, in
input order, regardless of *how* they run.  A work unit is either a
:class:`~repro.experiments.scenario.ScenarioConfig` or any object
implementing the work-unit protocol (``run(obs=..., cache=...)``,
``content_key()``, ``describe()`` — see
:func:`~repro.experiments.exec.worker.execute_unit`), which is how the
controller's service shards share this machinery:

- :class:`SerialExecutor` — in-process, one scenario at a time, against a
  long-lived :class:`~repro.experiments.exec.cache.SubstrateCache`;
- :class:`ParallelExecutor` — a ``concurrent.futures``
  ``ProcessPoolExecutor`` fan-out; each worker process keeps its own
  substrate cache, per-worker observability reports are merged back into
  the caller's :class:`~repro.obs.Observability` in seed order.

Both therefore produce **identical results** for the same inputs (the
determinism suite asserts this).  Merged algorithm counters match too;
cache hit/miss *splits* differ (per-worker caches see fewer cross-scenario
hits, though hits + misses totals agree) and span *timings* naturally
differ.  ``Executor.run_sweep`` adds the shared
spec-driven sweep loop on top, so every later scaling backend (sharding,
async, remote) only has to implement :meth:`Executor.map_units`.

:func:`resolve_executor` is the one place the convenience parameters of
the facade and the CLI (``executor=`` / ``jobs=`` / ``policy=`` /
``telemetry=``) are reconciled, so both surfaces reject bad combinations
with the same message text.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from time import monotonic
from typing import Sequence

from repro.errors import ConfigurationError
from repro.obs import NULL_OBS, Observability, merge_report_into
from repro.experiments.runner import ScenarioResult
from repro.experiments.scenario import ScenarioConfig
from repro.experiments.exec.cache import SubstrateCache
from repro.experiments.exec.spec import ExperimentSpec
from repro.experiments.exec.worker import execute_unit

#: Executor kinds accepted by :func:`make_executor` and the CLI.
EXECUTOR_KINDS = ("serial", "process", "resilient")


class Executor(ABC):
    """Strategy for running work units.

    Executors are context managers; :meth:`close` releases pooled
    resources (a no-op for the serial executor).
    """

    #: Machine-readable kind, mirrored in run-report metadata.
    kind: str = "abstract"

    #: Optional :class:`~repro.obs.live.TelemetryHub` receiving lifecycle
    #: records while a batch is in flight.  Observe-only by contract:
    #: results are identical with or without one attached.
    telemetry = None

    @abstractmethod
    def map_units(
        self,
        units: Sequence,
        obs: Observability | None = None,
    ) -> list:
        """Run every work unit; results come back in input order."""

    def map_scenarios(
        self,
        configs: Sequence[ScenarioConfig],
        obs: Observability | None = None,
    ) -> list[ScenarioResult]:
        """Run every config; results come back in input (seed) order.

        Kept as the scenario-flavoured name of :meth:`map_units` — every
        pre-existing call site and executor subclass keeps working.
        """
        return self.map_units(configs, obs=obs)

    def run_sweep(
        self, spec: ExperimentSpec, obs: Observability | None = None
    ) -> "list[SweepPoint]":
        """Execute a declarative sweep spec into :class:`SweepPoint` list.

        All scenario work units across every swept value form one batch,
        so a parallel executor keeps its workers busy across sweep-point
        boundaries; results are regrouped per value afterwards.
        """
        from repro.experiments.sweeps import SweepPoint

        obs = obs if obs is not None else NULL_OBS
        points = spec.points()
        flat = [config for _, configs in points for config in configs]
        with obs.span("sweep.run"):
            results = self.map_scenarios(flat, obs=obs)
        out: list[SweepPoint] = []
        cursor = 0
        for value, configs in points:
            chunk = results[cursor : cursor + len(configs)]
            cursor += len(configs)
            out.append(
                SweepPoint(
                    label=f"{value:g}", parameter=value, scenarios=list(chunk)
                )
            )
        return out

    def close(self) -> None:
        """Release executor resources (idempotent)."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SerialExecutor(Executor):
    """Run scenarios one at a time in the calling process.

    Keeps a :class:`SubstrateCache` for its lifetime, so consecutive
    scenarios (and consecutive sweeps run on the same executor) reuse
    generated topologies and SPF state.
    """

    kind = "serial"

    def __init__(
        self, cache: SubstrateCache | None = None, telemetry=None
    ) -> None:
        self.cache = cache if cache is not None else SubstrateCache()
        self.telemetry = telemetry

    def map_units(
        self,
        units: Sequence,
        obs: Observability | None = None,
    ) -> list:
        obs = obs if obs is not None else NULL_OBS
        hub = self.telemetry
        if hub is not None:
            hub.begin(len(units), meta={"executor": self.kind, "jobs": 1})
        results = []
        try:
            for index, unit in enumerate(units):
                if hub is not None:
                    hub.publish(
                        "scenario.start",
                        index=index,
                        attempt=0,
                        key=unit.content_key(),
                    )
                started = monotonic()
                results.append(execute_unit(unit, obs=obs, cache=self.cache))
                obs.counter("exec.scenarios").inc()
                if hub is not None:
                    hub.publish(
                        "scenario.finish",
                        index=index,
                        attempt=0,
                        key=unit.content_key(),
                        duration_s=round(monotonic() - started, 6),
                    )
        finally:
            if hub is not None:
                hub.end()
        return results

    def __repr__(self) -> str:
        return f"SerialExecutor(cache={self.cache!r})"


class ParallelExecutor(Executor):
    """Fan scenarios out over a process pool.

    Parameters
    ----------
    jobs:
        Worker process count (>= 1).  Defaults to the machine's CPU
        count.  ``jobs=1`` still exercises the full dispatch path (one
        worker process) — useful for testing the seam cheaply.

    Work units are dispatched with ``ProcessPoolExecutor.map``, which
    preserves input order, so results and merged observability reports
    are deterministic in seed order no matter which worker finishes
    first.  The pool is created lazily on first use and reused across
    calls until :meth:`close`.
    """

    kind = "process"

    def __init__(self, jobs: int | None = None, telemetry=None) -> None:
        if jobs is None:
            jobs = os.cpu_count() or 1
        if jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.telemetry = telemetry
        self._pool = None

    def _ensure_pool(self):
        if self._pool is None:
            from concurrent.futures import ProcessPoolExecutor

            self._pool = ProcessPoolExecutor(max_workers=self.jobs)
        return self._pool

    def map_units(
        self,
        units: Sequence,
        obs: Observability | None = None,
    ) -> list:
        from repro.experiments.exec.worker import run_unit_task

        obs = obs if obs is not None else NULL_OBS
        capture = obs.enabled
        trace = obs.tracer is not None
        hub = self.telemetry
        pool = self._ensure_pool()
        tasks = [(unit, capture, hub is not None, trace) for unit in units]
        chunksize = max(1, len(tasks) // (self.jobs * 4)) if tasks else 1
        results: list = []
        if hub is not None:
            hub.begin(
                len(units), meta={"executor": self.kind, "jobs": self.jobs}
            )
        try:
            # ``map`` yields in input order; merging worker reports while
            # draining it keeps the combined report deterministic.  The
            # pool offers no side channel, so lifecycle records arrive
            # worker-stamped alongside each result rather than live.
            for index, (result, report, records) in enumerate(
                pool.map(run_unit_task, tasks, chunksize=chunksize)
            ):
                if report is not None:
                    merge_report_into(obs, report)
                results.append(result)
                obs.counter("exec.scenarios").inc()
                if hub is not None:
                    for record in records:
                        hub.forward(record, index=index, attempt=0)
        finally:
            if hub is not None:
                hub.end()
        if capture:
            obs.gauge("exec.jobs").set(self.jobs)
            obs.counter("exec.worker_reports_merged").inc(len(results))
        return results

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __repr__(self) -> str:
        state = "idle" if self._pool is None else "pooled"
        return f"ParallelExecutor(jobs={self.jobs}, {state})"


def make_executor(
    kind: str = "serial", jobs: int = 1, policy=None, telemetry=None
) -> Executor:
    """Build an executor from CLI-style parameters.

    ``jobs`` must be >= 1.  ``kind='serial'`` with ``jobs > 1`` is a
    contradiction and raises; ``kind='process'`` and ``kind='resilient'``
    honour ``jobs``.  ``policy`` (an
    :class:`~repro.experiments.exec.resilience.ExecPolicy`) selects the
    fault-tolerance envelope and is only meaningful for the resilient
    executor — passing one with another kind raises, since silently
    dropping timeout/retry/resume settings would be worse.  ``telemetry``
    (a :class:`~repro.obs.live.TelemetryHub`) attaches live sweep
    telemetry and works with every kind.
    """
    if jobs < 1:
        raise ConfigurationError(f"--jobs must be >= 1, got {jobs}")
    if policy is not None and kind != "resilient":
        raise ConfigurationError(
            f"execution policy (timeouts/retries/checkpointing) requires "
            f"--executor resilient, not {kind!r}"
        )
    if kind == "serial":
        if jobs > 1:
            raise ConfigurationError(
                f"the serial executor runs one scenario at a time; "
                f"--jobs {jobs} requires --executor process"
            )
        return SerialExecutor(telemetry=telemetry)
    if kind == "process":
        return ParallelExecutor(jobs=jobs, telemetry=telemetry)
    if kind == "resilient":
        from repro.experiments.exec.resilience import ResilientExecutor

        return ResilientExecutor(jobs=jobs, policy=policy, telemetry=telemetry)
    raise ConfigurationError(
        f"unknown executor {kind!r}; expected one of {EXECUTOR_KINDS}"
    )


def resolve_executor(
    *,
    executor: Executor | None = None,
    kind: str | None = None,
    jobs: int = 1,
    policy=None,
    telemetry=None,
) -> tuple[Executor, bool]:
    """Reconcile the convenience parameters into ``(executor, owned)``.

    The single combination-rule authority shared by :mod:`repro.api` and
    the CLI, so both reject the same bad combinations with the same
    message text (the CLI maps :class:`ConfigurationError` to exit 2).

    A ready ``executor`` wins and must come alone — ``jobs``, ``kind``,
    ``policy``, and ``telemetry`` all conflict with it (``owned`` is
    False: the caller keeps its lifecycle).  Otherwise the kind is
    inferred: a ``policy`` implies the resilient executor, ``jobs > 1``
    the process pool, else serial; an explicit ``kind`` is validated
    against ``jobs``/``policy`` by :func:`make_executor` (``owned`` is
    True: the caller must :meth:`~Executor.close` it).
    """
    if executor is not None:
        if kind is not None:
            raise ConfigurationError(
                "pass either an executor or an executor kind, not both"
            )
        if jobs != 1:
            raise ConfigurationError(
                "pass either an executor or jobs, not both"
            )
        if policy is not None:
            raise ConfigurationError(
                "pass either an executor or a policy, not both"
            )
        if telemetry is not None:
            raise ConfigurationError(
                "pass telemetry to the executor's constructor, "
                "not alongside a ready executor"
            )
        return executor, False
    if jobs < 1:
        raise ConfigurationError(f"--jobs must be >= 1, got {jobs}")
    if kind is None:
        if policy is not None:
            kind = "resilient"
        else:
            kind = "process" if jobs > 1 else "serial"
    return make_executor(kind, jobs=jobs, policy=policy, telemetry=telemetry), True
