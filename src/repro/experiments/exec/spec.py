"""The declarative experiment specification.

An :class:`ExperimentSpec` is the single value object describing a whole
sweep: the base scenario parameters (what :class:`ScenarioConfig` pins
per scenario), which parameter is swept over which values, and the
seeding grid.  It consolidates what used to travel as loose
``ScenarioConfig``/``SMRPConfig`` fields and per-figure keyword plumbing,
and it is:

- **frozen and hashable** — usable as a cache/dedup key;
- **JSON-serializable** — :meth:`to_json` / :meth:`from_json` round-trip,
  so a spec can cross process boundaries or be archived next to results;
- **content-keyed** — :meth:`key` is a stable digest of the canonical
  JSON form, the identity used for result caching and run manifests;
- **eagerly validated** — every constraint is checked at construction,
  including that every swept value yields a valid scenario.

The executors (:mod:`repro.experiments.exec.executor`) consume specs and
produce :class:`~repro.experiments.sweeps.SweepPoint` lists; the figure
drivers are thin spec factories.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass

from repro.errors import ConfigurationError
from repro.experiments.scenario import ScenarioConfig, validate_scenario_params

#: Fields of :class:`ScenarioConfig` a spec may sweep, with the type the
#: swept value is coerced to when instantiating scenarios.
SWEEPABLE_PARAMETERS: dict[str, type] = {
    "d_thresh": float,
    "alpha": float,
    "group_size": int,
    "n": int,
}


@dataclass(frozen=True)
class ExperimentSpec:
    """A full sweep description (defaults mirror the paper's §4.1 setup).

    Examples
    --------
    >>> spec = ExperimentSpec(sweep_parameter="d_thresh",
    ...                       sweep_values=(0.1, 0.3),
    ...                       topologies=2, member_sets=2)
    >>> [len(configs) for _, configs in spec.points()]
    [4, 4]
    >>> ExperimentSpec.from_json(spec.to_json()) == spec
    True
    """

    # -- base scenario parameters ---------------------------------------
    n: int = 100
    group_size: int = 30
    alpha: float = 0.2
    beta: float = 0.25
    d_thresh: float = 0.3
    reshape_enabled: bool = True
    knowledge: str = "full"

    # -- what is swept --------------------------------------------------
    sweep_parameter: str = "d_thresh"
    sweep_values: tuple[float, ...] = (0.1, 0.2, 0.3, 0.4)

    # -- the seeding grid (§4.1: 10 × 10 = 100 scenarios per value) -----
    topologies: int = 10
    member_sets: int = 10
    seed_offset: int = 0

    def __post_init__(self) -> None:
        # Normalise to a tuple so specs built with lists are hashable.
        object.__setattr__(self, "sweep_values", tuple(self.sweep_values))
        if self.sweep_parameter not in SWEEPABLE_PARAMETERS:
            raise ConfigurationError(
                f"unknown sweep parameter {self.sweep_parameter!r}; "
                f"expected one of {sorted(SWEEPABLE_PARAMETERS)}"
            )
        if not self.sweep_values:
            raise ConfigurationError("sweep_values must not be empty")
        if len(set(self.sweep_values)) != len(self.sweep_values):
            raise ConfigurationError(
                f"sweep_values contain duplicates: {self.sweep_values}"
            )
        if self.topologies < 1 or self.member_sets < 1:
            raise ConfigurationError("grid dimensions must be positive")
        if self.seed_offset < 0:
            raise ConfigurationError(
                f"seed_offset must be >= 0, got {self.seed_offset}"
            )
        # Every swept value must yield a valid scenario — fail here, not
        # inside a worker process halfway through the sweep.
        for value in self.sweep_values:
            params = {
                "n": self.n,
                "group_size": self.group_size,
                "alpha": self.alpha,
                "beta": self.beta,
                "d_thresh": self.d_thresh,
                "knowledge": self.knowledge,
            }
            params[self.sweep_parameter] = SWEEPABLE_PARAMETERS[
                self.sweep_parameter
            ](value)
            validate_scenario_params(**params)

    # ------------------------------------------------------------------
    # Scenario expansion
    # ------------------------------------------------------------------
    def config_for(self, value: float) -> ScenarioConfig:
        """The base :class:`ScenarioConfig` at one swept value (seeds 0).

        The swept value is applied *during* construction — the base
        parameters alone need not form a valid scenario (e.g. a
        group-size sweep whose base ``group_size`` exceeds a small ``n``).
        """
        params = {
            "n": self.n,
            "group_size": self.group_size,
            "alpha": self.alpha,
            "beta": self.beta,
            "d_thresh": self.d_thresh,
            "reshape_enabled": self.reshape_enabled,
            "knowledge": self.knowledge,
        }
        params[self.sweep_parameter] = SWEEPABLE_PARAMETERS[self.sweep_parameter](
            value
        )
        return ScenarioConfig(**params)

    def points(self) -> list[tuple[float, tuple[ScenarioConfig, ...]]]:
        """``(value, scenario grid)`` per swept value, in declaration order.

        Every value faces the *same* topology/member-set grid (the paper
        varies one parameter at a time over a common random ensemble).
        """
        from repro.experiments.sweeps import scenario_grid

        return [
            (
                float(value),
                tuple(
                    scenario_grid(
                        self.config_for(value),
                        self.topologies,
                        self.member_sets,
                        self.seed_offset,
                    )
                ),
            )
            for value in self.sweep_values
        ]

    def scenario_configs(self) -> list[ScenarioConfig]:
        """The flat work-unit list, in deterministic (value, seed) order."""
        return [c for _, configs in self.points() for c in configs]

    # ------------------------------------------------------------------
    # Serialization and identity
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        payload = asdict(self)
        payload["sweep_values"] = list(payload["sweep_values"])
        return payload

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_dict(cls, payload: dict) -> "ExperimentSpec":
        known = {f.name for f in cls.__dataclass_fields__.values()}
        unknown = set(payload) - known
        if unknown:
            raise ConfigurationError(
                f"unknown ExperimentSpec fields: {sorted(unknown)}"
            )
        return cls(**payload)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentSpec":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"invalid ExperimentSpec JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise ConfigurationError("ExperimentSpec JSON must be an object")
        return cls.from_dict(payload)

    def key(self) -> str:
        """Stable content digest — the spec's identity for caching."""
        canonical = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]

    def content_key(self) -> str:
        """Alias of :meth:`key` matching
        :meth:`ScenarioConfig.content_key
        <repro.experiments.scenario.ScenarioConfig.content_key>` — the
        name the checkpoint layer uses for content identities."""
        return self.key()

    def describe(self) -> str:
        return (
            f"sweep {self.sweep_parameter} over {list(self.sweep_values)} "
            f"(N={self.n}, N_G={self.group_size}, alpha={self.alpha}, "
            f"grid {self.topologies}x{self.member_sets}, "
            f"{len(self.sweep_values) * self.topologies * self.member_sets} "
            f"scenarios)"
        )

