"""Restoration latency breakdown by phase (tracing figure family).

The paper's Figures 7–10 report *end-to-end* restoration quantities.
This driver decomposes them: it runs the standard scenario grid with a
:class:`~repro.obs.tracing.RestorationTracer` attached, extracts each
episode's critical path, and tabulates how much of the restoration
latency each phase contributes per strategy — making the paper's core
argument (local repair skips the re-convergence phase that dominates
SPF restoration) directly visible as a table.

Phases follow the span taxonomy of :mod:`repro.obs.tracing`: ``detect``
(failure detection delay), ``converge`` (global SPF re-convergence —
absent under SMRP local repair), ``search`` (candidate/attach
selection, charged zero sim-time by the latency model), ``signal``
(join signaling along the graft path).  All times are simulated time in
the topology's delay units.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.experiments.fig8 import figure8_spec
from repro.experiments.sweeps import run_spec_sweep
from repro.experiments.tables import format_table
from repro.obs import Observability, RestorationTracer, TraceAnalyzer
from repro.obs.tracing import Episode

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.exec.executor import Executor


@dataclass
class PhaseFigureResult:
    """Episodes plus the rendered critical-path phase decomposition."""

    episodes: list[Episode] = field(default_factory=list)

    @property
    def analyzer(self) -> TraceAnalyzer:
        return TraceAnalyzer(self.episodes)

    def render(self) -> str:
        analyzer = self.analyzer
        stats = analyzer.latency_stats()
        breakdown = analyzer.phase_breakdown()
        rows = []
        for strategy in sorted(breakdown):
            strategy_total = stats.get(strategy, {}).get("total", 0.0)
            phases = breakdown[strategy]
            for phase in sorted(phases):
                stat = phases[phase]
                share = (
                    stat.total / strategy_total if strategy_total > 0 else 0.0
                )
                rows.append([
                    strategy,
                    phase,
                    str(stat.count),
                    f"{stat.mean:.1f}",
                    f"{share:.1%}",
                ])
        table = format_table(
            ["strategy", "phase", "spans", "mean sim-time", "share"], rows
        )
        outcomes = analyzer.outcome_counts()
        outcome_text = ", ".join(
            f"{count} {outcome}" for outcome, count in sorted(outcomes.items())
        )
        return (
            f"{table}\n"
            f"({len(self.episodes)} episodes: {outcome_text}; critical-path "
            "decomposition — local repair has no converge phase)"
        )


def run_phase_figure(
    n: int = 100,
    group_size: int = 30,
    alpha: float = 0.2,
    d_thresh: float = 0.3,
    topologies: int = 4,
    member_sets: int = 2,
    seed_offset: int = 0,
    obs=None,
    executor: "Executor | None" = None,
) -> PhaseFigureResult:
    """Run the grid with tracing attached and decompose the latencies.

    ``obs`` may carry a tracer already (the CLI's ``--trace-out`` path);
    otherwise a private trace-only
    :class:`~repro.obs.Observability` is created so the caller's golden
    output stays untouched.
    """
    if obs is None:
        obs = Observability(enabled=False)
    if obs.tracer is None:
        obs.tracer = RestorationTracer()
    spec = figure8_spec(
        values=[d_thresh],
        n=n,
        group_size=group_size,
        alpha=alpha,
        topologies=topologies,
        member_sets=member_sets,
        seed_offset=seed_offset,
    )
    run_spec_sweep(spec, executor=executor, obs=obs)
    return PhaseFigureResult(episodes=list(obs.tracer.episodes))
