"""Figure 10: the effect of the group size ``N_G`` (paper §4.3.4).

Setup: N=100, α=0.2, D_thresh=0.3; N_G swept over {20, 30, 40, 50};
100 scenarios per value.  The paper observes a steady ≈20% recovery-path
reduction with ≈5% overhead, declining slightly for larger groups (more
members means everyone already has close neighbors, so SMRP's advantage
narrows).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.experiments.exec.spec import ExperimentSpec
from repro.experiments.sweeps import SweepPoint, run_spec_sweep
from repro.experiments.tables import format_summary, format_table

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.exec.executor import Executor

DEFAULT_GROUP_SIZES = [20, 30, 40, 50]


@dataclass
class Figure10Result:
    points: list[SweepPoint] = field(default_factory=list)

    def point(self, group_size: int) -> SweepPoint:
        for p in self.points:
            if int(p.parameter) == group_size:
                return p
        raise KeyError(f"no sweep point for N_G={group_size}")

    def render(self) -> str:
        rows = [
            [
                p.label,
                format_summary(p.rd_relative),
                format_summary(p.delay_relative),
                format_summary(p.cost_relative),
            ]
            for p in self.points
        ]
        table = format_table(
            ["N_G", "RD_relative", "D_relative", "Cost_relative"], rows
        )
        return table + (
            "\n(paper: ≈20% RD reduction, ≈5% overhead, slight decline "
            "with larger groups)"
        )


def figure10_spec(
    values: list[int] | None = None,
    n: int = 100,
    alpha: float = 0.2,
    d_thresh: float = 0.3,
    topologies: int = 10,
    member_sets: int = 10,
    seed_offset: int = 0,
) -> ExperimentSpec:
    """The declarative spec behind Figure 10 (sweeps ``group_size``)."""
    return ExperimentSpec(
        n=n,
        alpha=alpha,
        d_thresh=d_thresh,
        sweep_parameter="group_size",
        sweep_values=tuple(
            float(v) for v in (values if values is not None else DEFAULT_GROUP_SIZES)
        ),
        topologies=topologies,
        member_sets=member_sets,
        seed_offset=seed_offset,
    )


def run_figure10(
    values: list[int] | None = None,
    n: int = 100,
    alpha: float = 0.2,
    d_thresh: float = 0.3,
    topologies: int = 10,
    member_sets: int = 10,
    seed_offset: int = 0,
    obs=None,
    executor: "Executor | None" = None,
) -> Figure10Result:
    """Reproduce Figure 10's series over the group size."""
    spec = figure10_spec(
        values=values,
        n=n,
        alpha=alpha,
        d_thresh=d_thresh,
        topologies=topologies,
        member_sets=member_sets,
        seed_offset=seed_offset,
    )
    return Figure10Result(points=run_spec_sweep(spec, executor=executor, obs=obs))
