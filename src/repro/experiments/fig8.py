"""Figure 8: the effect of ``D_thresh`` (paper §4.3.2).

Setup: N=100, N_G=30, α=0.2; D_thresh swept over four values (the paper's
axis runs 0.1–0.4); 10 topologies × 10 member sets per value; means with
95% confidence intervals.

Paper claims reproduced as assertions in the bench:

- the recovery-distance improvement grows (≈linearly) with D_thresh,
- at D_thresh=0.3 the recovery path shortens by ≈20% while delay and
  tree-cost penalties stay ≈5%.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.scenario import ScenarioConfig
from repro.experiments.sweeps import SweepPoint, run_sweep
from repro.experiments.tables import format_summary, format_table

DEFAULT_DTHRESH_VALUES = [0.1, 0.2, 0.3, 0.4]


@dataclass
class Figure8Result:
    points: list[SweepPoint] = field(default_factory=list)

    def point(self, d_thresh: float) -> SweepPoint:
        for p in self.points:
            if abs(p.parameter - d_thresh) < 1e-9:
                return p
        raise KeyError(f"no sweep point for D_thresh={d_thresh}")

    def render(self) -> str:
        rows = [
            [
                p.label,
                format_summary(p.rd_relative),
                format_summary(p.delay_relative),
                format_summary(p.cost_relative),
            ]
            for p in self.points
        ]
        table = format_table(
            ["D_thresh", "RD_relative", "D_relative", "Cost_relative"], rows
        )
        return table + (
            "\n(paper at 0.3: RD ≈ +20%, delay/cost penalties ≈ 5%; "
            "improvement grows with D_thresh)"
        )


def run_figure8(
    values: list[float] | None = None,
    n: int = 100,
    group_size: int = 30,
    alpha: float = 0.2,
    topologies: int = 10,
    member_sets: int = 10,
    seed_offset: int = 0,
    obs=None,
) -> Figure8Result:
    """Reproduce Figure 8's three series."""
    sweep = run_sweep(
        lambda d: ScenarioConfig(
            n=n, group_size=group_size, alpha=alpha, d_thresh=d
        ),
        values if values is not None else DEFAULT_DTHRESH_VALUES,
        topologies=topologies,
        member_sets=member_sets,
        seed_offset=seed_offset,
        obs=obs,
    )
    return Figure8Result(points=sweep)
