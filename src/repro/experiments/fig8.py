"""Figure 8: the effect of ``D_thresh`` (paper §4.3.2).

Setup: N=100, N_G=30, α=0.2; D_thresh swept over four values (the paper's
axis runs 0.1–0.4); 10 topologies × 10 member sets per value; means with
95% confidence intervals.

Paper claims reproduced as assertions in the bench:

- the recovery-distance improvement grows (≈linearly) with D_thresh,
- at D_thresh=0.3 the recovery path shortens by ≈20% while delay and
  tree-cost penalties stay ≈5%.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.experiments.exec.spec import ExperimentSpec
from repro.experiments.sweeps import SweepPoint, run_spec_sweep
from repro.experiments.tables import format_summary, format_table

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.exec.executor import Executor

DEFAULT_DTHRESH_VALUES = [0.1, 0.2, 0.3, 0.4]


@dataclass
class Figure8Result:
    points: list[SweepPoint] = field(default_factory=list)

    def point(self, d_thresh: float) -> SweepPoint:
        for p in self.points:
            if abs(p.parameter - d_thresh) < 1e-9:
                return p
        raise KeyError(f"no sweep point for D_thresh={d_thresh}")

    def render(self) -> str:
        rows = [
            [
                p.label,
                format_summary(p.rd_relative),
                format_summary(p.delay_relative),
                format_summary(p.cost_relative),
            ]
            for p in self.points
        ]
        table = format_table(
            ["D_thresh", "RD_relative", "D_relative", "Cost_relative"], rows
        )
        return table + (
            "\n(paper at 0.3: RD ≈ +20%, delay/cost penalties ≈ 5%; "
            "improvement grows with D_thresh)"
        )


def figure8_spec(
    values: list[float] | None = None,
    n: int = 100,
    group_size: int = 30,
    alpha: float = 0.2,
    topologies: int = 10,
    member_sets: int = 10,
    seed_offset: int = 0,
) -> ExperimentSpec:
    """The declarative spec behind Figure 8 (sweeps ``d_thresh``)."""
    return ExperimentSpec(
        n=n,
        group_size=group_size,
        alpha=alpha,
        sweep_parameter="d_thresh",
        sweep_values=tuple(values if values is not None else DEFAULT_DTHRESH_VALUES),
        topologies=topologies,
        member_sets=member_sets,
        seed_offset=seed_offset,
    )


def run_figure8(
    values: list[float] | None = None,
    n: int = 100,
    group_size: int = 30,
    alpha: float = 0.2,
    topologies: int = 10,
    member_sets: int = 10,
    seed_offset: int = 0,
    obs=None,
    executor: "Executor | None" = None,
) -> Figure8Result:
    """Reproduce Figure 8's three series."""
    spec = figure8_spec(
        values=values,
        n=n,
        group_size=group_size,
        alpha=alpha,
        topologies=topologies,
        member_sets=member_sets,
        seed_offset=seed_offset,
    )
    return Figure8Result(points=run_spec_sweep(spec, executor=executor, obs=obs))
