"""Protection figure family: reactive vs. precomputed restoration.

The paper's evaluation compares SMRP's local detour against the global
(PIM/MOSPF) detour.  The protection family adds the proactive design
points — per-link backup trees and precomputed alternate paths — and
this driver places all five on one table: for a grid of failure *rates*
(the fraction of candidate tree links failed per trial), it measures
restoration latency, recovery distance, restored/unrecoverable member
counts, and the standing state each mode pays for its speed:

========== =========================================================
``local``   SMRP tree, reactive local detours (no standing state)
``global``  SPF tree, re-convergence + re-join (no standing state)
``backup``  SPF tree + per-link backup trees (budget ``F``); covered
            failures switch over at recovery distance zero
``hybrid``  SMRP tree + per-link backup trees; uncovered failures use
            the local detour
``alternate`` SPF tree + per-member precomputed single-failure routes;
            misses fall back to the global detour
========== =========================================================

Every :class:`ProtectionPoint` is a work unit on the standard executor
protocol (``run(obs=..., cache=...)`` / ``content_key()`` /
``describe()``), so the family runs serial, pooled, or resilient with
checkpoint/resume — :class:`ProtectionPointResult` registers under the
``"protection_point"`` checkpoint type — and the rendered table is
byte-identical across all of them (the CI ``protection-smoke`` job
diffs it for real).  All measurements are *non-mutating*: each trial
plans the repair against the same pre-failure trees, so trials are
independent and their order is immaterial.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.core.protocol import SMRPConfig, SMRPProtocol
from repro.core.recovery import estimate_restoration_latency, repair_tree
from repro.errors import CheckpointError, ConfigurationError
from repro.experiments.scenario import validate_scenario_params
from repro.experiments.tables import format_table
from repro.multicast.backup_trees import (
    AlternatePathProtocol,
    BackupTreeProtocol,
)
from repro.multicast.group import random_member_set
from repro.multicast.spf_protocol import SPFMulticastProtocol
from repro.obs import NULL_OBS
from repro.routing.failure_view import FailureSet

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.exec.executor import Executor

#: Bumped when :class:`ProtectionPointResult`'s serialised layout
#: changes, so stale checkpoints are refused instead of misread.
PROTECT_PAYLOAD_VERSION = 1

#: Restoration modes, in render order.
MODES = ("local", "global", "backup", "hybrid", "alternate")


def _blank_mode_stats() -> dict:
    return {
        "trials_affected": 0,
        "members_cut": 0,
        "restored": 0,
        "unrecoverable": 0,
        "rd_sum": 0.0,
        "latency_sum": 0.0,
        "latency_max": 0.0,
        "switchover_trials": 0,
        "fallback_trials": 0,
        "strategies": {},
        "standing_links": 0,
        "standing_cost": 0.0,
    }


@dataclass(frozen=True)
class ProtectionPoint:
    """One grid point: a (topology, member set, failure rate) cell.

    ``failure_rate`` is the fraction of candidate links (the union of
    all five modes' tree links) failed per trial, at least one; each of
    the ``trials`` draws is seeded from
    ``(topology_seed, member_seed, trial)`` so the same point always
    fails the same links wherever it runs.
    """

    failure_rate: float
    n: int = 100
    group_size: int = 12
    alpha: float = 0.2
    beta: float = 0.25
    d_thresh: float = 0.3
    budget: int = 4
    trials: int = 3
    topology_seed: int = 0
    member_seed: int = 0

    def __post_init__(self) -> None:
        validate_scenario_params(
            n=self.n,
            group_size=self.group_size,
            alpha=self.alpha,
            beta=self.beta,
            d_thresh=self.d_thresh,
            knowledge="full",
        )
        if not 0 < self.failure_rate <= 1:
            raise ConfigurationError(
                f"failure_rate must be in (0, 1], got {self.failure_rate}"
            )
        if self.budget < 0:
            raise ConfigurationError(
                f"budget must be >= 0, got {self.budget}"
            )
        if self.trials < 1:
            raise ConfigurationError(f"trials must be >= 1, got {self.trials}")

    def waxman_config(self):
        from repro.graph.waxman import WaxmanConfig

        return WaxmanConfig(
            n=self.n, alpha=self.alpha, beta=self.beta, seed=self.topology_seed
        )

    def content_key(self) -> str:
        canonical = json.dumps(
            {"kind": "protection_point", **self._fields()},
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]

    def _fields(self) -> dict:
        from dataclasses import asdict

        return asdict(self)

    def describe(self) -> str:
        return (
            f"protection point rate={self.failure_rate:g} N={self.n} "
            f"N_G={self.group_size} F={self.budget} "
            f"seeds=({self.topology_seed},{self.member_seed})"
        )

    def run(self, obs=None, cache=None) -> "ProtectionPointResult":
        """Build all five engines once, then measure every trial.

        The engines share the executor's route cache, so the five
        builds (and the precomputed backup state) mostly reuse one
        another's SPF runs.  Per-trial measurement never mutates an
        engine: ``local``/``global`` plan through
        :func:`~repro.core.recovery.repair_tree` on the standing tree,
        the protection family through its ``plan_repair``.
        """
        obs = obs if obs is not None else NULL_OBS
        if cache is None:
            from repro.experiments.exec.cache import SubstrateCache

            cache = SubstrateCache()
        topology = cache.topology_for(self, obs=obs)
        routes = cache.routes
        rng = np.random.default_rng(self.member_seed)
        source = int(rng.integers(self.n))
        members = random_member_set(topology, source, self.group_size, rng)

        smrp_config = SMRPConfig(d_thresh=self.d_thresh, self_check=False)
        engines = {
            "local": SMRPProtocol(
                topology, source, config=smrp_config, obs=obs,
                route_cache=routes,
            ),
            "global": SPFMulticastProtocol(
                topology, source, self_check=False, route_cache=routes,
                obs=obs,
            ),
            "backup": BackupTreeProtocol(
                topology, source, mode="protection", budget=self.budget,
                route_cache=routes, obs=obs,
            ),
            "hybrid": BackupTreeProtocol(
                topology, source, mode="hybrid", budget=self.budget,
                smrp_config=smrp_config, route_cache=routes, obs=obs,
            ),
            "alternate": AlternatePathProtocol(
                topology, source, route_cache=routes, obs=obs,
            ),
        }
        stats = {mode: _blank_mode_stats() for mode in MODES}
        for mode in MODES:
            engines[mode].build(list(members))
            standing = getattr(engines[mode], "standing_links", None)
            if standing is not None:
                links = standing()
                stats[mode]["standing_links"] = len(links)
                stats[mode]["standing_cost"] = round(
                    sum(topology.cost(u, v) for u, v in links), 6
                )

        candidates = sorted(
            set().union(*(engines[mode].tree.tree_links() for mode in MODES))
        )
        per_trial = min(
            max(1, round(self.failure_rate * len(candidates))), len(candidates)
        )
        for trial in range(self.trials):
            trial_rng = np.random.default_rng(
                [self.topology_seed, self.member_seed, trial]
            )
            picked = trial_rng.choice(
                len(candidates), size=per_trial, replace=False
            )
            failures = FailureSet.links(
                *(candidates[i] for i in sorted(picked))
            )
            for mode in MODES:
                engine = engines[mode]
                cut = engine.tree.disconnected_members(failures)
                if mode in ("local", "global"):
                    report = repair_tree(
                        topology,
                        engine.tree,
                        failures,
                        strategy=mode,
                        obs=obs,
                        route_cache=routes,
                    )
                else:
                    report = engine.plan_repair(failures)
                entry = stats[mode]
                entry["members_cut"] += len(cut)
                if cut:
                    entry["trials_affected"] += 1
                entry["unrecoverable"] += len(report.unrecoverable)
                if report.strategy == "backup":
                    entry["switchover_trials"] += 1
                elif mode in ("backup", "hybrid") and cut:
                    entry["fallback_trials"] += 1
                restored = [
                    r for r in report.recoveries if not r.already_connected
                ]
                entry["restored"] += len(restored)
                entry["rd_sum"] = round(
                    entry["rd_sum"]
                    + sum(r.recovery_distance for r in restored),
                    6,
                )
                for recovery in restored:
                    latency = estimate_restoration_latency(
                        topology, report.repaired_tree, recovery, failures
                    )
                    entry["latency_sum"] = round(
                        entry["latency_sum"] + latency, 6
                    )
                    entry["latency_max"] = round(
                        max(entry["latency_max"], latency), 6
                    )
                    strategies = entry["strategies"]
                    strategies[recovery.strategy] = (
                        strategies.get(recovery.strategy, 0) + 1
                    )
        return ProtectionPointResult(
            point_key=self.content_key(),
            failure_rate=self.failure_rate,
            budget=self.budget,
            trials=self.trials,
            links_failed_per_trial=per_trial,
            modes=stats,
        )


@dataclass
class ProtectionPointResult:
    """One grid point's outcome — plain data, checkpointable."""

    #: Checkpoint type tag (see ``repro.experiments.exec.checkpoint``).
    checkpoint_type = "protection_point"

    point_key: str
    failure_rate: float
    budget: int
    trials: int
    links_failed_per_trial: int
    modes: dict = field(default_factory=dict)
    payload_version: int = PROTECT_PAYLOAD_VERSION

    def to_dict(self) -> dict:
        return {
            "payload_version": self.payload_version,
            "point_key": self.point_key,
            "failure_rate": self.failure_rate,
            "budget": self.budget,
            "trials": self.trials,
            "links_failed_per_trial": self.links_failed_per_trial,
            "modes": self.modes,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ProtectionPointResult":
        version = payload.get("payload_version")
        if version != PROTECT_PAYLOAD_VERSION:
            raise CheckpointError(
                f"protection point payload version {version!r} is not "
                f"{PROTECT_PAYLOAD_VERSION}; refusing to reinterpret"
            )
        return cls(**payload)


@dataclass
class ProtectionFigureResult:
    """Merged grid, rendered as the resource-vs-recovery-speed table.

    Aggregation and rendering depend only on the merged results (in
    work-unit order) — never on executor kind or scheduling — which is
    what the serial/pooled/resilient byte-identity guarantee is
    asserted against.
    """

    budget: int
    results: list[ProtectionPointResult] = field(default_factory=list)

    def aggregate(self) -> dict:
        """``{failure_rate: {mode: summed stats}}``, rates ascending."""
        merged: dict = {}
        for result in self.results:
            by_mode = merged.setdefault(result.failure_rate, {})
            for mode, entry in result.modes.items():
                into = by_mode.setdefault(mode, _blank_mode_stats())
                for key in (
                    "trials_affected", "members_cut", "restored",
                    "unrecoverable", "switchover_trials", "fallback_trials",
                    "standing_links",
                ):
                    into[key] += entry[key]
                for key in ("rd_sum", "latency_sum", "standing_cost"):
                    into[key] = round(into[key] + entry[key], 6)
                into["latency_max"] = max(
                    into["latency_max"], entry["latency_max"]
                )
                for strategy, count in entry["strategies"].items():
                    into["strategies"][strategy] = (
                        into["strategies"].get(strategy, 0) + count
                    )
        return dict(sorted(merged.items()))

    def render(self) -> str:
        merged = self.aggregate()
        if not merged:
            return "no protection points were run"
        rows = []
        for rate, by_mode in merged.items():
            for mode in MODES:
                if mode not in by_mode:
                    continue
                entry = by_mode[mode]
                restored = entry["restored"]
                mean_rd = entry["rd_sum"] / restored if restored else 0.0
                mean_latency = (
                    entry["latency_sum"] / restored if restored else 0.0
                )
                provenance = "+".join(
                    f"{count}{strategy[0]}"
                    for strategy, count in sorted(entry["strategies"].items())
                ) or "-"
                rows.append([
                    f"{rate:g}",
                    mode,
                    str(entry["members_cut"]),
                    str(restored),
                    str(entry["unrecoverable"]),
                    f"{mean_rd:.2f}",
                    f"{mean_latency:.1f}",
                    f"{entry['latency_max']:.1f}",
                    provenance,
                    str(entry["standing_links"]),
                    f"{entry['standing_cost']:.1f}",
                ])
        table = format_table(
            [
                "rate", "mode", "cut", "restored", "unrec", "mean-RD",
                "mean-lat", "worst-lat", "via", "standing", "state-cost",
            ],
            rows,
        )
        points = len(self.results)
        return (
            f"{table}\n"
            f"({points} grid points, budget F={self.budget}; 'via' counts "
            "restored members by strategy — a=alternate, b=backup, "
            "g=global, l=local; 'standing'/'state-cost' are links reserved "
            "beyond the working tree, the price of precomputation)"
        )


def run_protection_figure(
    rates: tuple = (0.02, 0.05, 0.1),
    n: int = 100,
    group_size: int = 12,
    alpha: float = 0.2,
    d_thresh: float = 0.3,
    budget: int = 4,
    trials: int = 3,
    topologies: int = 4,
    member_sets: int = 2,
    seed_offset: int = 0,
    obs=None,
    executor: "Executor | None" = None,
) -> ProtectionFigureResult:
    """Run the protection grid: every rate x topology x member set.

    ``executor`` decides how the points run (a passed-in executor stays
    open — callers own its lifecycle); by default a transient serial
    one is used.  Results merge in work-unit order, so the rendered
    table is identical however the points were scheduled.
    """
    from repro.experiments.exec.executor import SerialExecutor

    points = [
        ProtectionPoint(
            failure_rate=rate,
            n=n,
            group_size=group_size,
            alpha=alpha,
            d_thresh=d_thresh,
            budget=budget,
            trials=trials,
            topology_seed=seed_offset + t,
            member_seed=seed_offset + 5000 + m,
        )
        for rate in rates
        for t in range(topologies)
        for m in range(member_sets)
    ]
    owned = executor is None
    if executor is None:
        executor = SerialExecutor()
    try:
        results = executor.map_units(points, obs=obs)
    finally:
        if owned:
            executor.close()
    return ProtectionFigureResult(budget=budget, results=list(results))
