"""Parameter sweeps over many seeded scenarios.

The paper's Figures 8–10 each evaluate one parameter at several values,
with 10 random topologies × 10 random member sets (100 scenarios) per
value, reporting means with 95% confidence intervals.  :func:`run_sweep`
reproduces that procedure for arbitrary scenario families, and
:func:`run_spec_sweep` does the same for a declarative
:class:`~repro.experiments.exec.spec.ExperimentSpec`.

Both accept an :class:`~repro.experiments.exec.executor.Executor`; pass a
:class:`~repro.experiments.exec.executor.ParallelExecutor` to fan the
scenario grid out over worker processes (results are identical to serial
execution — the determinism suite asserts it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.errors import ConfigurationError
from repro.metrics.stats import Summary, summarize
from repro.obs import NULL_OBS, Observability
from repro.experiments.runner import ScenarioResult
from repro.experiments.scenario import ScenarioConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.exec.executor import Executor
    from repro.experiments.exec.spec import ExperimentSpec


@dataclass
class SweepPoint:
    """Aggregated results at one parameter value.

    A point is only meaningful over at least one scenario, so an empty
    ``scenarios`` list is rejected at construction — not lazily when an
    aggregate property happens to be read.
    """

    label: str
    parameter: float
    scenarios: list[ScenarioResult] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.scenarios:
            raise ConfigurationError(
                f"sweep point {self.label!r} has no scenarios; "
                "construct points from at least one ScenarioResult"
            )

    @property
    def rd_relative(self) -> Summary:
        samples = [x for r in self.scenarios for x in r.rd_relative]
        return summarize(samples)

    @property
    def delay_relative(self) -> Summary:
        samples = [x for r in self.scenarios for x in r.delay_relative]
        return summarize(samples)

    @property
    def cost_relative(self) -> Summary:
        return summarize([r.cost_relative for r in self.scenarios])

    @property
    def average_degree(self) -> float:
        return sum(r.average_degree for r in self.scenarios) / len(self.scenarios)

    @property
    def unrecoverable_members(self) -> int:
        return sum(r.unrecoverable_members for r in self.scenarios)


def scenario_grid(
    base: ScenarioConfig, topologies: int, member_sets: int, seed_offset: int = 0
) -> list[ScenarioConfig]:
    """The paper's seeding grid: ``topologies × member_sets`` scenarios.

    Seeds are derived deterministically so that two sweep points sharing
    the same grid sizes face the *same* topologies and member sets — the
    paper varies one parameter at a time over a common random ensemble.
    """
    if topologies < 1 or member_sets < 1:
        raise ConfigurationError("grid dimensions must be positive")
    configs = []
    for t in range(topologies):
        for m in range(member_sets):
            configs.append(
                base.with_seeds(
                    topology_seed=seed_offset + t,
                    member_seed=seed_offset + 1000 * (t + 1) + m,
                )
            )
    return configs


def run_sweep(
    label_fn: Callable[[float], ScenarioConfig],
    values: list[float],
    topologies: int = 10,
    member_sets: int = 10,
    seed_offset: int = 0,
    obs: Observability | None = None,
    executor: "Executor | None" = None,
) -> list[SweepPoint]:
    """Evaluate ``label_fn(value)`` over the seeding grid for each value.

    A provided ``obs`` is shared by every scenario, so counters and span
    timings aggregate over the whole sweep.  A provided ``executor``
    decides how scenarios run (and stays open — callers own its
    lifecycle); by default a transient
    :class:`~repro.experiments.exec.executor.SerialExecutor` is used.
    """
    from repro.experiments.exec.executor import SerialExecutor

    obs = obs if obs is not None else NULL_OBS
    owned = executor is None
    if executor is None:
        executor = SerialExecutor()
    try:
        points: list[SweepPoint] = []
        for value in values:
            base = label_fn(value)
            configs = scenario_grid(base, topologies, member_sets, seed_offset)
            with obs.span(f"sweep.point.{value:g}"):
                results = executor.map_scenarios(configs, obs=obs)
            points.append(
                SweepPoint(label=f"{value:g}", parameter=value, scenarios=results)
            )
        return points
    finally:
        if owned:
            executor.close()


def run_spec_sweep(
    spec: "ExperimentSpec",
    executor: "Executor | None" = None,
    obs: Observability | None = None,
) -> list[SweepPoint]:
    """Execute a declarative :class:`ExperimentSpec` into sweep points.

    The executor sees the whole sweep as one batch of work units (so a
    parallel executor keeps workers busy across sweep-point boundaries).
    A passed-in executor stays open; a default serial one is transient.
    """
    from repro.experiments.exec.executor import SerialExecutor

    owned = executor is None
    if executor is None:
        executor = SerialExecutor()
    try:
        return executor.run_sweep(spec, obs=obs)
    finally:
        if owned:
            executor.close()
