"""Parameter sweeps over many seeded scenarios.

The paper's Figures 8–10 each evaluate one parameter at several values,
with 10 random topologies × 10 random member sets (100 scenarios) per
value, reporting means with 95% confidence intervals.  :func:`run_sweep`
reproduces that procedure for arbitrary scenario families.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.errors import ConfigurationError
from repro.metrics.stats import Summary, summarize
from repro.obs import NULL_OBS, Observability
from repro.experiments.runner import ScenarioResult, run_scenario
from repro.experiments.scenario import ScenarioConfig


@dataclass
class SweepPoint:
    """Aggregated results at one parameter value."""

    label: str
    parameter: float
    scenarios: list[ScenarioResult] = field(default_factory=list)

    @property
    def rd_relative(self) -> Summary:
        samples = [x for r in self.scenarios for x in r.rd_relative]
        return summarize(samples)

    @property
    def delay_relative(self) -> Summary:
        samples = [x for r in self.scenarios for x in r.delay_relative]
        return summarize(samples)

    @property
    def cost_relative(self) -> Summary:
        return summarize([r.cost_relative for r in self.scenarios])

    @property
    def average_degree(self) -> float:
        if not self.scenarios:
            raise ConfigurationError("sweep point has no scenarios")
        return sum(r.average_degree for r in self.scenarios) / len(self.scenarios)

    @property
    def unrecoverable_members(self) -> int:
        return sum(r.unrecoverable_members for r in self.scenarios)


def scenario_grid(
    base: ScenarioConfig, topologies: int, member_sets: int, seed_offset: int = 0
) -> list[ScenarioConfig]:
    """The paper's seeding grid: ``topologies × member_sets`` scenarios.

    Seeds are derived deterministically so that two sweep points sharing
    the same grid sizes face the *same* topologies and member sets — the
    paper varies one parameter at a time over a common random ensemble.
    """
    if topologies < 1 or member_sets < 1:
        raise ConfigurationError("grid dimensions must be positive")
    configs = []
    for t in range(topologies):
        for m in range(member_sets):
            configs.append(
                base.with_seeds(
                    topology_seed=seed_offset + t,
                    member_seed=seed_offset + 1000 * (t + 1) + m,
                )
            )
    return configs


def run_sweep(
    label_fn: Callable[[float], ScenarioConfig],
    values: list[float],
    topologies: int = 10,
    member_sets: int = 10,
    seed_offset: int = 0,
    obs: Observability | None = None,
) -> list[SweepPoint]:
    """Evaluate ``label_fn(value)`` over the seeding grid for each value.

    A provided ``obs`` is shared by every scenario, so counters and span
    timings aggregate over the whole sweep.
    """
    obs = obs if obs is not None else NULL_OBS
    points: list[SweepPoint] = []
    for value in values:
        base = label_fn(value)
        point = SweepPoint(label=f"{value:g}", parameter=value)
        with obs.span(f"sweep.point.{value:g}"):
            for config in scenario_grid(base, topologies, member_sets, seed_offset):
                point.scenarios.append(run_scenario(config, obs=obs))
        points.append(point)
    return points
