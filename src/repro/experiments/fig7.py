"""Figure 7: local detour vs. global detour (paper §4.3.1).

Setup: N=100, N_G=30, α=0.2, D_thresh=0.3; five random topologies, one
random member group each.  For every member, the worst-case failure (the
source-incident link of its path) is applied and the recovery distance is
measured twice: via the global detour on the SPF baseline tree (x-axis)
and via the local detour on the SMRP tree (y-axis).  The paper observes
most points below the ``y = x`` diagonal with an average ≈33% reduction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.experiments.scenario import ScenarioConfig
from repro.experiments.tables import format_table
from repro.metrics.stats import Summary, summarize

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.exec.executor import Executor


@dataclass(frozen=True)
class Figure7Point:
    """One scatter point: a member in one scenario."""

    topology_seed: int
    member: int
    rd_global: float
    rd_local: float

    @property
    def below_diagonal(self) -> bool:
        return self.rd_local < self.rd_global


@dataclass
class Figure7Result:
    points: list[Figure7Point] = field(default_factory=list)

    @property
    def fraction_below_diagonal(self) -> float:
        if not self.points:
            return 0.0
        strictly_below = sum(1 for p in self.points if p.below_diagonal)
        return strictly_below / len(self.points)

    @property
    def fraction_at_or_below_diagonal(self) -> float:
        if not self.points:
            return 0.0
        at_or_below = sum(1 for p in self.points if p.rd_local <= p.rd_global)
        return at_or_below / len(self.points)

    @property
    def reduction(self) -> Summary:
        """Per-member relative reduction of the recovery distance."""
        return summarize(
            [(p.rd_global - p.rd_local) / p.rd_global for p in self.points]
        )

    def render(self) -> str:
        if not self.points:
            return "no comparable members (every worst-case failure was a bridge)"
        rows = [
            [
                str(p.topology_seed),
                str(p.member),
                f"{p.rd_global:.2f}",
                f"{p.rd_local:.2f}",
                "yes" if p.below_diagonal else "no",
            ]
            for p in self.points
        ]
        table = format_table(
            ["topo", "member", "RD global (SPF)", "RD local (SMRP)", "below y=x"],
            rows,
        )
        summary = self.reduction
        footer = (
            f"\npoints: {len(self.points)}  "
            f"below y=x: {100 * self.fraction_below_diagonal:.0f}%  "
            f"avg reduction: {100 * summary.mean:.0f}% "
            f"(paper: most below, avg 33%)"
        )
        return table + footer


def run_figure7(
    topologies: int = 5,
    n: int = 100,
    group_size: int = 30,
    alpha: float = 0.2,
    d_thresh: float = 0.3,
    seed_offset: int = 0,
    obs=None,
    executor: "Executor | None" = None,
) -> Figure7Result:
    """Reproduce Figure 7's scatter data.

    ``executor`` decides how the per-topology scenarios run (a passed-in
    executor stays open — callers own its lifecycle); by default a
    transient serial one is used.
    """
    from repro.experiments.exec.executor import SerialExecutor

    configs = [
        ScenarioConfig(
            n=n,
            group_size=group_size,
            alpha=alpha,
            d_thresh=d_thresh,
            topology_seed=seed_offset + t,
            member_seed=seed_offset + 5000 + t,
        )
        for t in range(topologies)
    ]
    owned = executor is None
    if executor is None:
        executor = SerialExecutor()
    try:
        scenarios = executor.map_scenarios(configs, obs=obs)
    finally:
        if owned:
            executor.close()
    result = Figure7Result()
    for config, scenario in zip(configs, scenarios):
        for m in scenario.measurements:
            if not m.comparable:
                continue
            result.points.append(
                Figure7Point(
                    topology_seed=config.topology_seed,
                    member=m.member,
                    rd_global=m.rd_spf_global,
                    rd_local=m.rd_smrp_local,
                )
            )
    return result
