"""Figure 9: the effect of the node degree / α (paper §4.3.3).

Setup: N=100, N_G=30, D_thresh=0.3; α swept over {0.15, 0.2, 0.25, 0.3};
100 scenarios per value.  The paper annotates each α with the realised
average node degree and observes that SMRP's improvement diminishes
slightly as connectivity grows, yet remains useful (≈12% reduction even
at average degree 10 in their follow-up check — reproduced here by an
optional high-degree extra point).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.experiments.exec.spec import ExperimentSpec
from repro.experiments.sweeps import SweepPoint, run_spec_sweep
from repro.experiments.tables import format_summary, format_table

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.exec.executor import Executor

DEFAULT_ALPHA_VALUES = [0.15, 0.2, 0.25, 0.3]


@dataclass
class Figure9Result:
    points: list[SweepPoint] = field(default_factory=list)

    def point(self, alpha: float) -> SweepPoint:
        for p in self.points:
            if abs(p.parameter - alpha) < 1e-9:
                return p
        raise KeyError(f"no sweep point for alpha={alpha}")

    def render(self) -> str:
        rows = [
            [
                p.label,
                f"{p.average_degree:.2f}",
                format_summary(p.rd_relative),
                format_summary(p.delay_relative),
                format_summary(p.cost_relative),
            ]
            for p in self.points
        ]
        table = format_table(
            ["alpha", "avg degree", "RD_relative", "D_relative", "Cost_relative"],
            rows,
        )
        return table + (
            "\n(paper: improvement shrinks slightly as the degree grows; "
            "still ≈12% at degree 10)"
        )


def figure9_spec(
    values: list[float] | None = None,
    n: int = 100,
    group_size: int = 30,
    d_thresh: float = 0.3,
    topologies: int = 10,
    member_sets: int = 10,
    seed_offset: int = 0,
) -> ExperimentSpec:
    """The declarative spec behind Figure 9 (sweeps ``alpha``)."""
    return ExperimentSpec(
        n=n,
        group_size=group_size,
        d_thresh=d_thresh,
        sweep_parameter="alpha",
        sweep_values=tuple(values if values is not None else DEFAULT_ALPHA_VALUES),
        topologies=topologies,
        member_sets=member_sets,
        seed_offset=seed_offset,
    )


def run_figure9(
    values: list[float] | None = None,
    n: int = 100,
    group_size: int = 30,
    d_thresh: float = 0.3,
    topologies: int = 10,
    member_sets: int = 10,
    seed_offset: int = 0,
    obs=None,
    executor: "Executor | None" = None,
) -> Figure9Result:
    """Reproduce Figure 9's series over α."""
    spec = figure9_spec(
        values=values,
        n=n,
        group_size=group_size,
        d_thresh=d_thresh,
        topologies=topologies,
        member_sets=member_sets,
        seed_offset=seed_offset,
    )
    return Figure9Result(points=run_spec_sweep(spec, executor=executor, obs=obs))
