"""Restoration-latency distribution figures: percentiles over thousands
of groups.

Every other figure family reports *means*; this one reports the shape.
For each engine it hosts ``groups`` controller sessions on the shared
topology, injects the spec's failure, and aggregates every affected
group's restoration latency — both the slowest-member ``latency_s``
(the group is restored when its last member is) and the per-group
``mean_latency_s`` — into :class:`~repro.obs.registry.HdrHistogram`
quantile trackers.  The rendered table is p50/p90/p99/p99.9/max/mean
per engine: tail behaviour is where precomputed protection
differentiates from reactive repair, and a p99.9 over thousands of
groups is the honest version of that claim.

Execution rides the controller's existing work-unit protocol: the
engines' :class:`~repro.controller.service.ServiceShard` units are
concatenated into **one** executor batch (so a process pool interleaves
engines freely) and results are re-grouped by engine afterwards.
Because hdr histograms derive every reported value from merged integer
bucket counts — never a running float sum — the table is byte-identical
across serial, pooled, resilient, and checkpoint-resumed executors (the
CI ``dist-smoke`` job diffs it for real; shard checkpoints reuse the
``"service_shard"`` type).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.controller.service import ServiceShard, plan_shards
from repro.controller.spec import PROTOCOLS, ServiceSpec
from repro.errors import ConfigurationError
from repro.experiments.tables import format_table
from repro.obs import NULL_OBS
from repro.obs.registry import HdrHistogram

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.exec.executor import Executor

#: Engines compared by the full figure, in render order.
ENGINES: tuple[str, ...] = PROTOCOLS

#: Quantiles rendered per engine/metric row.
QUANTILES: tuple[tuple[str, float], ...] = (
    ("p50", 0.5),
    ("p90", 0.9),
    ("p99", 0.99),
    ("p99.9", 0.999),
)


def build_engine_spec(
    engine: str,
    groups: int,
    *,
    n: int = 100,
    alpha: float = 0.2,
    beta: float = 0.25,
    topology_seed: int = 0,
    member_seed: int = 0,
    sources: int = 8,
    d_thresh: float = 0.3,
    protect_budget: int = 4,
    workload: str = "static",
    failure: str = "auto",
    shard_size: int = 250,
) -> ServiceSpec:
    """One engine's :class:`ServiceSpec` — identical population, failure,
    and shard cuts for every engine, so the engines differ *only* in how
    they restore."""
    return ServiceSpec(
        n=n,
        alpha=alpha,
        beta=beta,
        topology_seed=topology_seed,
        member_seed=member_seed,
        groups=groups,
        sources=sources,
        protocol=engine,
        d_thresh=d_thresh,
        protect_budget=protect_budget,
        workload=workload,
        failure=failure,
        shard_size=shard_size,
    )


@dataclass
class EngineDistribution:
    """One engine's merged outcome: rows plus the two latency histograms.

    ``worst`` holds the slowest-member latency of each restored group,
    ``mean`` the group-mean latency; ``n`` (their common count) excludes
    affected groups with zero restored members — they have no latency.
    """

    engine: str
    spec: ServiceSpec
    failure: str
    members: int
    events: int
    rows: tuple
    worst: HdrHistogram
    mean: HdrHistogram

    @property
    def affected(self) -> int:
        return len(self.rows)

    @property
    def restored(self) -> int:
        return sum(row.restored for row in self.rows)

    @property
    def unrecoverable(self) -> int:
        return sum(row.unrecoverable for row in self.rows)


@dataclass
class DistributionResult:
    """The merged figure: one :class:`EngineDistribution` per engine."""

    groups: int
    engines: list[EngineDistribution] = field(default_factory=list)

    def render(self) -> str:
        if not self.engines:
            return "no engines were run"
        spec = self.engines[0].spec
        lines = [
            "== restoration-latency distribution ==",
            f"population: {self.groups} groups per engine on waxman "
            f"n={spec.n} alpha={spec.alpha:g} seed={spec.topology_seed} "
            f"(sources={spec.sources}, workload={spec.workload})",
            f"failure: {self.engines[0].failure}",
            "",
        ]
        summary_rows = [
            (
                dist.engine,
                str(self.groups),
                str(dist.members),
                str(dist.affected),
                str(dist.restored),
                str(dist.unrecoverable),
            )
            for dist in self.engines
        ]
        lines.append(
            format_table(
                ("engine", "groups", "members", "affected", "restored",
                 "unrec"),
                summary_rows,
            )
        )
        lines.append("")
        lines.append(
            "latency quantiles over restored groups "
            "('worst' = slowest member, 'mean' = group mean; "
            "model time units):"
        )
        quantile_rows = []
        for dist in self.engines:
            for label, hist in (("worst", dist.worst), ("mean", dist.mean)):
                cells = [dist.engine, label, str(hist.count)]
                if hist.count:
                    cells.extend(
                        f"{hist.quantile(q):.1f}" for _, q in QUANTILES
                    )
                    cells.append(f"{hist.max:.1f}")
                    cells.append(f"{hist.mean:.1f}")
                else:
                    cells.extend("—" for _ in range(len(QUANTILES) + 2))
                quantile_rows.append(cells)
        lines.append(
            format_table(
                ("engine", "metric", "n",
                 *(label for label, _ in QUANTILES), "max", "mean"),
                quantile_rows,
            )
        )
        return "\n".join(lines)


def run_distribution_figure(
    engines: tuple = ENGINES,
    groups: int = 2000,
    n: int = 100,
    alpha: float = 0.2,
    sources: int = 8,
    d_thresh: float = 0.3,
    protect_budget: int = 4,
    workload: str = "static",
    failure: str = "auto",
    shard_size: int = 250,
    topology_seed: int = 0,
    member_seed: int = 0,
    obs=None,
    executor: "Executor | None" = None,
) -> DistributionResult:
    """Run every engine's shards as one batch; aggregate per engine.

    ``executor`` decides how the shards run (a passed-in executor stays
    open — callers own its lifecycle); by default a transient serial one
    is used.  The per-engine histograms are rebuilt from the merged rows
    parent-side, so scheduling cannot influence any rendered value.
    """
    from repro.experiments.exec.executor import SerialExecutor

    obs = obs if obs is not None else NULL_OBS
    if not engines:
        raise ConfigurationError("distribution figure needs >= 1 engine")
    specs = [
        build_engine_spec(
            engine,
            groups,
            n=n,
            alpha=alpha,
            topology_seed=topology_seed,
            member_seed=member_seed,
            sources=sources,
            d_thresh=d_thresh,
            protect_budget=protect_budget,
            workload=workload,
            failure=failure,
            shard_size=shard_size,
        )
        for engine in engines
    ]
    batches: list[list[ServiceShard]] = [plan_shards(spec) for spec in specs]
    flat = [shard for shards in batches for shard in shards]
    owned = executor is None
    if executor is None:
        executor = SerialExecutor()
    try:
        results = executor.map_units(flat, obs=obs)
    finally:
        if owned:
            executor.close()

    out = DistributionResult(groups=groups)
    cursor = 0
    for spec, shards in zip(specs, batches):
        engine_results = results[cursor:cursor + len(shards)]
        cursor += len(shards)
        rows: list = []
        members = 0
        events = 0
        failure_text = "no failures"
        for result in engine_results:
            rows.extend(result.rows)
            members += result.members
            events += result.events
            failure_text = result.failure
        worst = HdrHistogram(f"dist.latency.{spec.protocol}")
        mean = HdrHistogram(f"dist.mean_latency.{spec.protocol}")
        obs_worst = obs.hdr_histogram(f"dist.latency.{spec.protocol}")
        obs_mean = obs.hdr_histogram(f"dist.mean_latency.{spec.protocol}")
        for row in rows:
            if not row.restored:
                continue  # nothing came back: no latency to speak of
            worst.observe(row.latency_s)
            mean.observe(row.mean_latency_s)
            obs_worst.observe(row.latency_s)
            obs_mean.observe(row.mean_latency_s)
        obs.counter("dist.groups").inc(spec.groups)
        obs.counter("dist.rows").inc(len(rows))
        out.engines.append(
            EngineDistribution(
                engine=spec.protocol,
                spec=spec,
                failure=failure_text,
                members=members,
                events=events,
                rows=tuple(rows),
                worst=worst,
                mean=mean,
            )
        )
    return out
