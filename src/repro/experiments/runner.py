"""Run one scenario: build both trees, fail worst-case links, measure.

For a scenario this runner reproduces the paper's §4.2/§4.3 procedure:

1. build the multicast tree twice over the same topology and join order —
   once with SMRP, once with the SPF baseline;
2. for every member, apply the *worst-case* failure (the source-incident
   link on that member's path — evaluated separately per tree, since the
   trees route members differently);
3. measure the recovery distance: **local detour on the SMRP tree** vs.
   **global detour (post-re-convergence SPF re-join) on the SPF tree** —
   the two complete systems the paper contrasts;
4. measure end-to-end delays per member and the total tree cost on both
   trees.

Cross strategies (local detour on the SPF tree, global on SMRP) are also
recorded so the ablation benches can separate how much of the win comes
from the tree shape versus the recovery rule.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import TYPE_CHECKING

from repro.graph.topology import NodeId, Topology
from repro.core.protocol import SMRPConfig, SMRPProtocol
from repro.metrics.recovery_metrics import worst_case_recovery
from repro.metrics.relative import (
    relative_cost,
    relative_delay,
    relative_recovery_distance,
)
from repro.multicast.spf_protocol import SPFMulticastProtocol
from repro.multicast.tree import MulticastTree
from repro.obs import NULL_OBS, Observability
from repro.experiments.scenario import ScenarioConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.exec.cache import SubstrateCache


@dataclass
class MemberMeasurement:
    """Per-member outcome of one scenario."""

    member: NodeId
    rd_spf_global: float | None
    rd_smrp_local: float | None
    rd_spf_local: float | None
    rd_smrp_global: float | None
    delay_spf: float
    delay_smrp: float

    @property
    def comparable(self) -> bool:
        """True when both headline strategies produced a recovery."""
        return (
            self.rd_spf_global is not None
            and self.rd_smrp_local is not None
            and self.rd_spf_global > 0
        )

    def __repr__(self) -> str:
        def fmt(value: float | None) -> str:
            return f"{value:.1f}" if value is not None else "—"

        return (
            f"<MemberMeasurement {self.member}: "
            f"RD spf={fmt(self.rd_spf_global)} smrp={fmt(self.rd_smrp_local)}, "
            f"delay spf={self.delay_spf:.1f} smrp={self.delay_smrp:.1f}>"
        )


@dataclass
class ScenarioResult:
    """Everything measured in one scenario."""

    config: ScenarioConfig
    source: NodeId
    members: list[NodeId]
    average_degree: float
    cost_spf: float
    cost_smrp: float
    measurements: list[MemberMeasurement] = field(default_factory=list)
    smrp_fallback_joins: int = 0
    smrp_reshapes: int = 0

    # -- the paper's relative metrics -----------------------------------
    @property
    def rd_relative(self) -> list[float]:
        """``RD_relative`` per member (positive: SMRP recovers shorter)."""
        return [
            relative_recovery_distance(m.rd_spf_global, m.rd_smrp_local)
            for m in self.measurements
            if m.comparable
        ]

    @property
    def delay_relative(self) -> list[float]:
        """``D_relative`` per member (positive: SMRP's delay penalty)."""
        return [
            relative_delay(m.delay_spf, m.delay_smrp)
            for m in self.measurements
            if m.delay_spf > 0
        ]

    @property
    def cost_relative(self) -> float:
        """``Cost_relative`` of the whole tree."""
        return relative_cost(self.cost_spf, self.cost_smrp)

    @property
    def unrecoverable_members(self) -> int:
        return sum(1 for m in self.measurements if not m.comparable)

    # -- checkpoint (de)serialization -----------------------------------
    #: Payload layout version, bumped whenever the dict shape changes so a
    #: stale checkpoint is rejected instead of half-read.
    PAYLOAD_VERSION = 1

    def to_dict(self) -> dict:
        """JSON-ready payload that round-trips exactly through
        :meth:`from_dict` (Python's JSON float encoding is lossless, so a
        restored result is ``==`` to the original — the checkpoint suite
        asserts byte-identical rendered tables)."""
        return {
            "version": self.PAYLOAD_VERSION,
            "config": asdict(self.config),
            "source": self.source,
            "members": list(self.members),
            "average_degree": self.average_degree,
            "cost_spf": self.cost_spf,
            "cost_smrp": self.cost_smrp,
            "smrp_fallback_joins": self.smrp_fallback_joins,
            "smrp_reshapes": self.smrp_reshapes,
            "measurements": [asdict(m) for m in self.measurements],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ScenarioResult":
        from repro.errors import CheckpointError

        version = payload.get("version")
        if version != cls.PAYLOAD_VERSION:
            raise CheckpointError(
                f"unsupported ScenarioResult payload version {version!r} "
                f"(expected {cls.PAYLOAD_VERSION})"
            )
        return cls(
            config=ScenarioConfig(**payload["config"]),
            source=payload["source"],
            members=list(payload["members"]),
            average_degree=payload["average_degree"],
            cost_spf=payload["cost_spf"],
            cost_smrp=payload["cost_smrp"],
            smrp_fallback_joins=payload["smrp_fallback_joins"],
            smrp_reshapes=payload["smrp_reshapes"],
            measurements=[
                MemberMeasurement(**m) for m in payload["measurements"]
            ],
        )

    def summary(self) -> str:
        """One-line digest: member count, costs, and the headline metrics."""
        parts = [
            f"{len(self.members)} members",
            f"cost spf={self.cost_spf:.1f} smrp={self.cost_smrp:.1f} "
            f"({self.cost_relative:+.1%})",
        ]
        rd = self.rd_relative
        if rd:
            parts.append(f"RD_rel mean {sum(rd) / len(rd):+.1%} (n={len(rd)})")
        delays = self.delay_relative
        if delays:
            parts.append(f"D_rel mean {sum(delays) / len(delays):+.1%}")
        if self.smrp_reshapes:
            parts.append(f"{self.smrp_reshapes} reshapes")
        if self.unrecoverable_members:
            parts.append(f"{self.unrecoverable_members} unrecoverable")
        return ", ".join(parts)

    def __repr__(self) -> str:
        return f"<ScenarioResult {self.config.describe()}: {self.summary()}>"


def run_scenario(
    config: ScenarioConfig,
    obs: Observability | None = None,
    cache: "SubstrateCache | None" = None,
) -> ScenarioResult:
    """Execute one scenario end to end.

    Passing an enabled :class:`~repro.obs.Observability` yields span
    timings for each stage (topology, both tree builds, measurement),
    the SMRP engine's counters, and recovery-path hop histograms.

    Passing a :class:`~repro.experiments.exec.cache.SubstrateCache`
    reuses generated topologies and failure-free SPF state across
    scenarios; results are identical with or without it (topologies are
    deterministic functions of their config, and cached routes are
    exactly what Dijkstra would recompute).
    """
    obs = obs if obs is not None else NULL_OBS
    if obs.tracer is not None:
        # Episode ids and headers carry the scenario content key, the same
        # key checkpoints and flight records use — traces join offline.
        obs.tracer.begin_scenario(config.content_key())
    route_cache = cache.routes if cache is not None else None
    with obs.span("scenario.topology"):
        if cache is not None:
            topology = cache.topology_for(config, obs=obs)
        else:
            topology = config.build_topology()
        source, members = config.pick_participants(topology)

    with obs.span("scenario.build.spf"):
        spf = SPFMulticastProtocol(
            topology, source, self_check=False, route_cache=route_cache, obs=obs
        )
        spf_tree = spf.build(members)

    with obs.span("scenario.build.smrp"):
        smrp = SMRPProtocol(
            topology,
            source,
            config=SMRPConfig(
                d_thresh=config.d_thresh,
                reshape_enabled=config.reshape_enabled,
                knowledge=config.knowledge,
                self_check=False,
            ),
            obs=obs,
            route_cache=route_cache,
        )
        smrp_tree = smrp.build(members)

    result = ScenarioResult(
        config=config,
        source=source,
        members=members,
        average_degree=topology.average_degree(),
        cost_spf=spf_tree.tree_cost(),
        cost_smrp=smrp_tree.tree_cost(),
        smrp_fallback_joins=smrp.stats.fallback_joins,
        smrp_reshapes=smrp.stats.reshapes_performed,
    )
    with obs.span("scenario.measure"):
        for member in members:
            result.measurements.append(
                _measure_member(
                    topology,
                    spf_tree,
                    smrp_tree,
                    member,
                    obs=obs,
                    route_cache=route_cache,
                )
            )
    obs.counter("scenario.runs").inc()
    obs.emit("scenario_result", config=config.describe(), summary=result.summary())
    return result


def _measure_member(
    topology: Topology,
    spf_tree: MulticastTree,
    smrp_tree: MulticastTree,
    member: NodeId,
    obs: Observability | None = None,
    route_cache=None,
) -> MemberMeasurement:
    # The paired strategies share one worst-case failure per tree, so with
    # a failure-aware route cache each member costs at most two post-failure
    # SPF computations (often zero, by reuse proof) instead of four.  The
    # cross-strategy measurements pass obs only as route_obs: cache traffic
    # is reported, recovery attempt counters count each member once.
    spf_global = worst_case_recovery(
        topology, spf_tree, member, strategy="global", obs=obs, route_cache=route_cache
    )
    spf_local = worst_case_recovery(
        topology,
        spf_tree,
        member,
        strategy="local",
        route_cache=route_cache,
        route_obs=obs,
    )
    smrp_local = worst_case_recovery(
        topology, smrp_tree, member, strategy="local", obs=obs, route_cache=route_cache
    )
    smrp_global = worst_case_recovery(
        topology,
        smrp_tree,
        member,
        strategy="global",
        route_cache=route_cache,
        route_obs=obs,
    )

    def rd(measurement) -> float | None:
        return measurement.recovery_distance if measurement.recovered else None

    return MemberMeasurement(
        member=member,
        rd_spf_global=rd(spf_global),
        rd_smrp_local=rd(smrp_local),
        rd_spf_local=rd(spf_local),
        rd_smrp_global=rd(smrp_global),
        delay_spf=spf_tree.delay_from_source(member),
        delay_smrp=smrp_tree.delay_from_source(member),
    )
