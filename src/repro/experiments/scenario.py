"""Scenario configuration: everything one simulation run depends on.

The paper's tunables (§4.1): network size ``N``, group size ``N_G``, the
Waxman edge-density parameter ``α`` (β is fixed), and the protocol knob
``D_thresh``.  A scenario additionally pins the random seeds, so every
data point in every figure is exactly reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.errors import ConfigurationError
from repro.graph.topology import NodeId, Topology
from repro.graph.waxman import WaxmanConfig, waxman_topology
from repro.multicast.group import random_member_set


@dataclass(frozen=True)
class ScenarioConfig:
    """One evaluation scenario (paper defaults: N=100, N_G=30, α=0.2,
    D_thresh=0.3)."""

    n: int = 100
    group_size: int = 30
    alpha: float = 0.2
    beta: float = 0.25
    d_thresh: float = 0.3
    topology_seed: int = 0
    member_seed: int = 0
    reshape_enabled: bool = True
    knowledge: str = "full"

    def __post_init__(self) -> None:
        if self.group_size >= self.n:
            raise ConfigurationError(
                f"group size {self.group_size} must be below N={self.n} "
                "(the source is not a member)"
            )

    def build_topology(self) -> Topology:
        """The scenario's Waxman topology (connectivity-repaired)."""
        return waxman_topology(
            WaxmanConfig(
                n=self.n,
                alpha=self.alpha,
                beta=self.beta,
                seed=self.topology_seed,
            )
        ).topology

    def pick_participants(self, topology: Topology) -> tuple[NodeId, list[NodeId]]:
        """Source and member join order, drawn from ``member_seed``."""
        rng = np.random.default_rng(self.member_seed)
        source = int(rng.integers(self.n))
        members = random_member_set(topology, source, self.group_size, rng)
        return source, members

    def with_seeds(self, topology_seed: int, member_seed: int) -> "ScenarioConfig":
        """The same configuration with different random draws."""
        return replace(self, topology_seed=topology_seed, member_seed=member_seed)

    def describe(self) -> str:
        return (
            f"N={self.n} N_G={self.group_size} alpha={self.alpha} "
            f"D_thresh={self.d_thresh} seeds=({self.topology_seed},{self.member_seed})"
        )
