"""Scenario configuration: everything one simulation run depends on.

The paper's tunables (§4.1): network size ``N``, group size ``N_G``, the
Waxman edge-density parameter ``α`` (β is fixed), and the protocol knob
``D_thresh``.  A scenario additionally pins the random seeds, so every
data point in every figure is exactly reproducible.

Validation is **eager and uniform**: every field is checked at
construction time (``__post_init__``), so an invalid configuration fails
where it is created — at the API boundary or when a sweep grid is
assembled — never lazily deep inside a worker process.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, replace

import numpy as np

from repro.errors import ConfigurationError
from repro.graph.topology import NodeId, Topology
from repro.graph.waxman import WaxmanConfig, waxman_topology
from repro.multicast.group import random_member_set


def validate_scenario_params(
    *,
    n: int,
    group_size: int,
    alpha: float,
    beta: float,
    d_thresh: float,
    knowledge: str,
) -> None:
    """Uniform eager checks shared by :class:`ScenarioConfig` and
    :class:`repro.experiments.exec.spec.ExperimentSpec`.

    Raises :class:`ConfigurationError` on the first violated constraint.
    """
    if n < 2:
        raise ConfigurationError(f"network size N must be >= 2, got {n}")
    if group_size < 1:
        raise ConfigurationError(f"group size must be >= 1, got {group_size}")
    if group_size >= n:
        raise ConfigurationError(
            f"group size {group_size} must be below N={n} "
            "(the source is not a member)"
        )
    if not 0 < alpha <= 1:
        raise ConfigurationError(f"alpha must be in (0, 1], got {alpha}")
    if not 0 < beta <= 1:
        raise ConfigurationError(f"beta must be in (0, 1], got {beta}")
    if d_thresh < 0:
        raise ConfigurationError(f"d_thresh must be >= 0, got {d_thresh}")
    if knowledge not in ("full", "query"):
        raise ConfigurationError(
            f"unknown knowledge mode {knowledge!r}; expected 'full' or 'query'"
        )


@dataclass(frozen=True)
class ScenarioConfig:
    """One evaluation scenario (paper defaults: N=100, N_G=30, α=0.2,
    D_thresh=0.3)."""

    n: int = 100
    group_size: int = 30
    alpha: float = 0.2
    beta: float = 0.25
    d_thresh: float = 0.3
    topology_seed: int = 0
    member_seed: int = 0
    reshape_enabled: bool = True
    knowledge: str = "full"

    def __post_init__(self) -> None:
        validate_scenario_params(
            n=self.n,
            group_size=self.group_size,
            alpha=self.alpha,
            beta=self.beta,
            d_thresh=self.d_thresh,
            knowledge=self.knowledge,
        )

    def waxman_config(self) -> WaxmanConfig:
        """The scenario's topology parameters — also the substrate cache
        key (:class:`repro.graph.cache.TopologyCache`)."""
        return WaxmanConfig(
            n=self.n,
            alpha=self.alpha,
            beta=self.beta,
            seed=self.topology_seed,
        )

    def build_topology(self) -> Topology:
        """The scenario's Waxman topology (connectivity-repaired)."""
        return waxman_topology(self.waxman_config()).topology

    def pick_participants(self, topology: Topology) -> tuple[NodeId, list[NodeId]]:
        """Source and member join order, drawn from ``member_seed``."""
        rng = np.random.default_rng(self.member_seed)
        source = int(rng.integers(self.n))
        members = random_member_set(topology, source, self.group_size, rng)
        return source, members

    def with_seeds(self, topology_seed: int, member_seed: int) -> "ScenarioConfig":
        """The same configuration with different random draws."""
        return replace(self, topology_seed=topology_seed, member_seed=member_seed)

    def content_key(self) -> str:
        """Stable content digest — the scenario's checkpoint identity.

        The same construction as :meth:`ExperimentSpec.key
        <repro.experiments.exec.spec.ExperimentSpec.key>`: a SHA-256
        prefix of the canonical JSON form.  Every field that influences
        the result is a dataclass field, so equal configs — however they
        were assembled — share a key, and any parameter change produces a
        fresh one.
        """
        canonical = json.dumps(asdict(self), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]

    def describe(self) -> str:
        return (
            f"N={self.n} N_G={self.group_size} alpha={self.alpha} "
            f"D_thresh={self.d_thresh} seeds=({self.topology_seed},{self.member_seed})"
        )
