"""Experiment harness reproducing the paper's evaluation (§4).

- :mod:`repro.experiments.scenario` — one fully seeded scenario
  (topology + member set + protocol parameters),
- :mod:`repro.experiments.runner` — builds both trees (SMRP and the SPF
  baseline), applies the worst-case failure per member, and measures the
  paper's metrics,
- :mod:`repro.experiments.sweeps` — many-scenario parameter sweeps with
  95% confidence intervals,
- :mod:`repro.experiments.fig7` … :mod:`repro.experiments.fig10` — one
  driver per figure in the paper,
- :mod:`repro.experiments.tables` — plain-text rendering of the series,
- :mod:`repro.experiments.report` — CSV/JSON/Markdown export of results.
"""

from repro.experiments.scenario import ScenarioConfig
from repro.experiments.runner import ScenarioResult, run_scenario
from repro.experiments.sweeps import SweepPoint, run_sweep
from repro.experiments.fig7 import Figure7Result, run_figure7
from repro.experiments.fig8 import Figure8Result, run_figure8
from repro.experiments.fig9 import Figure9Result, run_figure9
from repro.experiments.fig10 import Figure10Result, run_figure10

__all__ = [
    "ScenarioConfig",
    "ScenarioResult",
    "run_scenario",
    "SweepPoint",
    "run_sweep",
    "Figure7Result",
    "run_figure7",
    "Figure8Result",
    "run_figure8",
    "Figure9Result",
    "run_figure9",
    "Figure10Result",
    "run_figure10",
]
