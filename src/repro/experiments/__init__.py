"""Experiment harness reproducing the paper's evaluation (§4).

- :mod:`repro.experiments.scenario` — one fully seeded scenario
  (topology + member set + protocol parameters),
- :mod:`repro.experiments.runner` — builds both trees (SMRP and the SPF
  baseline), applies the worst-case failure per member, and measures the
  paper's metrics,
- :mod:`repro.experiments.sweeps` — many-scenario parameter sweeps with
  95% confidence intervals,
- :mod:`repro.experiments.exec` — declarative :class:`ExperimentSpec`,
  serial/process-parallel executors, and the substrate cache,
- :mod:`repro.experiments.fig7` … :mod:`repro.experiments.fig10` — one
  driver per figure in the paper,
- :mod:`repro.experiments.tables` — plain-text rendering of the series,
- :mod:`repro.experiments.report` — CSV/JSON/Markdown export of results.

.. deprecated::
    Importing the harness entry points from this package
    (``from repro.experiments import run_scenario``) is deprecated;
    use the stable facade :mod:`repro.api` instead.  The submodule
    paths above are unaffected.
"""

from __future__ import annotations

import warnings

#: Legacy re-exports: public name -> (defining submodule, attribute).
_DEPRECATED_EXPORTS = {
    "ScenarioConfig": ("repro.experiments.scenario", "ScenarioConfig"),
    "ScenarioResult": ("repro.experiments.runner", "ScenarioResult"),
    "run_scenario": ("repro.experiments.runner", "run_scenario"),
    "SweepPoint": ("repro.experiments.sweeps", "SweepPoint"),
    "run_sweep": ("repro.experiments.sweeps", "run_sweep"),
    "Figure7Result": ("repro.experiments.fig7", "Figure7Result"),
    "run_figure7": ("repro.experiments.fig7", "run_figure7"),
    "Figure8Result": ("repro.experiments.fig8", "Figure8Result"),
    "run_figure8": ("repro.experiments.fig8", "run_figure8"),
    "Figure9Result": ("repro.experiments.fig9", "Figure9Result"),
    "run_figure9": ("repro.experiments.fig9", "run_figure9"),
    "Figure10Result": ("repro.experiments.fig10", "Figure10Result"),
    "run_figure10": ("repro.experiments.fig10", "run_figure10"),
    # Execution-layer stragglers: these once leaked through this package
    # too; the documented home for all of them is ``repro.api.__all__``.
    "ExperimentSpec": ("repro.experiments.exec.spec", "ExperimentSpec"),
    "Executor": ("repro.experiments.exec.executor", "Executor"),
    "SerialExecutor": ("repro.experiments.exec.executor", "SerialExecutor"),
    "ParallelExecutor": ("repro.experiments.exec.executor", "ParallelExecutor"),
    "ResilientExecutor": ("repro.experiments.exec.resilience", "ResilientExecutor"),
    "ExecPolicy": ("repro.experiments.exec.resilience", "ExecPolicy"),
    "CheckpointStore": ("repro.experiments.exec.checkpoint", "CheckpointStore"),
    "SubstrateCache": ("repro.experiments.exec.cache", "SubstrateCache"),
    "make_executor": ("repro.experiments.exec.executor", "make_executor"),
}

__all__ = list(_DEPRECATED_EXPORTS)


def __getattr__(name: str):
    try:
        module_name, attr = _DEPRECATED_EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    warnings.warn(
        f"importing {name!r} from 'repro.experiments' is deprecated; "
        f"use 'repro.api' (or {module_name!r} directly)",
        DeprecationWarning,
        stacklevel=2,
    )
    import importlib

    return getattr(importlib.import_module(module_name), attr)


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_DEPRECATED_EXPORTS))
