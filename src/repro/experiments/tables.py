"""Plain-text rendering of experiment results.

Every figure driver returns structured results *and* can print the same
series the paper plots, as an aligned text table — the closest equivalent
of regenerating the figure in a terminal-only environment.
"""

from __future__ import annotations

from typing import Sequence

from repro.metrics.stats import Summary


def format_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Render an aligned text table with a header separator."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def format_percent(value: float) -> str:
    return f"{100.0 * value:+.1f}%"


def format_summary(summary: Summary) -> str:
    """``mean% ± ci%`` — the paper's error-bar presentation."""
    return (
        f"{100.0 * summary.mean:+.1f}% ± {100.0 * summary.ci_half_width:.1f}%"
    )
