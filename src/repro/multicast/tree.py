"""The multicast tree data structure.

A :class:`MulticastTree` is a source-rooted tree embedded in a
:class:`~repro.graph.topology.Topology`.  It distinguishes *on-tree nodes*
(every router the tree passes through) from *members* (the receivers of
§3.2 that issue joins/leaves); an on-tree node may be a pure relay.

The structure supports the operations every protocol in this library is
built from:

- ``graft(path)`` — splice a new branch onto the tree (a member join),
- ``prune(member)`` — remove a member and any branch that only served it
  (a member leave, §3.2.2),
- ``move_subtree(node, path)`` — re-hang a node (with its entire subtree)
  onto a new attachment path (tree reshaping, §3.2.3, and failure
  recovery, §4.3.1),
- queries used by the SHR metric and the evaluation metrics: on-tree
  paths, subtree member counts, link/cost/delay aggregates, and the
  partition induced by a failure.

All mutators validate their inputs against the topology and the current
tree, and the structure can always be re-checked with
:func:`repro.multicast.validation.check_tree_invariants`.
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import MulticastError, NotOnTreeError, TopologyError
from repro.graph.topology import Edge, NodeId, Topology, edge_key
from repro.routing.failure_view import NO_FAILURES, FailureSet


class MulticastTree:
    """A source-rooted multicast distribution tree.

    Parameters
    ----------
    topology:
        The network the tree is embedded in.
    source:
        The multicast source ``S`` (the tree root; the paper folds the
        rendezvous-point case into this one, footnote 2).
    """

    def __init__(self, topology: Topology, source: NodeId) -> None:
        if not topology.has_node(source):
            raise TopologyError(f"source {source} is not in the topology")
        self.topology = topology
        self.source = source
        self._parent: dict[NodeId, NodeId | None] = {source: None}
        self._children: dict[NodeId, set[NodeId]] = {source: set()}
        self._members: set[NodeId] = set()

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    @property
    def members(self) -> frozenset[NodeId]:
        """The current receiver set."""
        return frozenset(self._members)

    def on_tree_nodes(self) -> list[NodeId]:
        """Every node the tree passes through, sorted."""
        return sorted(self._parent)

    def is_on_tree(self, node: NodeId) -> bool:
        return node in self._parent

    def is_member(self, node: NodeId) -> bool:
        return node in self._members

    def parent(self, node: NodeId) -> NodeId | None:
        """Upstream node ``R_u`` of ``node`` (None for the source)."""
        try:
            return self._parent[node]
        except KeyError:
            raise NotOnTreeError(node) from None

    def children(self, node: NodeId) -> list[NodeId]:
        """Downstream neighbors of ``node``, sorted."""
        try:
            return sorted(self._children[node])
        except KeyError:
            raise NotOnTreeError(node) from None

    def tree_links(self) -> set[Edge]:
        """All links of the tree, as canonical edges."""
        return {
            edge_key(node, parent)
            for node, parent in self._parent.items()
            if parent is not None
        }

    def path_from_source(self, node: NodeId) -> list[NodeId]:
        """The on-tree path ``P_T(S, node)`` as ``[S, …, node]``."""
        if node not in self._parent:
            raise NotOnTreeError(node)
        path: list[NodeId] = []
        cursor: NodeId | None = node
        while cursor is not None:
            path.append(cursor)
            cursor = self._parent[cursor]
        path.reverse()
        if path[0] != self.source:
            raise MulticastError(
                f"corrupt tree: path from {node} terminates at {path[0]}"
            )
        return path

    def delay_from_source(self, node: NodeId) -> float:
        """End-to-end delay ``D_{S,node}`` along the tree."""
        return self.topology.path_delay(self.path_from_source(node))

    def delays_from_source(self) -> dict[NodeId, float]:
        """``D_{S,node}`` for *every* on-tree node, in one traversal.

        Equivalent to calling :meth:`delay_from_source` per node but
        linear in the tree size instead of quadratic: candidate
        enumeration prices every merge point of every join with it.
        Accumulation runs top-down (``delay(child) = delay(node) + link``),
        the same left-to-right summation order as the per-node path walk,
        so the floats are bit-identical.
        """
        adjacency = self.topology.adjacency()
        delays: dict[NodeId, float] = {self.source: 0.0}
        stack = [self.source]
        while stack:
            node = stack.pop()
            d = delays[node]
            row = adjacency[node]
            for child in self._children[node]:
                delays[child] = d + row[child]
                stack.append(child)
        return delays

    def tree_cost(self) -> float:
        """Total cost of the tree (the paper's ``Cost_T``)."""
        return sum(self.topology.cost(u, v) for u, v in self.tree_links())

    def total_delay(self) -> float:
        """Sum of link delays over the tree (an auxiliary size measure)."""
        return sum(self.topology.delay(u, v) for u, v in self.tree_links())

    def subtree_nodes(self, node: NodeId) -> set[NodeId]:
        """All on-tree nodes in the subtree rooted at ``node`` (inclusive)."""
        if node not in self._parent:
            raise NotOnTreeError(node)
        result: set[NodeId] = set()
        stack = [node]
        while stack:
            current = stack.pop()
            result.add(current)
            stack.extend(self._children[current])
        return result

    def subtree_member_count(self, node: NodeId) -> int:
        """``N_R``: members in the subtree rooted at ``node`` (paper §3.2.1)."""
        return sum(1 for n in self.subtree_nodes(node) if n in self._members)

    def downstream_interface_counts(self, node: NodeId) -> dict[NodeId, int]:
        """``N_R^i`` per downstream interface ``i`` (keyed by child node)."""
        return {
            child: self.subtree_member_count(child) for child in self.children(node)
        }

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_member(self, node: NodeId) -> None:
        """Mark an already-on-tree node as a receiver."""
        if node not in self._parent:
            raise NotOnTreeError(node)
        self._members.add(node)

    def graft(self, path: list[NodeId], member: bool = True) -> None:
        """Splice a branch onto the tree.

        ``path[0]`` must already be on the tree (the merge node ``R``);
        every subsequent node must be new.  The final node becomes a member
        unless ``member`` is False (used when relaying for a sub-domain).
        """
        if len(path) < 1:
            raise MulticastError("graft path is empty")
        merge = path[0]
        if merge not in self._parent:
            raise NotOnTreeError(merge)
        if len(path) == 1:
            # Joining node is already on the tree: it just becomes a member.
            if member:
                self._members.add(merge)
            return
        for node in path[1:]:
            if node in self._parent:
                raise MulticastError(
                    f"graft path revisits on-tree node {node}; it must merge "
                    f"exactly once (at {merge})"
                )
            if not self.topology.has_node(node):
                raise TopologyError(f"graft path uses unknown node {node}")
        for u, v in zip(path, path[1:]):
            if not self.topology.has_link(u, v):
                raise TopologyError(f"graft path uses missing link {edge_key(u, v)}")
        for u, v in zip(path, path[1:]):
            self._parent[v] = u
            self._children[v] = set()
            self._children[u].add(v)
        if member:
            self._members.add(path[-1])

    def prune(self, member: NodeId) -> list[NodeId]:
        """Remove a member; trim any branch that served only this member.

        Mirrors the paper's ``Leave_Req`` walk: remove membership, then
        walk toward the source deleting relay nodes that now have no
        children and are not members themselves.  Returns the list of
        nodes removed from the tree (possibly empty when the member is an
        interior node that must keep relaying).
        """
        if member not in self._members:
            raise MulticastError(f"node {member} is not a member")
        self._members.discard(member)
        removed: list[NodeId] = []
        cursor = member
        while (
            cursor != self.source
            and not self._children[cursor]
            and cursor not in self._members
        ):
            parent = self._parent[cursor]
            assert parent is not None
            self._children[parent].discard(cursor)
            del self._parent[cursor]
            del self._children[cursor]
            removed.append(cursor)
            cursor = parent
        return removed

    def move_subtree(self, node: NodeId, new_path: list[NodeId]) -> None:
        """Re-hang ``node`` (and its whole subtree) via ``new_path``.

        ``new_path`` runs from an on-tree merge node to ``node``:
        ``new_path[0]`` is on the tree (and outside ``node``'s subtree),
        ``new_path[-1] == node``, and interior nodes are fresh.  This is
        the path-switching step of tree reshaping (§3.2.3) and of local
        recovery: the old upstream branch is released afterwards exactly
        like a member departure.
        """
        if node not in self._parent:
            raise NotOnTreeError(node)
        if node == self.source:
            raise MulticastError("cannot move the source")
        if not new_path or new_path[-1] != node:
            raise MulticastError(f"new path must end at {node}, got {new_path}")
        merge = new_path[0]
        if merge not in self._parent:
            raise NotOnTreeError(merge)
        subtree = self.subtree_nodes(node)
        if merge in subtree:
            raise MulticastError(
                f"merge node {merge} lies inside the subtree of {node}; "
                "moving there would create a cycle"
            )
        for middle in new_path[1:-1]:
            if middle in self._parent:
                raise MulticastError(
                    f"new path interior node {middle} is already on the tree"
                )
            if not self.topology.has_node(middle):
                raise TopologyError(f"new path uses unknown node {middle}")
        for u, v in zip(new_path, new_path[1:]):
            if not self.topology.has_link(u, v):
                raise TopologyError(f"new path uses missing link {edge_key(u, v)}")

        # Make before break (§3.2.3): detach from the old parent, attach
        # along the new path, and only then release the dead upstream
        # branch — the merge node may itself sit on the old branch (e.g.
        # re-attaching under the same parent), so pruning must come last.
        old_parent = self._parent[node]
        assert old_parent is not None
        self._children[old_parent].discard(node)

        for u, v in zip(new_path, new_path[1:]):
            if v == node:
                self._parent[node] = u
                self._children[u].add(node)
            else:
                self._parent[v] = u
                self._children[v] = set()
                self._children[u].add(v)

        cursor = old_parent
        while (
            cursor != self.source
            and not self._children[cursor]
            and cursor not in self._members
        ):
            parent = self._parent[cursor]
            assert parent is not None
            self._children[parent].discard(cursor)
            del self._parent[cursor]
            del self._children[cursor]
            cursor = parent

    # ------------------------------------------------------------------
    # Failure analysis
    # ------------------------------------------------------------------
    def affected_by(self, failures: FailureSet) -> bool:
        """True when any tree component is failed."""
        if any(node in failures.failed_nodes for node in self._parent):
            return True
        return any(
            not failures.link_usable(u, v) for u, v in self.tree_links()
        )

    def surviving_component(self, failures: FailureSet = NO_FAILURES) -> set[NodeId]:
        """On-tree nodes still connected to the source after ``failures``.

        Walks the tree from the source, stopping at failed links/nodes.
        The source itself is excluded if it failed (session unrecoverable).
        """
        if failures.node_failed(self.source):
            return set()
        component = {self.source}
        stack = [self.source]
        while stack:
            node = stack.pop()
            for child in self._children[node]:
                if failures.node_failed(child):
                    continue
                if not failures.link_usable(node, child):
                    continue
                component.add(child)
                stack.append(child)
        return component

    def disconnected_members(self, failures: FailureSet) -> list[NodeId]:
        """Members cut off from the source by ``failures``, sorted."""
        surviving = self.surviving_component(failures)
        return sorted(m for m in self._members if m not in surviving)

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------
    def copy(self) -> "MulticastTree":
        """Independent copy sharing the same (immutable-by-convention) topology."""
        clone = MulticastTree(self.topology, self.source)
        clone._parent = dict(self._parent)
        clone._children = {node: set(kids) for node, kids in self._children.items()}
        clone._members = set(self._members)
        return clone

    def __contains__(self, node: NodeId) -> bool:
        return node in self._parent

    def __len__(self) -> int:
        """Number of on-tree nodes (always ≥ 1: the source)."""
        return len(self._parent)

    def __repr__(self) -> str:
        return (
            f"MulticastTree(source={self.source}, members={len(self._members)}, "
            f"on_tree={len(self._parent)}, cost={self.tree_cost():.2f})"
        )
