"""SPF-based multicast baseline (PIM/MOSPF-style).

This is the comparator in every figure of the paper's evaluation: "the
traditional SPF-based multicast routing protocols" (§4.2).  Joins follow
PIM-SM source-tree semantics: the join request travels from the new member
along its unicast shortest path toward the source and grafts at the first
on-tree router it meets.  No sharing metric, no delay bound — the unicast
SPF decides everything.
"""

from __future__ import annotations

from repro.errors import AlreadyMemberError, NotMemberError
from repro.graph.topology import NodeId, Topology
from repro.multicast.tree import MulticastTree
from repro.multicast.validation import check_tree_invariants
from repro.routing.failure_view import NO_FAILURES, FailureSet
from repro.routing.route_cache import RouteCache
from repro.routing.spf import shortest_path


class SPFMulticastProtocol:
    """Shortest-path-first multicast tree construction.

    Parameters
    ----------
    topology:
        The network.
    source:
        The multicast source.
    self_check:
        When True (default), tree invariants are re-validated after every
        mutation; disable only in tight benchmark loops.
    route_cache:
        Optional :class:`~repro.routing.route_cache.RouteCache`; when
        given, joins reuse memoised member-rooted SPF state instead of
        re-running Dijkstra per join.  The cache is failure-aware, so
        failure-masked joins (global-detour rejoins of §4.3.1) share
        state across repeats of the same scenario too.
    obs:
        Optional :class:`~repro.obs.Observability` used only to account
        route-cache hits and misses.
    """

    name = "SPF"

    def __init__(
        self,
        topology: Topology,
        source: NodeId,
        self_check: bool = True,
        route_cache: "RouteCache | None" = None,
        obs=None,
    ) -> None:
        self.topology = topology
        self.source = source
        self.tree = MulticastTree(topology, source)
        self.self_check = self_check
        self.route_cache = route_cache
        self.obs = obs

    def join(self, member: NodeId, failures: FailureSet = NO_FAILURES) -> list[NodeId]:
        """Join ``member`` along its unicast shortest path toward the source.

        Returns the grafted path (merge node first).  ``failures`` models a
        join issued after unicast re-convergence, with failed components
        withdrawn — the global-detour rejoin of §4.3.1 uses this.
        """
        if self.tree.is_member(member):
            raise AlreadyMemberError(member)
        if self.tree.is_on_tree(member):
            self.tree.add_member(member)
            return [member]
        # PIM sends the join from the member toward the source; the graft
        # happens at the first on-tree router the join reaches.
        if self.route_cache is not None:
            toward_source = self.route_cache.shortest_paths(
                self.topology, member, weight="delay", failures=failures,
                obs=self.obs,
            ).path_to(self.source)
        else:
            toward_source = shortest_path(
                self.topology, member, self.source, weight="delay",
                failures=failures,
            )
        merge_index = next(
            i for i, node in enumerate(toward_source) if self.tree.is_on_tree(node)
        )
        graft_path = list(reversed(toward_source[: merge_index + 1]))
        self.tree.graft(graft_path)
        if self.self_check:
            check_tree_invariants(self.tree)
        return graft_path

    def leave(self, member: NodeId) -> list[NodeId]:
        """Process a ``Leave_Req``; returns the pruned nodes."""
        if not self.tree.is_member(member):
            raise NotMemberError(member)
        removed = self.tree.prune(member)
        if self.self_check:
            check_tree_invariants(self.tree)
        return removed

    def build(self, members: list[NodeId]) -> MulticastTree:
        """Join a whole member list in order; returns the tree."""
        for member in members:
            self.join(member)
        return self.tree

    def repair(self, failures: FailureSet) -> "TreeRepairReport":
        """Whole-session restoration via global SPF detours.

        The PIM/MOSPF baseline behaviour: every disconnected member
        re-joins along its re-converged shortest path (failed components
        withdrawn), and the repaired tree replaces the current one.
        """
        from repro.core.recovery import repair_tree

        report = repair_tree(
            self.topology,
            self.tree,
            failures,
            strategy="global",
            obs=self.obs,
            route_cache=self.route_cache,
        )
        self.tree = report.repaired_tree
        if self.self_check:
            check_tree_invariants(self.tree)
        return report
