"""Per-link backup trees and the protection-mode protocol family.

SMRP restores *reactively*; production fast-reroute precomputes.  This
module adds the proactive design points the ROADMAP's "Precomputed
protection" item names, modelled on the TUDelft ``PerLinkTreeBuilder``
Fast Failover scheme: with a protected-link budget ``F``, the builder
ranks the current tree's links by *load* (the member count of the
subtree each link carries, the paper's ``N_R``), and for each of the
top-``F`` links installs — before any failure — the complete tree the
session would rebuild if exactly that link failed.  A failure hitting a
protected link is then survived by an instant **switchover**: the
pre-installed tree takes over, recovery distance zero, latency equal to
the detection delay alone.

Three engines make the family selectable wherever SMRP/SPF are today
(controller ``_ENGINES``, :class:`~repro.controller.spec.ServiceSpec`
``PROTOCOLS``, the CLI's ``--protocol``):

``protection``
    SPF base tree + per-link backup trees; failures no backup covers
    fall back to the global (re-convergence) detour.
``hybrid``
    SMRP base tree + per-link backup trees; uncovered failures fall
    back to SMRP's local detour — precomputed speed where the budget
    reaches, short reactive detours everywhere else.
``alternate``
    SPF base tree + per-member Bhosle–Gonzalez single-failure alternate
    routes (:mod:`repro.routing.alternate`): a disconnected member
    re-joins over its precomputed route with no re-convergence wait,
    falling back to the global detour when no precomputed route
    survives the failure.

Backup state is recomputed lazily after membership churn (a real
deployment installs it at change time; computing it at the next use
yields the identical state for a fraction of the work) and accounted as
*standing state*: links the backups reserve beyond the working tree.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.protocol import SMRPConfig, SMRPProtocol
from repro.core.recovery import (
    RecoveryResult,
    TreeRepairReport,
    _already_connected,
    _truncate_at_first_contact,
    global_detour_recovery,
    repair_tree,
    surviving_subtree,
)
from repro.errors import ConfigurationError, UnrecoverableFailureError
from repro.graph.topology import Edge, NodeId, Topology, edge_key
from repro.multicast.spf_protocol import SPFMulticastProtocol
from repro.multicast.tree import MulticastTree
from repro.obs import NULL_OBS
from repro.routing.alternate import AlternateRouteTable, build_alternate_table
from repro.routing.failure_view import FailureSet

#: Default protected-link budget ``F`` (the TUDelft builder's parameter).
DEFAULT_BUDGET = 4


def protected_links(tree: MulticastTree, budget: int) -> list[Edge]:
    """The top-``budget`` most-loaded tree links, most-loaded first.

    A link's load is ``N_R`` of its downstream end — the members the
    link carries.  Equal loads break ties by canonical edge key, so the
    protected set is a deterministic function of the tree.
    """
    if budget < 0:
        raise ConfigurationError(f"budget must be >= 0, got {budget}")
    ranked = []
    for edge in sorted(tree.tree_links()):
        u, v = edge
        downstream = v if tree.parent(v) == u else u
        ranked.append((-tree.subtree_member_count(downstream), edge))
    ranked.sort()
    return [edge for _, edge in ranked[:budget]]


@dataclass(frozen=True)
class BackupTree:
    """The pre-installed tree for one protected link's failure.

    ``tree`` is exactly what :func:`~repro.core.recovery.repair_tree`
    would rebuild after that failure (the switchover-equivalence
    property the test suite asserts); ``unprotectable`` lists members
    the rebuild could not reach (the link is a bridge for them).
    """

    link: Edge
    tree: MulticastTree
    unprotectable: tuple[NodeId, ...] = ()


class PerLinkBackupTrees:
    """The protected-link set and its pre-installed backup trees.

    ``strategy`` selects how backups are *computed* (the fallback
    strategy of the owning engine, so a switchover is indistinguishable
    from a fresh post-failure rebuild); switchover itself never runs a
    path search.
    """

    def __init__(
        self,
        topology: Topology,
        budget: int = DEFAULT_BUDGET,
        strategy: str = "local",
        route_cache=None,
        obs=None,
    ) -> None:
        self.topology = topology
        self.budget = budget
        self.strategy = strategy
        self.route_cache = route_cache
        self.obs = obs if obs is not None else NULL_OBS
        self._backups: dict[Edge, BackupTree] = {}
        self._built_for: MulticastTree | None = None
        self._dirty = True

    def mark_dirty(self) -> None:
        self._dirty = True

    def ensure(self, tree: MulticastTree) -> None:
        """(Re)compute the backups for ``tree`` if anything changed."""
        if not self._dirty and self._built_for is tree:
            return
        self._backups = {}
        for link in protected_links(tree, self.budget):
            failures = FailureSet.links(link)
            # Precomputation is bookkeeping, not restoration: run it
            # under a silent obs so recovery.* counters and traced
            # episodes keep meaning "a failure actually happened".
            report = repair_tree(
                self.topology,
                tree,
                failures,
                strategy=self.strategy,
                obs=NULL_OBS,
                route_cache=self.route_cache,
            )
            self._backups[link] = BackupTree(
                link=link,
                tree=report.repaired_tree,
                unprotectable=tuple(sorted(report.unrecoverable)),
            )
        self._built_for = tree
        self._dirty = False
        self.obs.counter("protection.backups_built").inc(len(self._backups))

    def links(self) -> list[Edge]:
        """The protected links, most-loaded first."""
        return list(self._backups)

    def lookup(self, failures: FailureSet) -> BackupTree | None:
        """The first pre-installed tree that survives ``failures`` whole.

        A backup covers the failure when its protected link is among the
        failed links and the stored tree touches no failed component —
        then every member it reaches is served the instant traffic
        switches over.  Checked in load-rank order, so coverage is
        deterministic under multi-failures too.
        """
        if not failures.failed_links:
            return None
        for backup in self._backups.values():
            if backup.link not in failures.failed_links:
                continue
            if backup.tree.affected_by(failures):
                continue
            return backup
        return None

    def standing_links(self, tree: MulticastTree) -> set[Edge]:
        """Links the backups reserve beyond the working tree."""
        working = tree.tree_links()
        standing: set[Edge] = set()
        for backup in self._backups.values():
            standing |= backup.tree.tree_links() - working
        return standing

    def standing_cost(self, tree: MulticastTree) -> float:
        return sum(
            self.topology.cost(u, v) for u, v in self.standing_links(tree)
        )


class BackupTreeProtocol:
    """Protection-mode engine: base protocol + per-link backup trees.

    ``mode="protection"`` wraps the SPF baseline (global-detour
    fallback); ``mode="hybrid"`` wraps SMRP (local-detour fallback).
    Implements the engine interface the controller hosts (``tree`` /
    ``join`` / ``leave`` / ``build`` / ``repair``), so the modes slot in
    wherever ``smrp`` and ``spf`` do.
    """

    MODES = ("protection", "hybrid")

    def __init__(
        self,
        topology: Topology,
        source: NodeId,
        mode: str = "protection",
        budget: int = DEFAULT_BUDGET,
        smrp_config: SMRPConfig | None = None,
        route_cache=None,
        obs=None,
    ) -> None:
        if mode not in self.MODES:
            raise ConfigurationError(
                f"unknown protection mode {mode!r}; expected one of {self.MODES}"
            )
        self.topology = topology
        self.source = source
        self.mode = mode
        self.name = mode
        self.obs = obs if obs is not None else NULL_OBS
        self.route_cache = route_cache
        if mode == "hybrid":
            self._inner = SMRPProtocol(
                topology,
                source,
                config=smrp_config or SMRPConfig(self_check=False),
                obs=obs,
                route_cache=route_cache,
            )
        else:
            self._inner = SPFMulticastProtocol(
                topology,
                source,
                self_check=False,
                route_cache=route_cache,
                obs=obs,
            )
        self.backups = PerLinkBackupTrees(
            topology,
            budget=budget,
            strategy="local" if mode == "hybrid" else "global",
            route_cache=route_cache,
            obs=self.obs,
        )

    # ------------------------------------------------------------------
    # Engine interface
    # ------------------------------------------------------------------
    @property
    def tree(self) -> MulticastTree:
        return self._inner.tree

    def join(self, member: NodeId):
        outcome = self._inner.join(member)
        self.backups.mark_dirty()
        return outcome

    def leave(self, member: NodeId):
        outcome = self._inner.leave(member)
        self.backups.mark_dirty()
        return outcome

    def build(self, members) -> MulticastTree:
        tree = self._inner.build(list(members))
        self.backups.mark_dirty()
        self.backups.ensure(self.tree)
        return tree

    def plan_repair(self, failures: FailureSet) -> TreeRepairReport:
        """The repair this engine would perform, without mutating it.

        Switchover when a pre-installed tree covers the failure
        (strategy ``"backup"``, every re-attached member at recovery
        distance zero); otherwise the mode's reactive fallback.
        """
        self.backups.ensure(self.tree)
        backup = self.backups.lookup(failures)
        if backup is not None:
            with self.obs.span("protection.switchover"):
                report = self._switchover_report(backup, failures)
            self.obs.counter("protection.switchovers").inc()
            return report
        self.obs.counter("protection.fallbacks").inc()
        return repair_tree(
            self.topology,
            self.tree,
            failures,
            strategy="local" if self.mode == "hybrid" else "global",
            obs=self.obs,
            route_cache=self.route_cache,
        )

    def repair(self, failures: FailureSet) -> TreeRepairReport:
        """Restore the session; see :meth:`plan_repair` for the policy."""
        report = self.plan_repair(failures)
        self._adopt(report.repaired_tree)
        return report

    def _switchover_report(
        self, backup: BackupTree, failures: FailureSet
    ) -> TreeRepairReport:
        old = self.tree
        repaired = backup.tree.copy()
        report = TreeRepairReport(repaired_tree=repaired, strategy="backup")
        report.new_links = repaired.tree_links() - old.tree_links()
        for member in old.disconnected_members(failures):
            if failures.node_failed(member) or not repaired.is_member(member):
                report.unrecoverable.append(member)
                continue
            # The branch serving this member is pre-installed: nothing
            # new enters the tree at failure time, hence RD = 0.
            report.recoveries.append(
                RecoveryResult(
                    member=member,
                    strategy="backup",
                    attach_node=member,
                    restoration_path=(member,),
                    recovery_distance=0.0,
                    recovery_hops=0,
                    new_end_to_end_delay=repaired.delay_from_source(member),
                )
            )
        return report

    def _adopt(self, tree: MulticastTree) -> None:
        inner = self._inner
        inner.tree = tree
        state = getattr(inner, "state", None)
        if state is not None:
            state.rebind(tree)
        self.backups.mark_dirty()

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def standing_links(self) -> set[Edge]:
        self.backups.ensure(self.tree)
        standing = self.backups.standing_links(self.tree)
        self.obs.counter("protection.standing_links").inc(len(standing))
        return standing

    def standing_cost(self) -> float:
        return sum(self.topology.cost(u, v) for u, v in self.standing_links())


class AlternatePathProtocol:
    """Alternate-path engine: SPF tree + precomputed single-failure routes.

    Every member carries an :class:`AlternateRouteTable` toward the
    source.  On failure, a disconnected member re-joins over the
    precomputed route that survives (no re-convergence wait — the
    Bhosle–Gonzalez promotion), grafting at the first surviving on-tree
    node; members whose tables don't cover the failure fall back to the
    global detour, with per-member strategy provenance kept in the
    report.
    """

    name = "alternate"

    def __init__(
        self,
        topology: Topology,
        source: NodeId,
        route_cache=None,
        obs=None,
    ) -> None:
        self.topology = topology
        self.source = source
        self.obs = obs if obs is not None else NULL_OBS
        self.route_cache = route_cache
        self._inner = SPFMulticastProtocol(
            topology, source, self_check=False, route_cache=route_cache, obs=obs
        )
        self._tables: dict[NodeId, AlternateRouteTable] = {}

    @property
    def tree(self) -> MulticastTree:
        return self._inner.tree

    def join(self, member: NodeId):
        return self._inner.join(member)

    def leave(self, member: NodeId):
        self._tables.pop(member, None)
        return self._inner.leave(member)

    def build(self, members) -> MulticastTree:
        tree = self._inner.build(list(members))
        self.ensure_tables()
        return tree

    def ensure_tables(self) -> None:
        """Precompute (and garbage-collect) the per-member route tables.

        Tables depend only on the topology and member set — never on
        the tree shape — so repairs don't invalidate them.
        """
        members = self.tree.members
        for stale in [m for m in self._tables if m not in members]:
            del self._tables[stale]
        for member in sorted(members):
            if member == self.source or member in self._tables:
                continue
            table = build_alternate_table(
                self.topology,
                member,
                self.source,
                route_cache=self.route_cache,
                obs=self.obs,
            )
            if table is not None:
                self._tables[member] = table

    def plan_repair(self, failures: FailureSet) -> TreeRepairReport:
        """The repair this engine would perform, without mutating it."""
        if failures.node_failed(self.source):
            raise UnrecoverableFailureError(
                self.source, "the source itself has failed"
            )
        self.ensure_tables()
        tree = self.tree
        repaired = surviving_subtree(tree, failures)
        report = TreeRepairReport(repaired_tree=repaired, strategy="alternate")
        report.unrecoverable.extend(
            m
            for m in tree.disconnected_members(failures)
            if failures.node_failed(m)
        )
        pending = [
            m
            for m in tree.disconnected_members(failures)
            if not failures.node_failed(m)
        ]
        for member in pending:
            surviving = set(repaired.on_tree_nodes())
            if member in surviving:
                # An earlier graft already passed through this member.
                repaired.add_member(member)
                report.recoveries.append(
                    _already_connected(repaired, member, "alternate")
                )
                continue
            table = self._tables.get(member)
            route = table.route_under(failures) if table is not None else None
            if route is not None:
                self.obs.counter("protection.alternate.hits").inc()
                detour = _truncate_at_first_contact(list(route), surviving)
                attach = detour[-1]
                distance = self.topology.path_delay(detour)
                result = RecoveryResult(
                    member=member,
                    strategy="alternate",
                    attach_node=attach,
                    restoration_path=tuple(detour),
                    recovery_distance=distance,
                    recovery_hops=len(detour) - 1,
                    new_end_to_end_delay=repaired.delay_from_source(attach)
                    + distance,
                )
            else:
                self.obs.counter("protection.alternate.misses").inc()
                try:
                    result = global_detour_recovery(
                        self.topology,
                        repaired,
                        member,
                        failures,
                        obs=self.obs,
                        route_cache=self.route_cache,
                    )
                except UnrecoverableFailureError:
                    report.unrecoverable.append(member)
                    continue
            graft = list(reversed(result.restoration_path))
            repaired.graft(graft)
            report.recoveries.append(result)
            report.new_links.update(
                edge_key(u, v) for u, v in zip(graft, graft[1:])
            )
        return report

    def repair(self, failures: FailureSet) -> TreeRepairReport:
        report = self.plan_repair(failures)
        self._inner.tree = report.repaired_tree
        return report

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def standing_links(self) -> set[Edge]:
        """Links the alternate routes reserve beyond the working tree."""
        self.ensure_tables()
        reserved: set[Edge] = set()
        for table in self._tables.values():
            reserved |= table.reserved_links()
        return reserved - self.tree.tree_links()

    def standing_cost(self) -> float:
        return sum(self.topology.cost(u, v) for u, v in self.standing_links())
