"""Group membership workloads.

The paper's experiments pick ``N_G`` random members per scenario (§4.1) and
its reshaping mechanism is motivated by dynamic join/leave churn (§3.2.3).
This module provides both workload shapes with seeded randomness:

- :func:`random_member_set` — the static member sets of Figures 7–10,
- :class:`GroupWorkload` — timestamped join/leave event streams for the
  churn experiments and the discrete-event simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterator

import numpy as np

from repro.errors import ConfigurationError
from repro.graph.topology import NodeId, Topology


def random_member_set(
    topology: Topology,
    source: NodeId,
    group_size: int,
    rng: np.random.Generator,
) -> list[NodeId]:
    """Pick ``group_size`` distinct members, excluding the source.

    Returned in the (random) join order; the same generator state always
    yields the same set, making scenarios reproducible from their seed.
    """
    candidates = [n for n in topology.nodes() if n != source]
    if group_size < 1:
        raise ConfigurationError(f"group size must be >= 1, got {group_size}")
    if group_size > len(candidates):
        raise ConfigurationError(
            f"group size {group_size} exceeds the {len(candidates)} available nodes"
        )
    picked = rng.choice(len(candidates), size=group_size, replace=False)
    return [candidates[i] for i in picked]


class GroupAction(Enum):
    """What a membership event does."""

    JOIN = "join"
    LEAVE = "leave"


@dataclass(frozen=True)
class GroupEvent:
    """A timestamped membership change."""

    time: float
    node: NodeId
    action: GroupAction

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ConfigurationError(f"event time must be non-negative: {self}")


def _event_order(event: GroupEvent) -> tuple[float, NodeId, str]:
    """Canonical replay order: ``(time, member, action)``.

    Simultaneous events sort by member id, then action name — ``"join"``
    before ``"leave"`` — so a node joining and leaving at the same instant
    deterministically ends up *out* of the group, no matter in which order
    the events were recorded.
    """
    return (event.time, event.node, event.action.value)


@dataclass
class GroupWorkload:
    """An ordered stream of membership events.

    Events are kept sorted by ``(time, node, action)`` so replays are
    deterministic — including workloads built by passing an unsorted
    ``events`` list straight to the constructor, which previously skipped
    the sort that :meth:`add` applies and broke :meth:`members_at`'s
    early-exit scan.
    """

    events: list[GroupEvent] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.events.sort(key=_event_order)

    def add(self, event: GroupEvent) -> None:
        self.events.append(event)
        self.events.sort(key=_event_order)

    def __iter__(self) -> Iterator[GroupEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def members_at(self, time: float) -> set[NodeId]:
        """The member set after applying all events up to ``time`` inclusive."""
        members: set[NodeId] = set()
        for event in self.events:
            if event.time > time:
                break
            if event.action is GroupAction.JOIN:
                members.add(event.node)
            else:
                members.discard(event.node)
        return members

    @staticmethod
    def static_joins(members: list[NodeId], spacing: float = 1.0) -> "GroupWorkload":
        """All members join once, ``spacing`` time units apart — the
        Figures 7–10 workload."""
        if spacing <= 0:
            raise ConfigurationError(f"spacing must be positive, got {spacing}")
        workload = GroupWorkload()
        for index, node in enumerate(members):
            workload.add(GroupEvent(time=index * spacing, node=node, action=GroupAction.JOIN))
        return workload

    @staticmethod
    def churn(
        topology: Topology,
        source: NodeId,
        rng: np.random.Generator,
        duration: float,
        mean_holding_time: float,
        mean_interarrival: float,
        initial_members: list[NodeId] | None = None,
    ) -> "GroupWorkload":
        """Poisson join arrivals with exponential holding times.

        Models the dynamic membership that motivates tree reshaping
        (§3.2.3): members arrive as a Poisson process, stay for an
        exponential holding time, then leave.  A node already in the group
        when picked as an arrival is skipped (re-draws are not attempted so
        that the event count stays bounded and reproducible).
        """
        if duration <= 0 or mean_holding_time <= 0 or mean_interarrival <= 0:
            raise ConfigurationError("churn parameters must be positive")
        workload = GroupWorkload()
        active: dict[NodeId, float] = {}
        candidates = [n for n in topology.nodes() if n != source]
        if not candidates:
            raise ConfigurationError("topology has no candidate members")

        for node in initial_members or []:
            workload.add(GroupEvent(time=0.0, node=node, action=GroupAction.JOIN))
            leave_at = float(rng.exponential(mean_holding_time))
            active[node] = leave_at

        clock = 0.0
        while True:
            clock += float(rng.exponential(mean_interarrival))
            if clock >= duration:
                break
            node = candidates[int(rng.integers(len(candidates)))]
            # Flush departures that happen before this arrival.
            for member, leave_at in sorted(active.items()):
                if leave_at <= clock:
                    workload.add(
                        GroupEvent(time=leave_at, node=member, action=GroupAction.LEAVE)
                    )
                    del active[member]
            if node in active:
                continue
            workload.add(GroupEvent(time=clock, node=node, action=GroupAction.JOIN))
            active[node] = clock + float(rng.exponential(mean_holding_time))
        for member, leave_at in sorted(active.items()):
            if leave_at < duration:
                workload.add(
                    GroupEvent(time=leave_at, node=member, action=GroupAction.LEAVE)
                )
        return workload
