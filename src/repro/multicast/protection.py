"""Proactive protection baseline: per-member primary + backup paths.

The paper's related work (§2) describes the proactive alternative to
SMRP's reactive local recovery: Han & Shin's *dependable real-time
connections* [22] pre-establish a backup channel disjoint from the
primary ("the recovery is fast because there is no need to search a new
path"), and Medard et al.'s redundant trees [16] generalize the idea to
multicast at the cost of a construction "complexity [that] makes it
difficult ... to be applied to large networks".

This module implements the per-member form: every receiver gets a
**link-disjoint primary/backup path pair** from the source
(:func:`repro.routing.disjoint.link_disjoint_paths`).  A single link
failure on the primary is survived by an instant switchover — recovery
distance zero — but the backup's resources are reserved the whole time.
Members whose location admits no disjoint pair (a bridge separates them
from the source) fall back to an unprotected primary.

The protection-vs-reaction bench uses this to place SMRP on the spectrum
the paper sketches: protection buys zero-distance recovery at a standing
resource premium; SMRP buys *short* recovery at a small premium.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import (
    AlreadyMemberError,
    NoPathError,
    NotMemberError,
    UnrecoverableFailureError,
)
from repro.graph.topology import Edge, NodeId, Topology, edge_key
from repro.routing.disjoint import DisjointPair, link_disjoint_paths
from repro.routing.failure_view import NO_FAILURES, FailureSet
from repro.routing.spf import shortest_path


@dataclass
class ProtectedMember:
    """One receiver's reserved state."""

    member: NodeId
    primary: tuple[NodeId, ...]
    backup: tuple[NodeId, ...] | None  # None: unprotected (bridge member)

    @property
    def is_protected(self) -> bool:
        return self.backup is not None

    def active_path(self, failures: FailureSet = NO_FAILURES) -> tuple[NodeId, ...]:
        """The path carrying traffic under ``failures``.

        Switches to the backup when the primary is hit; raises
        :class:`UnrecoverableFailureError` when both are hit (the
        protection model does not search for a third path).
        """
        if not failures.path_affected(self.primary):
            return self.primary
        if self.backup is not None and not failures.path_affected(self.backup):
            return self.backup
        raise UnrecoverableFailureError(
            self.member, "both primary and backup paths are affected"
        )


@dataclass
class ProtectionStats:
    """Aggregates for the protection-vs-reaction comparison."""

    protected_members: int = 0
    unprotected_members: int = 0
    reserved_cost: float = 0.0
    working_cost: float = 0.0

    @property
    def protection_premium(self) -> float:
        """Reserved cost relative to the working (primary) cost.

        A zero working cost with a nonzero reservation is an *infinite*
        premium (everything reserved carries nothing): reporting ``0.0``
        there would silently hide the standing reservation.  Only the
        truly empty session (nothing working, nothing reserved) has a
        zero premium.
        """
        if self.working_cost <= 0:
            return float("inf") if self.reserved_cost > 0 else 0.0
        return (self.reserved_cost - self.working_cost) / self.working_cost


class ProtectedMulticast:
    """Per-member primary/backup protection over a shared source.

    Unlike the tree protocols, paths are per-member circuits (the Han &
    Shin model); shared links are reserved once per distinct link, which
    is the charitable accounting for the comparison.
    """

    name = "protection"

    def __init__(self, topology: Topology, source: NodeId) -> None:
        self.topology = topology
        self.source = source
        self.members: dict[NodeId, ProtectedMember] = {}

    def join(self, member: NodeId) -> ProtectedMember:
        """Reserve a protected (or, failing that, unprotected) connection.

        Both arms share one determinism convention: the disjoint pair
        breaks equal-delay ties by reversed node sequence (dijkstra's
        smaller-predecessor-id rule), and the bridge-member fallback is
        the scalar dijkstra path itself — so the primary never depends
        on which arm produced it.
        """
        if member in self.members:
            raise AlreadyMemberError(member)
        try:
            pair: DisjointPair | None = link_disjoint_paths(
                self.topology, self.source, member
            )
        except NoPathError:
            pair = None
        if pair is None:
            primary = tuple(shortest_path(self.topology, self.source, member))
            state = ProtectedMember(member=member, primary=primary, backup=None)
        else:
            state = ProtectedMember(
                member=member, primary=pair.primary, backup=pair.backup
            )
        self.members[member] = state
        return state

    def leave(self, member: NodeId) -> None:
        if member not in self.members:
            raise NotMemberError(member)
        del self.members[member]

    def build(self, members: list[NodeId]) -> "ProtectedMulticast":
        for member in members:
            self.join(member)
        return self

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def stats(self) -> ProtectionStats:
        """Resource accounting over all reserved paths."""
        stats = ProtectionStats()
        working_links: set[Edge] = set()
        reserved_links: set[Edge] = set()
        for state in self.members.values():
            if state.is_protected:
                stats.protected_members += 1
            else:
                stats.unprotected_members += 1
            primary_links = {
                edge_key(u, v) for u, v in zip(state.primary, state.primary[1:])
            }
            working_links |= primary_links
            reserved_links |= primary_links
            if state.backup is not None:
                reserved_links |= {
                    edge_key(u, v) for u, v in zip(state.backup, state.backup[1:])
                }
        stats.working_cost = sum(self.topology.cost(u, v) for u, v in working_links)
        stats.reserved_cost = sum(
            self.topology.cost(u, v) for u, v in reserved_links
        )
        return stats

    def survives(self, failures: FailureSet) -> dict[NodeId, bool]:
        """Per-member service continuity under a failure scenario."""
        outcome: dict[NodeId, bool] = {}
        for member, state in sorted(self.members.items()):
            try:
                state.active_path(failures)
                outcome[member] = True
            except UnrecoverableFailureError:
                outcome[member] = False
        return outcome

    def switchover_delay_penalty(self, member: NodeId) -> float | None:
        """Extra end-to-end delay when running on the backup path.

        Returns ``None`` for an unprotected (bridge) member: it has no
        backup to switch to, which is a different situation from a
        backup of equal delay — ``0.0`` would conflate the two.
        """
        state = self.members.get(member)
        if state is None:
            raise NotMemberError(member)
        if state.backup is None:
            return None
        return self.topology.path_delay(list(state.backup)) - self.topology.path_delay(
            list(state.primary)
        )
