"""Multicast substrate: trees, group membership, and the SPF baseline.

- :mod:`repro.multicast.tree` — the :class:`~repro.multicast.tree.MulticastTree`
  structure shared by SMRP and the baseline,
- :mod:`repro.multicast.group` — membership workloads (join/leave event
  streams with seeded randomness),
- :mod:`repro.multicast.spf_protocol` — the PIM/MOSPF-style shortest-path
  baseline the paper compares against in every figure,
- :mod:`repro.multicast.validation` — tree invariant checking used by tests
  and by the protocols' self-checks.
"""

from repro.multicast.tree import MulticastTree
from repro.multicast.group import GroupEvent, GroupWorkload, random_member_set
from repro.multicast.spf_protocol import SPFMulticastProtocol
from repro.multicast.steiner_protocol import SteinerMulticastProtocol
from repro.multicast.validation import check_tree_invariants

__all__ = [
    "MulticastTree",
    "GroupEvent",
    "GroupWorkload",
    "random_member_set",
    "SPFMulticastProtocol",
    "SteinerMulticastProtocol",
    "check_tree_invariants",
]
