"""Cost-minimizing multicast baseline (Takahashi–Matsuyama heuristic).

The paper's evaluation compares SMRP against SPF-based protocols but
argues (§4.2, citing Wei & Estrin [13]) that "the results presented in
this paper are also applicable to the cost-minimizing multicast routing
protocols".  This module provides such a protocol so the claim can be
tested: the classic Takahashi–Matsuyama (TM) incremental Steiner-tree
heuristic, in which each joining member grafts the *cheapest* path to the
**nearest point of the existing tree** rather than the shortest path to
the source.

TM is the canonical "tree-cost-first" point in the design space: it
maximises link sharing (every join reuses as much of the tree as it can
reach cheaply), which is exactly the property SMRP identifies as hostile
to local recovery — shared links concentrate members, so one failure
disconnects many and leaves them without nearby helpers.
"""

from __future__ import annotations

from repro.errors import AlreadyMemberError, NotMemberError
from repro.graph.topology import NodeId, Topology
from repro.multicast.tree import MulticastTree
from repro.multicast.validation import check_tree_invariants
from repro.routing.failure_view import NO_FAILURES, FailureSet
from repro.routing.spf import dijkstra_with_barriers


class SteinerMulticastProtocol:
    """Takahashi–Matsuyama incremental Steiner-tree construction.

    Joins connect to the nearest on-tree node over the cheapest path
    (weight ``cost``); leaves prune exactly like the other protocols.
    """

    name = "TM-Steiner"

    def __init__(
        self, topology: Topology, source: NodeId, self_check: bool = True
    ) -> None:
        self.topology = topology
        self.source = source
        self.tree = MulticastTree(topology, source)
        self.self_check = self_check

    def join(self, member: NodeId, failures: FailureSet = NO_FAILURES) -> list[NodeId]:
        """Graft ``member`` onto the nearest point of the current tree.

        Returns the grafted path (merge node first).  The search uses the
        same barrier semantics as SMRP's candidate enumeration: paths may
        end at the tree but not cross it, so the returned connection
        meets the tree exactly once, at its cheapest contact point.
        """
        if self.tree.is_member(member):
            raise AlreadyMemberError(member)
        if self.tree.is_on_tree(member):
            self.tree.add_member(member)
            return [member]
        on_tree = set(self.tree.on_tree_nodes())
        paths = dijkstra_with_barriers(
            self.topology, member, barriers=on_tree, weight="cost",
            failures=failures,
        )
        reachable = [n for n in on_tree if n in paths.dist]
        if not reachable:
            from repro.errors import NoPathError

            raise NoPathError(member, self.source, reason="tree unreachable")
        nearest = min(reachable, key=lambda n: (paths.dist[n], n))
        graft_path = list(reversed(paths.path_to(nearest)))
        self.tree.graft(graft_path)
        if self.self_check:
            check_tree_invariants(self.tree)
        return graft_path

    def leave(self, member: NodeId) -> list[NodeId]:
        """Process a leave; returns the pruned nodes."""
        if not self.tree.is_member(member):
            raise NotMemberError(member)
        removed = self.tree.prune(member)
        if self.self_check:
            check_tree_invariants(self.tree)
        return removed

    def build(self, members: list[NodeId]) -> MulticastTree:
        """Join a whole member list in order; returns the tree."""
        for member in members:
            self.join(member)
        return self.tree
