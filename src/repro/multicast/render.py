"""ASCII rendering of multicast trees.

Examples and debugging sessions want to *see* tree shapes — especially
the difference between an SPF tree's shared trunks and an SMRP tree's
spread branches.  :func:`render_tree` draws the tree top-down with box
characters; :func:`render_comparison` puts two trees side by side.
"""

from __future__ import annotations

from typing import Callable

from repro.graph.topology import NodeId
from repro.multicast.tree import MulticastTree


def render_tree(
    tree: MulticastTree,
    label: Callable[[NodeId], str] | None = None,
    show_delays: bool = False,
) -> str:
    """Draw the tree as indented ASCII art.

    Members are marked with ``*``; pure relays are bare.  With
    ``show_delays`` each node shows its link delay from its parent.
    """
    name = label or str
    lines: list[str] = []

    def describe(node: NodeId) -> str:
        text = name(node)
        if tree.is_member(node):
            text += " *"
        if show_delays:
            parent = tree.parent(node)
            if parent is not None:
                text += f" ({tree.topology.delay(parent, node):g})"
        return text

    def walk(node: NodeId, prefix: str, is_last: bool, is_root: bool) -> None:
        if is_root:
            lines.append(describe(node))
            child_prefix = ""
        else:
            connector = "└── " if is_last else "├── "
            lines.append(prefix + connector + describe(node))
            child_prefix = prefix + ("    " if is_last else "│   ")
        children = tree.children(node)
        for index, child in enumerate(children):
            walk(child, child_prefix, index == len(children) - 1, False)

    walk(tree.source, "", True, True)
    return "\n".join(lines)


def render_comparison(
    left: MulticastTree,
    right: MulticastTree,
    left_title: str = "left",
    right_title: str = "right",
    label: Callable[[NodeId], str] | None = None,
    gap: int = 4,
) -> str:
    """Two trees side by side with titles — e.g. SPF vs. SMRP."""
    left_lines = render_tree(left, label=label).splitlines()
    right_lines = render_tree(right, label=label).splitlines()
    width = max([len(l) for l in left_lines] + [len(left_title)])
    height = max(len(left_lines), len(right_lines))
    left_lines += [""] * (height - len(left_lines))
    right_lines += [""] * (height - len(right_lines))
    spacer = " " * gap
    out = [f"{left_title.ljust(width)}{spacer}{right_title}"]
    out.append(f"{'-' * width}{spacer}{'-' * max(len(right_title), 1)}")
    for l, r in zip(left_lines, right_lines):
        out.append(f"{l.ljust(width)}{spacer}{r}")
    return "\n".join(out)


def tree_statistics(tree: MulticastTree) -> str:
    """One-line structural summary used under rendered trees."""
    from repro.core.shr import shr_table

    members = len(tree.members)
    relays = len(tree.on_tree_nodes()) - members - (
        0 if tree.is_member(tree.source) else 1
    )
    depth = max(
        (len(tree.path_from_source(n)) - 1 for n in tree.on_tree_nodes()),
        default=0,
    )
    worst_shr = max(shr_table(tree).values()) if tree.on_tree_nodes() else 0
    return (
        f"members={members} relays={max(relays, 0)} links={len(tree.tree_links())} "
        f"depth={depth} cost={tree.tree_cost():g} max_SHR={worst_shr}"
    )
