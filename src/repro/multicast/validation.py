"""Multicast tree invariant checking.

Used by tests (including hypothesis property tests) and as an optional
self-check in the protocols after every mutation.  Checking is centralised
here so that the invariants are stated once:

1. every on-tree node reaches the source through the parent chain
   (rooted, acyclic, connected);
2. parent/children maps mirror each other exactly;
3. every tree link exists in the topology;
4. every member is an on-tree node;
5. every leaf is a member (no dead branches — the leave procedure must
   have trimmed them).
"""

from __future__ import annotations

from repro.errors import MulticastError
from repro.multicast.tree import MulticastTree


def check_tree_invariants(tree: MulticastTree) -> None:
    """Raise :class:`MulticastError` when any tree invariant is violated."""
    parent = tree._parent  # noqa: SLF001 — validation is a friend module.
    children = tree._children  # noqa: SLF001
    members = tree.members

    if tree.source not in parent or parent[tree.source] is not None:
        raise MulticastError("source must be on the tree with no parent")
    if set(parent) != set(children):
        raise MulticastError("parent and children maps cover different node sets")

    # Mirror check.
    for node, kids in children.items():
        for child in kids:
            if parent.get(child) != node:
                raise MulticastError(
                    f"child link {node}->{child} not mirrored in parent map"
                )
    for node, up in parent.items():
        if up is not None and node not in children.get(up, set()):
            raise MulticastError(f"parent link {node}->{up} not mirrored in children")

    # Rooted/acyclic: every node must reach the source within |tree| hops.
    limit = len(parent)
    for node in parent:
        cursor = node
        for _ in range(limit + 1):
            if cursor == tree.source:
                break
            cursor = parent[cursor]
            if cursor is None:
                raise MulticastError(f"node {node} has a parent chain ending off-root")
        else:
            raise MulticastError(f"cycle detected in parent chain of node {node}")

    # Embedding: tree links must exist in the topology.
    for node, up in parent.items():
        if up is not None and not tree.topology.has_link(node, up):
            raise MulticastError(f"tree link {node}-{up} is not in the topology")

    # Membership.
    for member in members:
        if member not in parent:
            raise MulticastError(f"member {member} is not on the tree")

    # No dead branches.
    for node, kids in children.items():
        if not kids and node not in members and node != tree.source:
            raise MulticastError(f"leaf {node} is neither a member nor the source")
