"""Tree-quality metrics: end-to-end delay and tree cost (paper §4.2).

These are the two quantities SMRP knowingly trades away (bounded by
``D_thresh``) in exchange for shorter recovery paths.
"""

from __future__ import annotations

from repro.errors import MulticastError
from repro.graph.topology import NodeId
from repro.multicast.tree import MulticastTree


def member_delays(tree: MulticastTree) -> dict[NodeId, float]:
    """``D_{S,R}`` for every member ``R``."""
    return {member: tree.delay_from_source(member) for member in tree.members}


def average_delay(tree: MulticastTree) -> float:
    """Mean end-to-end delay over the member set."""
    delays = member_delays(tree)
    if not delays:
        raise MulticastError("tree has no members; average delay is undefined")
    return sum(delays.values()) / len(delays)


def max_delay(tree: MulticastTree) -> float:
    """Worst member delay (jitter-sensitive applications care about this)."""
    delays = member_delays(tree)
    if not delays:
        raise MulticastError("tree has no members; max delay is undefined")
    return max(delays.values())


def tree_cost(tree: MulticastTree) -> float:
    """``Cost_T`` — the sum of link costs over the tree."""
    return tree.tree_cost()


def delay_jitter(tree: MulticastTree) -> float:
    """Inter-member delay spread (max − min member delay).

    The paper's QoS motivation names "delay jitter" alongside delay
    (§3.1): applications mixing streams from the same source care how
    far apart members' one-way delays sit.
    """
    delays = member_delays(tree)
    if not delays:
        raise MulticastError("tree has no members; jitter is undefined")
    return max(delays.values()) - min(delays.values())


def delay_stretch(tree: MulticastTree, spf_delays: dict[NodeId, float]) -> dict[NodeId, float]:
    """Per-member stretch ``D_{S,R} / D^{SPF}_{S,R}``.

    The Path Selection Criterion guarantees each member's stretch at join
    time is at most ``1 + D_thresh``; tests use this to verify the bound
    survives reshaping.
    """
    stretches: dict[NodeId, float] = {}
    for member, delay in member_delays(tree).items():
        spf = spf_delays[member]
        stretches[member] = delay / spf if spf > 0 else 1.0
    return stretches
