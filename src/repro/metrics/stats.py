"""Summary statistics: means and 95% confidence intervals.

Figures 8–10 plot means with 95% confidence error bars over 100 random
scenarios per configuration; this module reproduces that aggregation using
the Student-t interval.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from scipy import stats as scipy_stats

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Summary:
    """Mean, spread, and a 95% confidence interval of a sample."""

    n: int
    mean: float
    std: float
    ci_low: float
    ci_high: float

    @property
    def ci_half_width(self) -> float:
        return (self.ci_high - self.ci_low) / 2.0

    def __str__(self) -> str:
        return f"{self.mean:+.4f} ± {self.ci_half_width:.4f} (n={self.n})"


def summarize(samples: Sequence[float], confidence: float = 0.95) -> Summary:
    """Mean with a Student-t confidence interval.

    Degenerate samples are handled explicitly: a single observation gets a
    zero-width interval (there is nothing to infer a spread from), and an
    empty sample is an error.
    """
    if not samples:
        raise ConfigurationError("cannot summarize an empty sample")
    if not 0 < confidence < 1:
        raise ConfigurationError(f"confidence must be in (0, 1), got {confidence}")
    n = len(samples)
    mean = sum(samples) / n
    if n == 1:
        return Summary(n=1, mean=mean, std=0.0, ci_low=mean, ci_high=mean)
    variance = sum((x - mean) ** 2 for x in samples) / (n - 1)
    std = math.sqrt(variance)
    if std == 0.0:
        return Summary(n=n, mean=mean, std=0.0, ci_low=mean, ci_high=mean)
    t_crit = float(scipy_stats.t.ppf(0.5 + confidence / 2.0, df=n - 1))
    half = t_crit * std / math.sqrt(n)
    return Summary(n=n, mean=mean, std=std, ci_low=mean - half, ci_high=mean + half)


def confidence_interval_95(samples: Sequence[float]) -> tuple[float, float]:
    """The 95% confidence interval of the sample mean."""
    summary = summarize(samples, confidence=0.95)
    return (summary.ci_low, summary.ci_high)
