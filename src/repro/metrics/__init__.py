"""Evaluation metrics (paper §4.2).

- :mod:`repro.metrics.tree_metrics` — end-to-end delay ``D_{S,R}`` and
  tree cost ``Cost_T``,
- :mod:`repro.metrics.recovery_metrics` — recovery distance ``RD_R`` under
  the worst-case failure scenario,
- :mod:`repro.metrics.relative` — the paper's relative metrics comparing
  SMRP against the SPF baseline,
- :mod:`repro.metrics.stats` — means and 95% confidence intervals (the
  error bars of Figures 8–10).
"""

from repro.metrics.tree_metrics import (
    average_delay,
    member_delays,
    tree_cost,
)
from repro.metrics.recovery_metrics import (
    MemberRecovery,
    worst_case_recovery,
    worst_case_recovery_all,
)
from repro.metrics.relative import (
    relative_cost,
    relative_delay,
    relative_recovery_distance,
)
from repro.metrics.stats import Summary, confidence_interval_95, summarize

__all__ = [
    "average_delay",
    "member_delays",
    "tree_cost",
    "MemberRecovery",
    "worst_case_recovery",
    "worst_case_recovery_all",
    "relative_cost",
    "relative_delay",
    "relative_recovery_distance",
    "Summary",
    "confidence_interval_95",
    "summarize",
]
