"""Recovery-distance measurement under the paper's worst-case scenario.

For every member ``R``, §4.3.1 fails "the link closest to the source node
on R's multicast path" — the failure that detaches the largest portion of
the tree — and measures the restoration path length ``RD_R``.  Each
member's scenario is evaluated independently on a pristine copy of the
tree (the paper's figures are per-member points/averages, not sequential
multi-failure runs).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import UnrecoverableFailureError
from repro.graph.topology import NodeId, Topology
from repro.multicast.tree import MulticastTree
from repro.core.recovery import (
    RecoveryResult,
    global_detour_recovery,
    local_detour_recovery,
    worst_case_failure,
)
from repro.obs import Observability
from repro.routing.failure_view import FailureSet


@dataclass(frozen=True)
class MemberRecovery:
    """One member's worst-case recovery measurement."""

    member: NodeId
    failure: FailureSet
    result: RecoveryResult | None  # None when unrecoverable

    @property
    def recovered(self) -> bool:
        return self.result is not None

    @property
    def recovery_distance(self) -> float:
        if self.result is None:
            raise UnrecoverableFailureError(self.member)
        return self.result.recovery_distance


def worst_case_recovery(
    topology: Topology,
    tree: MulticastTree,
    member: NodeId,
    strategy: str,
    obs: Observability | None = None,
    route_cache=None,
    route_obs=None,
) -> MemberRecovery:
    """Fail the member's source-incident link and measure its recovery.

    ``route_cache`` (a failure-aware
    :class:`~repro.routing.route_cache.RouteCache`, optional) lets the
    four per-member strategy measurements share one post-failure SPF
    computation per distinct ``(member, failure)`` scenario; ``route_obs``
    attributes the cache traffic independently of the recovery counters.
    """
    failure = worst_case_failure(tree, member)
    recovery_fn = (
        local_detour_recovery if strategy == "local" else global_detour_recovery
    )
    try:
        result = recovery_fn(
            topology,
            tree,
            member,
            failure,
            obs=obs,
            route_cache=route_cache,
            route_obs=route_obs,
        )
    except UnrecoverableFailureError:
        return MemberRecovery(member=member, failure=failure, result=None)
    return MemberRecovery(member=member, failure=failure, result=result)


def worst_case_recovery_all(
    topology: Topology,
    tree: MulticastTree,
    strategy: str,
    obs: Observability | None = None,
    route_cache=None,
) -> dict[NodeId, MemberRecovery]:
    """Worst-case recovery for every member, each in its own scenario.

    Members that the failure does not actually disconnect (their path's
    first link is shared with no one, yet they sit next to the source —
    or the SPF tie-break gave them a one-hop path) still produce a
    measurement; ``already_connected`` results carry ``RD = 0``.
    """
    return {
        member: worst_case_recovery(
            topology, tree, member, strategy, obs=obs, route_cache=route_cache
        )
        for member in sorted(tree.members)
    }
