"""The paper's relative metrics (§4.2).

Absolute delays and costs vary arbitrarily with the random topology, so
the evaluation reports relative values:

.. math::

    RD^{relative}_R = (RD^{SPF}_R - RD^{SMRP}_R) / RD^{SPF}_R

    D^{relative}_{S,R} = (D^{SMRP}_{S,R} - D^{SPF}_{S,R}) / D^{SPF}_{S,R}

    Cost^{relative}_T = (Cost^{SMRP}_T - Cost^{SPF}_T) / Cost^{SPF}_T

Positive ``RD_relative`` means SMRP's recovery path is *shorter* (good);
positive delay/cost relatives are SMRP's overhead (the ≈5% penalty the
paper reports at ``D_thresh = 0.3``).
"""

from __future__ import annotations

from repro.errors import ConfigurationError


def relative_recovery_distance(rd_spf: float, rd_smrp: float) -> float:
    """``(RD^SPF − RD^SMRP) / RD^SPF``; positive when SMRP recovers shorter.

    A zero SPF recovery distance (member not actually cut off) carries no
    information; callers filter those out before averaging, and passing
    one here is an error rather than a silent NaN.
    """
    if rd_spf <= 0:
        raise ConfigurationError(
            f"relative RD undefined for non-positive RD^SPF ({rd_spf})"
        )
    return (rd_spf - rd_smrp) / rd_spf


def relative_delay(d_spf: float, d_smrp: float) -> float:
    """``(D^SMRP − D^SPF) / D^SPF``; positive is SMRP's delay penalty."""
    if d_spf <= 0:
        raise ConfigurationError(
            f"relative delay undefined for non-positive D^SPF ({d_spf})"
        )
    return (d_smrp - d_spf) / d_spf


def relative_cost(cost_spf: float, cost_smrp: float) -> float:
    """``(Cost^SMRP − Cost^SPF) / Cost^SPF``; positive is SMRP's cost penalty."""
    if cost_spf <= 0:
        raise ConfigurationError(
            f"relative cost undefined for non-positive Cost^SPF ({cost_spf})"
        )
    return (cost_smrp - cost_spf) / cost_spf
