"""Reference (dict-based) Dijkstra implementations.

These are the original straight-from-the-definition searches that
:mod:`repro.routing.spf` shipped before the CSR kernel rewrite
(:mod:`repro.routing.csr`).  They are kept — not exported through the
package API — as the executable specification the compiled kernels are
validated against: the property suite runs both over randomised Waxman
topologies and failure sets and asserts identical ``dist`` and ``parent``
maps, including deterministic tie-break agreement and dict insertion
order.

Semantics (shared with the production kernels):

- failed links and nodes are invisible to the search;
- equal-length paths keep the smaller predecessor id.  The historical
  implementation compared ``u < (parent[v] or -1)``, which collapses a
  legitimate predecessor of node id ``0`` to the ``-1`` sentinel (``0``
  is falsy); the comparison here uses an explicit ``None`` test so ties
  against predecessor ``0`` are evaluated correctly (regression-pinned in
  ``tests/routing/test_spf.py``);
- the search may be restricted by *barriers*: nodes that can terminate a
  path but never relay one (§3.2.2's first-contact join semantics).
"""

from __future__ import annotations

import heapq

from repro.errors import RoutingError, TopologyError
from repro.graph.topology import NodeId, Topology
from repro.routing.failure_view import NO_FAILURES, FailureSet
from repro.routing.spf import ShortestPaths


def dijkstra_reference(
    topology: Topology,
    source: NodeId,
    weight: str = "delay",
    failures: FailureSet = NO_FAILURES,
) -> ShortestPaths:
    """Dict-based single-source shortest paths (specification version)."""
    if weight not in ("delay", "cost"):
        raise RoutingError(f"unknown weight {weight!r}; expected 'delay' or 'cost'")
    if not topology.has_node(source):
        raise TopologyError(f"source {source} is not in the topology")
    result = ShortestPaths(source=source)
    if failures.node_failed(source):
        return result

    adjacency = topology.adjacency()
    weight_of = (
        (lambda u, v: adjacency[u][v])
        if weight == "delay"
        else (lambda u, v: topology.cost(u, v))
    )

    result.dist[source] = 0.0
    result.parent[source] = None
    # Heap entries: (distance, predecessor id, node).  Including the
    # predecessor id makes equal-distance pops deterministic: the path via
    # the smaller predecessor is settled first and kept.
    heap: list[tuple[float, int, NodeId]] = [(0.0, -1, source)]
    settled: set[NodeId] = set()
    while heap:
        dist_u, _, u = heapq.heappop(heap)
        if u in settled:
            continue
        settled.add(u)
        for v in sorted(adjacency[u]):
            if v in settled:
                continue
            if not failures.link_usable(u, v):
                continue
            candidate = dist_u + weight_of(u, v)
            best = result.dist.get(v)
            if best is None or candidate < best - 1e-12:
                result.dist[v] = candidate
                result.parent[v] = u
                heapq.heappush(heap, (candidate, u, v))
            elif abs(candidate - best) <= 1e-12:
                # Tie: prefer the smaller predecessor id for determinism.
                # The source's parent (None) is never replaced.
                current = result.parent[v]
                if current is not None and u < current:
                    result.parent[v] = u
                    heapq.heappush(heap, (candidate, u, v))
    return result


def dijkstra_with_barriers_reference(
    topology: Topology,
    source: NodeId,
    barriers: set[NodeId],
    weight: str = "delay",
    failures: FailureSet = NO_FAILURES,
) -> ShortestPaths:
    """Barrier-constrained shortest paths (specification version).

    Barrier nodes can be settled (they are valid destinations) but their
    outgoing links are not relaxed, so no path traverses them.  ``source``
    being itself a barrier is allowed: the search starts normally from it.
    """
    if weight not in ("delay", "cost"):
        raise RoutingError(f"unknown weight {weight!r}; expected 'delay' or 'cost'")
    if not topology.has_node(source):
        raise TopologyError(f"source {source} is not in the topology")
    result = ShortestPaths(source=source)
    if failures.node_failed(source):
        return result

    adjacency = topology.adjacency()
    weight_of = (
        (lambda u, v: adjacency[u][v])
        if weight == "delay"
        else (lambda u, v: topology.cost(u, v))
    )
    result.dist[source] = 0.0
    result.parent[source] = None
    heap: list[tuple[float, int, NodeId]] = [(0.0, -1, source)]
    settled: set[NodeId] = set()
    while heap:
        dist_u, _, u = heapq.heappop(heap)
        if u in settled:
            continue
        settled.add(u)
        if u in barriers and u != source:
            continue  # reachable, but not traversable
        for v in sorted(adjacency[u]):
            if v in settled:
                continue
            if not failures.link_usable(u, v):
                continue
            candidate = dist_u + weight_of(u, v)
            best = result.dist.get(v)
            if best is None or candidate < best - 1e-12:
                result.dist[v] = candidate
                result.parent[v] = u
                heapq.heappush(heap, (candidate, u, v))
            elif abs(candidate - best) <= 1e-12:
                current = result.parent[v]
                if current is not None and u < current:
                    result.parent[v] = u
                    heapq.heappush(heap, (candidate, u, v))
    return result
