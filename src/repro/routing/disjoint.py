"""Link-disjoint path pairs (Suurballe/Bhandari).

The paper's related work (§2) contrasts SMRP's *reactive* local recovery
with *proactive* schemes: Han & Shin's dependable connections [22]
pre-establish a backup channel disjoint from the primary, and Medard et
al. [16] build redundant trees.  To let the benchmarks compare SMRP
against a protection-based design point, this module computes a pair of
link-disjoint paths of minimum total delay between two nodes.

Implementation: Bhandari's variant of Suurballe's algorithm —

1. find a shortest path ``P1``;
2. re-run a shortest-path search in a *modified* graph where every link
   of ``P1`` may be traversed only in the reverse direction with negated
   weight (requires a Bellman-Ford-style relaxation because of the
   negative arcs);
3. remove the arcs that ``P1`` and ``P2`` traverse in opposite
   directions ("interlacing") and recombine the remainder into two
   link-disjoint paths.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import NoPathError, TopologyError
from repro.graph.topology import Edge, NodeId, Topology, edge_key
from repro.routing.failure_view import NO_FAILURES, FailureSet
from repro.routing.spf import dijkstra


@dataclass(frozen=True)
class DisjointPair:
    """Two link-disjoint paths between the same endpoints.

    ``primary`` is the shorter of the two; equal-delay pairs break the
    tie by the *reversed* node sequence — the same smaller-predecessor-id
    convention the scalar :func:`~repro.routing.spf.dijkstra` uses for
    equal-length paths — so a pair whose shorter leg ties with the
    unicast shortest path selects the identical node sequence.
    ``total_delay`` is their combined length — the resource footprint a
    protection scheme must reserve.
    """

    primary: tuple[NodeId, ...]
    backup: tuple[NodeId, ...]
    primary_delay: float
    backup_delay: float

    @property
    def total_delay(self) -> float:
        return self.primary_delay + self.backup_delay

    def shared_links(self) -> set[Edge]:
        """Empty by construction; exposed for tests."""
        first = {edge_key(u, v) for u, v in zip(self.primary, self.primary[1:])}
        second = {edge_key(u, v) for u, v in zip(self.backup, self.backup[1:])}
        return first & second


def link_disjoint_paths(
    topology: Topology,
    source: NodeId,
    target: NodeId,
    failures: FailureSet = NO_FAILURES,
) -> DisjointPair:
    """Minimum-total-delay pair of link-disjoint paths ``source → target``.

    Raises :class:`NoPathError` when no such pair exists (the graph has a
    bridge separating the endpoints).
    """
    if not topology.has_node(source) or not topology.has_node(target):
        raise TopologyError(f"unknown endpoint in ({source}, {target})")
    if source == target:
        raise TopologyError("disjoint paths need distinct endpoints")

    first = dijkstra(topology, source, failures=failures)
    if target not in first.dist:
        raise NoPathError(source, target)
    p1 = first.path_to(target)
    p1_arcs = set(zip(p1, p1[1:]))

    # Bellman-Ford over the residual graph: arcs of P1 are reversed with
    # negated weight; all other links usable in both directions.
    arcs: dict[tuple[NodeId, NodeId], float] = {}
    for link in topology.links():
        if not failures.link_usable(link.u, link.v):
            continue
        for u, v in ((link.u, link.v), (link.v, link.u)):
            if (u, v) in p1_arcs:
                continue  # forward traversal of a P1 arc is forbidden
            if (v, u) in p1_arcs:
                arcs[(u, v)] = -link.delay  # reverse of a P1 arc
            else:
                arcs[(u, v)] = link.delay

    dist: dict[NodeId, float] = {source: 0.0}
    parent: dict[NodeId, NodeId] = {}
    for _ in range(topology.num_nodes):
        changed = False
        for (u, v), weight in arcs.items():
            if u in dist and dist[u] + weight < dist.get(v, float("inf")) - 1e-12:
                dist[v] = dist[u] + weight
                parent[v] = u
                changed = True
        if not changed:
            break
    if target not in dist:
        raise NoPathError(
            source, target, reason="no second link-disjoint path exists"
        )
    p2: list[NodeId] = [target]
    seen = {target}
    cursor = target
    while cursor != source:
        cursor = parent[cursor]
        if cursor in seen:  # pragma: no cover - negative cycle guard
            raise NoPathError(source, target, reason="negative cycle detected")
        seen.add(cursor)
        p2.append(cursor)
    p2.reverse()

    return _recombine(topology, source, target, p1, p2)


def _recombine(
    topology: Topology,
    source: NodeId,
    target: NodeId,
    p1: list[NodeId],
    p2: list[NodeId],
) -> DisjointPair:
    """Drop interlacing arcs and stitch the remainder into two paths."""
    arcs: set[tuple[NodeId, NodeId]] = set(zip(p1, p1[1:]))
    for u, v in zip(p2, p2[1:]):
        if (v, u) in arcs:
            arcs.discard((v, u))  # traversed oppositely: cancels out
        else:
            arcs.add((u, v))

    # The remaining arcs form two arc-disjoint source→target paths; walk
    # them greedily.
    out: dict[NodeId, list[NodeId]] = {}
    for u, v in arcs:
        out.setdefault(u, []).append(v)
    for vs in out.values():
        vs.sort()

    paths: list[list[NodeId]] = []
    for _ in range(2):
        path = [source]
        cursor = source
        while cursor != target:
            nxt = out[cursor].pop(0)
            path.append(nxt)
            cursor = nxt
        paths.append(path)

    delays = [topology.path_delay(p) for p in paths]
    # Equal-delay tie-break: reversed-sequence comparison, i.e. prefer
    # the smaller node id at the *target* end first — exactly dijkstra's
    # smaller-predecessor-id rule, so protection primaries stay
    # consistent with the routing substrate's shortest paths.
    order = sorted(range(2), key=lambda i: (delays[i], tuple(reversed(paths[i]))))
    primary, backup = paths[order[0]], paths[order[1]]
    return DisjointPair(
        primary=tuple(primary),
        backup=tuple(backup),
        primary_delay=delays[order[0]],
        backup_delay=delays[order[1]],
    )
