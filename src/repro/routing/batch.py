"""Multi-root SPF: one vectorized sweep over the CSR substrate.

:func:`repro.routing.csr.csr_dijkstra` made a *single* source fast; a
controller restoring hundreds of sessions after a regional failure, or a
benchmark sweeping every source of a 1000-node topology, still pays one
Python heap loop per root.  This module batches those runs: one
:func:`csr_dijkstra_multi` call takes *all* the roots that share a
``(topology state, weight, failure scenario)`` context and returns dense
``(len(roots), n)`` distance/parent matrices plus per-root discovery
orders, computed by a numpy-vectorized Bellman-Ford frontier sweep over
the graph's incoming-CSR view (:meth:`~repro.routing.csr.CsrGraph.incoming`).
The failure/barrier bitsets are compiled **once per call**, not per root.

The sweep's data layout is chosen for memory behaviour, not elegance:
candidate matrices are ``(arcs, roots)`` so the root axis is contiguous,
node rows are *permuted into in-degree buckets*
(:class:`_BatchPlan`) so every per-destination minimum is a plain
``np.minimum.reduce`` over a dense ``(nodes_with_degree_d, d, roots)``
reshape — no ``reduceat`` segment bookkeeping in the hot loop — and the
round buffers are allocated once per chunk and reused.

Bit-identity contract
---------------------
The scalar kernel remains the executable specification.  For every root
the batch kernel reproduces, bit for bit:

- **distances** — each ``dist[v]`` is the same IEEE-754 sum
  ``dist[u] + w`` the scalar kernel settles with, accumulated along the
  identical parent chain (numpy float64 addition *is* C-double
  addition);
- **parents** — recovered after the distance fixpoint in one
  exact-equality pass: the final parent is the smallest predecessor
  attaining ``dist[u] + w == dist[v]``, precisely where the scalar
  heap's improve-then-tie-lowering sequence ends up (ties between
  equal-length paths keep the smallest predecessor index, the
  library-wide deterministic tie-break);
- **first-discovery order** — the dict insertion order downstream
  routing tables iterate.  The sweep has no heap, so the order is
  *reconstructed* from the fixpoint.  The scalar heap pops entries in
  lexicographic ``(dist, pushing-predecessor, node)`` order and every
  tie-offering predecessor of ``v`` settles before ``v`` does (weights
  are strictly positive), so ``v``'s first pop carries its *final*
  parent: settle order is exactly ``sort by (dist, parent, node)``.
  A node is *discovered* (appended to the order) by the first offer it
  receives, i.e. by its earliest-settled in-neighbour whose arc is
  usable and traversable (non-barrier, or the root itself); nodes
  discovered by the same settling predecessor append in node-index
  order because arc slices are pre-sorted.  Emitting root-first, then
  ``sort by (discoverer settle rank, node)``, reproduces the heap's
  insertion order without running it.

The equivalence holds under the same *well-separated candidates*
assumption the scalar epsilon tie-band (``1e-12``) already encodes:
competing path lengths are either exactly equal (the common case —
equal sums of identical floats) or separated by more than the band, and
arc weights are strictly positive.  The hypothesis suite
(``tests/properties/test_batch_equivalence``) asserts the full contract
— distances, parents, and insertion order — against looped scalar runs
on randomized topologies, failures, and barriers.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.graph.topology import NodeId, Topology
from repro.routing.csr import INF, NO_PARENT, CsrGraph, compile_failures
from repro.routing.failure_view import NO_FAILURES, FailureSet
from repro.routing.spf import ShortestPaths, _check_args

#: Cells (roots × arcs) per relaxation sweep; larger batches run in
#: root-chunks so a 1000-root call never materializes the full candidate
#: matrix at once.
_CHUNK_CELLS = 4_000_000

#: The scalar kernels' tie band: candidates within this of the incumbent
#: distance are ties, resolved toward the smaller predecessor index.
_EPS = 1e-12


class _BatchPlan:
    """Degree-bucketed relaxation layout for one compiled graph.

    Node rows are permuted so all destinations with the same in-degree
    are adjacent, and the incoming arcs are permuted to match; each
    round's per-destination minimum then runs as one contiguous
    ``minimum.reduce`` per distinct degree instead of a segmented
    ``reduceat``.  Built once per :class:`CsrGraph` (cached on the
    graph), independent of weights, failures, and barriers.
    """

    __slots__ = (
        "n",
        "num_arcs",
        "node_order",
        "pos_of",
        "arc_perm",
        "in_src_perm",
        "src_pos_perm",
        "dst_pos_perm",
        "in_arc_perm",
        "dst_node_perm",
        "zero_rows",
        "groups",
    )

    def __init__(self, csr: CsrGraph) -> None:
        in_ptr, in_src, in_arc = csr.incoming()
        n = csr.num_nodes
        deg = np.diff(in_ptr)
        self.n = n
        self.num_arcs = int(in_src.shape[0])

        # Rows sorted by (in-degree, node index); zero-degree rows first.
        node_order = np.lexsort((np.arange(n), deg))
        pos_of = np.empty(n, dtype=np.int64)
        pos_of[node_order] = np.arange(n, dtype=np.int64)
        self.node_order = node_order
        self.pos_of = pos_of

        # Arc positions regrouped to follow the row permutation.
        lengths = deg[node_order]
        starts = in_ptr[node_order]
        ends = np.cumsum(lengths)
        arc_perm = (
            np.arange(self.num_arcs, dtype=np.int64)
            - np.repeat(ends - lengths, lengths)
            + np.repeat(starts, lengths)
        )
        self.arc_perm = arc_perm
        self.in_src_perm = in_src[arc_perm]
        self.src_pos_perm = pos_of[self.in_src_perm]
        self.in_arc_perm = in_arc[arc_perm]
        dst_rows = np.repeat(np.arange(n, dtype=np.int64), lengths)
        self.dst_pos_perm = dst_rows
        self.dst_node_perm = node_order[dst_rows]

        self.zero_rows = int(np.count_nonzero(deg == 0))
        # (degree, row_lo, row_hi, arc_lo, arc_hi) per distinct degree>0.
        groups: list[tuple[int, int, int, int, int]] = []
        sorted_deg = deg[node_order]
        boundaries = np.nonzero(np.diff(sorted_deg))[0] + 1
        row_edges = np.concatenate(([0], boundaries, [n]))
        arc_edge = 0
        for lo, hi in zip(row_edges[:-1], row_edges[1:]):
            d = int(sorted_deg[lo])
            if d == 0:
                continue
            count = int(hi - lo)
            groups.append((d, int(lo), int(hi), arc_edge, arc_edge + count * d))
            arc_edge += count * d
        self.groups = groups

    def segment_min(self, values: np.ndarray, out: np.ndarray) -> np.ndarray:
        """Per-destination-row minimum of an ``(arcs, R)`` matrix."""
        for d, rlo, rhi, alo, ahi in self.groups:
            block = values[alo:ahi].reshape(rhi - rlo, d, values.shape[1])
            np.minimum.reduce(block, axis=1, out=out[rlo:rhi])
        return out


def _plan_for(csr: CsrGraph) -> _BatchPlan:
    plan = csr._batch_plan
    if plan is None:
        plan = _BatchPlan(csr)
        csr._batch_plan = plan
    return plan


def _chunk_roots(num_roots: int, num_arcs: int) -> int:
    """Roots per sweep chunk, bounding the candidate-matrix size."""
    if num_roots <= 1 or num_arcs == 0:
        return max(1, num_roots)
    return max(1, min(num_roots, _CHUNK_CELLS // max(1, num_arcs)))


def csr_dijkstra_multi(
    csr: CsrGraph,
    root_indices: Sequence[int],
    weights,
    mask: tuple[bytearray, bytearray] | None,
    barriers: bytearray | None = None,
) -> tuple[np.ndarray, np.ndarray, list[np.ndarray], int]:
    """Shortest paths from many roots in one vectorized sweep.

    Parameters mirror :func:`~repro.routing.csr.csr_dijkstra` with the
    single root index replaced by a sequence; ``weights`` is the cached
    array from :meth:`CsrGraph.weights` (any arc-indexed sequence
    works).  Returns ``(dist, parent, orders, rounds)``: ``dist`` is
    ``(len(roots), n)`` float64 (``inf`` when unreached), ``parent`` is
    ``(len(roots), n)`` int64 (:data:`~repro.routing.csr.NO_PARENT` for
    roots and unreached nodes), ``orders`` lists each root's node
    indices in first-discovery order, and ``rounds`` counts relaxation
    sweeps (for observability).

    Dead roots are *not* special-cased, matching the scalar kernel: a
    root marked in the failure bitset still gets ``dist 0`` and relaxes
    its out-arcs (the :func:`dijkstra_multi` wrapper applies the public
    dead-source semantics, exactly as :func:`~repro.routing.spf.dijkstra`
    does for the scalar kernel).
    """
    n = csr.num_nodes
    roots = np.asarray(list(root_indices), dtype=np.int64)
    num_roots = roots.shape[0]
    dist = np.full((num_roots, n), INF, dtype=np.float64)
    parent = np.full((num_roots, n), NO_PARENT, dtype=np.int64)
    if num_roots == 0 or n == 0:
        return dist, parent, [], 0
    dist[np.arange(num_roots), roots] = 0.0

    plan = _plan_for(csr)
    num_arcs = plan.num_arcs
    if num_arcs == 0:
        orders = [roots[r : r + 1].copy() for r in range(num_roots)]
        return dist, parent, orders, 0

    w = np.asarray(weights, dtype=np.float64)[plan.in_arc_perm]
    if mask is not None:
        node_dead, arc_blocked = mask
        dead = np.frombuffer(bytes(node_dead), dtype=np.uint8).astype(bool)
        blocked = np.frombuffer(bytes(arc_blocked), dtype=np.uint8).astype(bool)
        # The scalar kernel skips arcs that are blocked or enter a dead
        # node; arcs *leaving* a dead non-root node never fire because
        # the node is never reached, and a dead root's out-arcs do fire.
        w = np.where(blocked[plan.in_arc_perm] | dead[plan.dst_node_perm], INF, w)
    barrier = None
    if barriers is not None:
        flags = np.frombuffer(bytes(barriers), dtype=np.uint8).astype(bool)
        if flags.any():
            barrier = flags

    orders: list[np.ndarray] = []
    total_rounds = 0
    chunk = _chunk_roots(num_roots, num_arcs)
    for lo in range(0, num_roots, chunk):
        hi = min(num_roots, lo + chunk)
        rounds, dist_plan, w_eff = _sweep_chunk(
            plan, dist[lo:hi], parent[lo:hi], roots[lo:hi], w, barrier
        )
        total_rounds += rounds
        orders.extend(
            _discovery_orders(
                plan, dist[lo:hi], parent[lo:hi], roots[lo:hi], dist_plan, w_eff
            )
        )
    return dist, parent, orders, total_rounds


def _effective_weights(
    plan: _BatchPlan,
    roots: np.ndarray,
    w: np.ndarray,
    barrier: np.ndarray | None,
) -> np.ndarray:
    """Per-arc offer weights, ``(arcs, 1)`` or ``(arcs, R)`` with barriers.

    Barrier sources never offer (weight ``inf``) — except each root for
    its own column, matching the scalar kernel's "the source itself is
    always traversable" rule.
    """
    if barrier is None:
        return w[:, None]
    gag = barrier[plan.in_src_perm][:, None] & (
        plan.in_src_perm[:, None] != roots[None, :]
    )
    return np.where(gag, INF, w[:, None])


def _sweep_chunk(
    plan: _BatchPlan,
    dist_out: np.ndarray,
    parent_out: np.ndarray,
    roots: np.ndarray,
    w: np.ndarray,
    barrier: np.ndarray | None,
) -> tuple[int, np.ndarray, np.ndarray]:
    """Relax one root chunk to fixpoint.

    Returns ``(rounds, dist_plan, w_eff)`` — the round count plus the
    plan-space distance matrix and effective weights, which the
    discovery-order reconstruction reuses.
    """
    num_roots = roots.shape[0]
    n = plan.n
    w_eff = _effective_weights(plan, roots, w, barrier)
    src_pos = plan.src_pos_perm

    dist = np.full((n, num_roots), INF, dtype=np.float64)
    dist[plan.pos_of[roots], np.arange(num_roots)] = 0.0
    best = np.empty((n, num_roots), dtype=np.float64)
    best[: plan.zero_rows] = INF  # in-degree-0 rows: never offered

    rounds = 0
    while True:
        rounds += 1
        for d, rlo, rhi, alo, ahi in plan.groups:
            cand = dist[src_pos[alo:ahi]]
            cand += w_eff[alo:ahi]
            np.minimum.reduce(
                cand.reshape(rhi - rlo, d, num_roots), axis=1, out=best[rlo:rhi]
            )
        improve = best < dist - _EPS
        if not improve.any():
            break
        np.copyto(dist, best, where=improve)

    # Parent recovery from the fixpoint: the smallest predecessor
    # attaining the settled distance exactly.  Roots keep NO_PARENT
    # (positive weights: nothing sums to 0) and so do unreached rows
    # (masked on finite distance).
    sentinel = np.int64(n)
    min_u = np.full((n, num_roots), sentinel)
    for d, rlo, rhi, alo, ahi in plan.groups:
        cand = dist[src_pos[alo:ahi]]
        cand += w_eff[alo:ahi]
        cand = cand.reshape(rhi - rlo, d, num_roots)
        src_ids = plan.in_src_perm[alo:ahi].reshape(rhi - rlo, d)
        offered = np.where(
            cand == dist[rlo:rhi, None, :], src_ids[:, :, None], sentinel
        )
        np.minimum.reduce(offered, axis=1, out=min_u[rlo:rhi])
    parent = np.where(
        (min_u < sentinel) & (dist < INF), min_u, np.int64(NO_PARENT)
    )

    # Back to original row labels, root-major.
    dist_out[...] = dist[plan.pos_of].T
    parent_out[...] = parent[plan.pos_of].T
    return rounds, dist, w_eff


def _discovery_orders(
    plan: _BatchPlan,
    dist: np.ndarray,
    parent: np.ndarray,
    roots: np.ndarray,
    dist_plan: np.ndarray,
    w_eff: np.ndarray,
) -> list[np.ndarray]:
    """Reconstruct each root's first-discovery order from the fixpoint.

    ``dist``/``parent`` are the chunk's root-major, original-label
    matrices; ``dist_plan``/``w_eff`` are the sweep's plan-space
    distance matrix and effective weights, reused for the in-neighbour
    scan.
    """
    num_roots, n = dist.shape
    # Settle order per root: (dist, final parent, node) — see module doc.
    # lexsort is stable, so equal (dist, parent) cells keep column order
    # and the node-index key is implicit.
    perm = np.lexsort((parent, dist), axis=-1)
    settle_rank = np.empty((num_roots, n), dtype=np.int64)
    np.put_along_axis(
        settle_rank,
        perm,
        np.broadcast_to(np.arange(n, dtype=np.int64), (num_roots, n)),
        axis=1,
    )

    # A settled in-neighbour offers v iff its arc is usable and it may
    # relax (non-barrier, or the column's own root); v's discoverer is
    # the earliest such settler.  Ranks move to plan space with an extra
    # sentinel row so unusable arcs and unreached sources gather rank n.
    sentinel = np.int64(n)
    rank_plan = np.empty((n + 1, num_roots), dtype=np.int64)
    rank_plan[:n] = np.ascontiguousarray(settle_rank.T)[plan.node_order]
    rank_plan[rank_plan.shape[0] - 1] = sentinel
    np.copyto(rank_plan[:n], sentinel, where=dist_plan == INF)
    if w_eff.shape[1] == 1:
        src_idx = np.where(np.isfinite(w_eff[:, 0]), plan.src_pos_perm, np.int64(n))
        src_rank = rank_plan[src_idx]
    else:  # per-root barrier gags: mask after the gather
        src_rank = np.where(
            np.isfinite(w_eff), rank_plan[plan.src_pos_perm], sentinel
        )
    disc = np.full((n, num_roots), sentinel)
    plan.segment_min(src_rank, out=disc)  # deg-0 rows keep the sentinel
    # disc rows are in plan space; re-label to original node indices:
    disc_rows = np.empty((n, num_roots), dtype=np.int64)
    disc_rows[plan.node_order] = disc
    disc = np.ascontiguousarray(disc_rows.T)  # (R, n), original labels

    # Emit root-first, then reached nodes by (discoverer rank, node) —
    # the stable argsort keeps column order on rank ties; unreached
    # nodes keep the sentinel rank n and sort past the count.
    disc[np.arange(num_roots), roots] = -1
    counts = (dist < INF).sum(axis=1)
    sorted_cols = np.argsort(disc, axis=1, kind="stable")
    return [sorted_cols[r, : counts[r]] for r in range(num_roots)]


class BatchShortestPaths:
    """Per-root :class:`~repro.routing.spf.ShortestPaths` views over one
    multi-root kernel result.

    Materialization is lazy and cached per root; a materialized view is
    bit-identical — values, types (builtin ``float``/ids, never numpy
    scalars), and dict insertion order — to what the per-call
    :func:`~repro.routing.spf.dijkstra` would have returned for the same
    ``(topology state, weight, failures)`` context.  Roots that were
    failed in the scenario yield the same empty result the scalar
    wrapper produces for a dead source.
    """

    __slots__ = ("weight", "_csr", "_row_of", "_dist", "_parent", "_orders", "_views")

    def __init__(
        self,
        csr: CsrGraph,
        weight: str,
        row_of: dict[NodeId, int | None],
        dist: np.ndarray,
        parent: np.ndarray,
        orders: list[np.ndarray],
    ) -> None:
        self.weight = weight
        self._csr = csr
        self._row_of = row_of  # root id → matrix row (None: dead root)
        self._dist = dist
        self._parent = parent
        self._orders = orders
        self._views: dict[NodeId, ShortestPaths] = {}

    @property
    def roots(self) -> list[NodeId]:
        return list(self._row_of)

    def __contains__(self, root: NodeId) -> bool:
        return root in self._row_of

    def __len__(self) -> int:
        return len(self._row_of)

    def paths(self, root: NodeId) -> ShortestPaths:
        """The materialized single-source result for ``root``."""
        view = self._views.get(root)
        if view is not None:
            return view
        row = self._row_of[root]  # KeyError for roots outside the batch
        view = ShortestPaths(source=root)
        if row is not None:
            ids = self._csr.node_ids
            dist = self._dist[row].tolist()
            parent = self._parent[row].tolist()
            rdist = view.dist
            rparent = view.parent
            for i in self._orders[row].tolist():
                nid = ids[i]
                rdist[nid] = dist[i]
                p = parent[i]
                rparent[nid] = None if p == NO_PARENT else ids[p]
        self._views[root] = view
        return view


def dijkstra_multi(
    topology: Topology,
    roots: Iterable[NodeId],
    weight: str = "delay",
    failures: FailureSet = NO_FAILURES,
    obs=None,
) -> BatchShortestPaths:
    """Single-call shortest paths from every root in ``roots``.

    The batch analogue of :func:`~repro.routing.spf.dijkstra`: one
    failure compile, one vectorized kernel invocation, identical
    per-root results.  Failed roots yield empty results (the scalar
    wrapper's dead-source semantics); duplicate roots collapse to one
    kernel row.

    ``obs`` accounts the call under ``routing.batch.calls`` /
    ``routing.batch.roots`` / ``routing.batch.rounds``.
    """
    csr = topology.csr()
    row_of: dict[NodeId, int | None] = {}
    indices: list[int] = []
    for root in roots:
        if root in row_of:
            continue
        _check_args(topology, root, weight)
        if failures.node_failed(root):
            row_of[root] = None
        else:
            row_of[root] = len(indices)
            indices.append(csr.index_of[root])
    dist, parent, orders, rounds = csr_dijkstra_multi(
        csr,
        indices,
        csr.weights(weight),
        compile_failures(csr, failures),
    )
    if obs is not None:
        obs.counter("routing.batch.calls").inc()
        obs.counter("routing.batch.roots").inc(len(indices))
        obs.counter("routing.batch.rounds").inc(rounds)
    return BatchShortestPaths(csr, weight, row_of, dist, parent, orders)
