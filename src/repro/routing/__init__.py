"""Unicast routing substrate (the paper's OSPF-like underlay).

SMRP sits on top of a conventional link-state unicast routing protocol: it
needs shortest-path distances for the ``D_thresh`` bound, shortest paths to
arbitrary merge points for candidate enumeration, and — for the global-
detour baseline — re-converged routes after a failure.  This subpackage
implements that underlay from scratch:

- :mod:`repro.routing.failure_view` — immutable sets of failed components
  and graph views that mask them,
- :mod:`repro.routing.spf` — Dijkstra shortest-path-first with
  deterministic tie-breaking,
- :mod:`repro.routing.csr` — the compiled CSR graph form and the
  array-based SPF kernels the searches actually run on,
- :mod:`repro.routing.spf_reference` — the retained dict-based
  implementations, the kernels' executable specification,
- :mod:`repro.routing.tables` — per-node routing tables,
- :mod:`repro.routing.ksp` — Yen's k-shortest loopless paths,
- :mod:`repro.routing.link_state` — a link-state database with flooding
  and a convergence-latency model (used to contrast local-detour recovery
  time against waiting for unicast re-convergence, §1 and [25]),
- :mod:`repro.routing.route_cache` — memoised, failure-aware SPF state
  for repeated seeded sweeps (with single-failure reuse proofs).
"""

from repro.routing.csr import CsrGraph, compile_failures, csr_dijkstra
from repro.routing.failure_view import FailureSet, NO_FAILURES
from repro.routing.route_cache import RouteCache
from repro.routing.spf import (
    ShortestPaths,
    dijkstra,
    dijkstra_with_barriers,
    shortest_path,
    spf_distance,
)
from repro.routing.tables import RoutingTable, build_routing_table
from repro.routing.ksp import k_shortest_paths
from repro.routing.link_state import LinkStateDatabase, ConvergenceModel

__all__ = [
    "CsrGraph",
    "compile_failures",
    "csr_dijkstra",
    "FailureSet",
    "NO_FAILURES",
    "RouteCache",
    "ShortestPaths",
    "dijkstra",
    "dijkstra_with_barriers",
    "shortest_path",
    "spf_distance",
    "RoutingTable",
    "build_routing_table",
    "k_shortest_paths",
    "LinkStateDatabase",
    "ConvergenceModel",
]
