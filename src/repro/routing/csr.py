"""Compiled CSR routing substrate: flat-array graphs and SPF kernels.

The dict-of-dict adjacency view that :mod:`repro.routing.spf` historically
searched over is convenient but slow in the inner loop: every relaxation
re-``sorted()`` a neighbour dict, bounced through a ``weight_of`` closure,
and asked the :class:`~repro.routing.failure_view.FailureSet` for
``link_usable`` — three frozenset probes plus a tuple allocation per edge.
A full parameter sweep performs tens of thousands of SPF runs, so those
per-edge costs dominate the whole experiment pipeline.

This module compiles a :class:`~repro.graph.topology.Topology` *once per
topology state* into a **compressed sparse row** form:

- nodes are mapped to dense indices ``0..n-1`` in sorted-id order (so
  index comparisons reproduce the library's id-based deterministic
  tie-break exactly);
- each node's neighbours live in one contiguous, **pre-sorted** slice of
  the arc arrays — no sorting inside the search;
- ``delay`` and ``cost`` weights are flat per-arc arrays — no closure and
  no attribute-dict access per relaxation;
- failure scenarios compile to per-arc/per-node **bitsets**
  (:func:`compile_failures`), turning the per-edge failure test into two
  bytearray probes.

The kernels (:func:`csr_dijkstra`, :func:`csr_dijkstra_barriers`) are
drop-in replacements for the reference implementations in
:mod:`repro.routing.spf_reference`: they perform the same float
operations in the same order, push the same heap entries, and apply the
same smaller-predecessor tie-break, so their output — including dict
*insertion order*, which downstream routing tables iterate — is
bit-identical.  A property suite (``tests/properties/test_csr_equivalence``)
asserts that equivalence on randomised topologies and failure sets.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING

from repro.graph.topology import NodeId

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.graph.topology import Topology
    from repro.routing.failure_view import FailureSet

INF = float("inf")

#: Sentinel parent index meaning "no predecessor" (the source, or never
#: reached).  Distinct from any valid index, including for topologies with
#: negative node *ids* — indices are always dense and non-negative.
NO_PARENT = -1


class CsrGraph:
    """A topology compiled to compressed-sparse-row arrays.

    Attributes
    ----------
    token:
        The :meth:`~repro.graph.topology.Topology.cache_token` of the
        topology state this compilation reflects.
    node_ids:
        Dense index → node id, in sorted-id order (index order therefore
        *is* id order, which the deterministic tie-break relies on).
    index_of:
        Node id → dense index.
    indptr:
        ``indptr[i]:indptr[i+1]`` is node ``i``'s arc slice.
    nbr:
        Arc → neighbour index, pre-sorted within each node's slice.
    delay / cost:
        Arc → link weight.
    arcs_of_edge:
        Canonical undirected edge → its two directed arc positions
        (used to compile link-failure bitsets).
    """

    __slots__ = (
        "token",
        "node_ids",
        "index_of",
        "indptr",
        "nbr",
        "delay",
        "cost",
        "arcs_of_edge",
        "_weight_arrays",
        "_incoming",
        "_batch_plan",
    )

    def __init__(self, topology: "Topology") -> None:
        self.token = topology.cache_token()
        ids = topology.nodes()  # sorted for determinism
        self.node_ids: list[NodeId] = ids
        self.index_of: dict[NodeId, int] = {nid: i for i, nid in enumerate(ids)}
        n = len(ids)
        adjacency = topology.adjacency()

        indptr = [0] * (n + 1)
        nbr: list[int] = []
        delay: list[float] = []
        cost: list[float] = []
        arcs_of_edge: dict[tuple[NodeId, NodeId], tuple[int, int]] = {}
        half: dict[tuple[NodeId, NodeId], int] = {}

        index_of = self.index_of
        for i, u in enumerate(ids):
            row = sorted(adjacency[u])  # sorted once, at compile time
            for v in row:
                arc = len(nbr)
                nbr.append(index_of[v])
                delay.append(adjacency[u][v])
                cost.append(topology.cost(u, v))
                edge = (u, v) if u <= v else (v, u)
                mate = half.pop(edge, None)
                if mate is None:
                    half[edge] = arc
                else:
                    arcs_of_edge[edge] = (mate, arc)
            indptr[i + 1] = len(nbr)

        self.indptr = indptr
        self.nbr = nbr
        self.delay = delay
        self.cost = cost
        self.arcs_of_edge = arcs_of_edge
        self._weight_arrays: dict[str, "object"] = {}
        self._incoming = None
        # Degree-bucketed relaxation plan, built lazily by
        # repro.routing.batch the first time a multi-root kernel runs
        # over this compiled graph.
        self._batch_plan = None

    @property
    def num_nodes(self) -> int:
        return len(self.node_ids)

    @property
    def num_arcs(self) -> int:
        return len(self.nbr)

    def weight_list(self, weight: str) -> list[float]:
        """The per-arc weight *list* for ``'delay'`` or ``'cost'``.

        The scalar kernels index this with Python ints inside their heap
        loop; keeping it a plain list keeps every distance a builtin
        ``float`` (a numpy array would leak ``np.float64`` scalars into
        the :class:`~repro.routing.spf.ShortestPaths` dicts and break
        their JSON round-trip).
        """
        return self.delay if weight == "delay" else self.cost

    def weights(self, weight: str):
        """The per-arc weight array for ``'delay'`` or ``'cost'``.

        Returns a cached read-only ``numpy.float64`` array — built once
        per weight name per compiled graph, not rebuilt on every call.
        The batch kernels consume it directly; scalar callers that need
        builtin floats use :meth:`weight_list`.
        """
        arr = self._weight_arrays.get(weight)
        if arr is None:
            import numpy as np

            arr = np.asarray(self.weight_list(weight), dtype=np.float64)
            arr.setflags(write=False)
            self._weight_arrays[weight] = arr
        return arr

    def incoming(self):
        """The graph's *incoming*-CSR view ``(in_ptr, in_src, in_arc)``.

        Arcs regrouped by destination: positions ``in_ptr[v]:in_ptr[v+1]``
        hold the arcs into node ``v``, with ``in_src`` the source index
        (ascending within each segment, because the outgoing layout is
        already sorted by ``(src, dst)``) and ``in_arc`` the arc's
        position in the outgoing arrays (for weight/bitset lookups).
        Built lazily, cached for the lifetime of the compiled graph;
        this is the segment layout the multi-root kernel's
        ``minimum.reduceat`` sweeps run over.
        """
        if self._incoming is None:
            import numpy as np

            n = self.num_nodes
            dst = np.asarray(self.nbr, dtype=np.int64)
            counts = np.diff(np.asarray(self.indptr, dtype=np.int64))
            src = np.repeat(np.arange(n, dtype=np.int64), counts)
            in_arc = np.lexsort((src, dst))
            in_src = src[in_arc]
            in_ptr = np.zeros(n + 1, dtype=np.int64)
            np.cumsum(np.bincount(dst, minlength=n), out=in_ptr[1:])
            for arr in (in_ptr, in_src, in_arc):
                arr.setflags(write=False)
            self._incoming = (in_ptr, in_src, in_arc)
        return self._incoming

    def __repr__(self) -> str:
        return (
            f"CsrGraph(token={self.token}, nodes={self.num_nodes}, "
            f"arcs={self.num_arcs})"
        )


def compile_failures(
    csr: CsrGraph, failures: "FailureSet"
) -> tuple[bytearray, bytearray] | None:
    """Compile a failure scenario to ``(node_dead, arc_blocked)`` bitsets.

    Returns ``None`` for the empty scenario so the kernels can skip the
    mask probes entirely.  Failed nodes are marked in ``node_dead``; the
    kernels never relax an arc *into* a dead node, which also prevents it
    from ever being settled or traversed — exactly the semantics of
    :meth:`~repro.routing.failure_view.FailureSet.link_usable` masking.
    Failed links mark both of their directed arcs in ``arc_blocked``.
    """
    if failures.is_empty:
        return None
    node_dead = bytearray(csr.num_nodes)
    arc_blocked = bytearray(csr.num_arcs)
    index_of = csr.index_of
    for node in failures.failed_nodes:
        i = index_of.get(node)
        if i is not None:
            node_dead[i] = 1
    arcs_of_edge = csr.arcs_of_edge
    for edge in failures.failed_links:
        arcs = arcs_of_edge.get(edge)
        if arcs is not None:
            arc_blocked[arcs[0]] = 1
            arc_blocked[arcs[1]] = 1
    return node_dead, arc_blocked


def csr_dijkstra(
    csr: CsrGraph,
    source_index: int,
    weights: list[float],
    mask: tuple[bytearray, bytearray] | None,
    barriers: bytearray | None = None,
) -> tuple[list[float], list[int], list[int]]:
    """Array-based single-source shortest paths over a compiled graph.

    Returns ``(dist, parent, order)`` where ``dist``/``parent`` are flat
    index-addressed arrays (``INF`` / :data:`NO_PARENT` when unreached)
    and ``order`` lists node indices in first-discovery order — the dict
    insertion order the reference implementation produces, which callers
    use to rebuild :class:`~repro.routing.spf.ShortestPaths` mappings
    bit-identically.

    ``barriers`` (optional per-node bitset) marks nodes that may be
    settled but never traversed; the ``source_index`` itself is always
    traversable, matching
    :func:`repro.routing.spf.dijkstra_with_barriers`.

    Ties between equal-length paths keep the smaller predecessor *index*,
    which equals the smaller predecessor *id* because indices are assigned
    in sorted-id order.
    """
    n = csr.num_nodes
    dist = [INF] * n
    parent = [NO_PARENT] * n
    order: list[int] = []
    if n == 0:
        return dist, parent, order

    indptr = csr.indptr
    nbr = csr.nbr
    if mask is None:
        node_dead = arc_blocked = None
    else:
        node_dead, arc_blocked = mask

    dist[source_index] = 0.0
    order.append(source_index)
    heap: list[tuple[float, int, int]] = [(0.0, NO_PARENT, source_index)]
    settled = bytearray(n)
    push = heapq.heappush
    pop = heapq.heappop
    while heap:
        dist_u, _, u = pop(heap)
        if settled[u]:
            continue
        settled[u] = 1
        if barriers is not None and barriers[u] and u != source_index:
            continue  # reachable, but not traversable
        for arc in range(indptr[u], indptr[u + 1]):
            v = nbr[arc]
            if settled[v]:
                continue
            if arc_blocked is not None and (arc_blocked[arc] or node_dead[v]):
                continue
            candidate = dist_u + weights[arc]
            best = dist[v]
            if candidate < best - 1e-12:
                if best == INF:
                    order.append(v)
                dist[v] = candidate
                parent[v] = u
                push(heap, (candidate, u, v))
            elif abs(candidate - best) <= 1e-12:
                # Tie: prefer the smaller predecessor for determinism.
                # The source keeps NO_PARENT (never replaced).
                current = parent[v]
                if current != NO_PARENT and u < current:
                    parent[v] = u
                    push(heap, (candidate, u, v))
    return dist, parent, order


def csr_dijkstra_barriers(
    csr: CsrGraph,
    source_index: int,
    weights: list[float],
    mask: tuple[bytearray, bytearray] | None,
    barrier_indices,
) -> tuple[list[float], list[int], list[int]]:
    """Barrier-constrained variant: settle barrier nodes, never cross them.

    ``barrier_indices`` is any iterable of node indices; it is compiled to
    a per-node bitset once per call (the search itself then pays two array
    probes per settled node, not a set lookup per edge).
    """
    flags = bytearray(csr.num_nodes)
    for i in barrier_indices:
        flags[i] = 1
    return csr_dijkstra(csr, source_index, weights, mask, barriers=flags)
