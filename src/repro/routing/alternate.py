"""Precomputed single-failure alternate paths (Bhosle–Gonzalez).

The RouteCache already leans on the Bhosle–Gonzalez single-failure
result *negatively*: a baseline shortest path provably survives a
failure that touches none of its arcs (`_provably_unaffected`).  This
module uses the same result *positively*: for every link on a node
pair's shortest path, precompute the replacement shortest path that
avoids it.  A single link failure then resolves by table lookup — no
re-convergence wait, no post-failure search — which is what promotes
the alternate-path idea from a cache reuse proof to a first-class
recovery strategy (see
:class:`~repro.multicast.backup_trees.AlternatePathProtocol`).

The table is rooted at the *member* and targets the source, matching
the direction PIM-style joins travel; a recovery re-joins over the
precomputed route and grafts at the first surviving on-tree node it
meets, exactly like a global detour minus the convergence wait.

Determinism: every path here comes out of the scalar
:func:`~repro.routing.spf.dijkstra` (smaller-predecessor-id
tie-break), optionally through a failure-aware
:class:`~repro.routing.route_cache.RouteCache`, so tables are
byte-identical however they are produced.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.graph.topology import Edge, NodeId, Topology, edge_key
from repro.obs import NULL_OBS
from repro.routing.failure_view import NO_FAILURES, FailureSet
from repro.routing.spf import dijkstra


@dataclass(frozen=True)
class AlternateRoute:
    """The precomputed replacement for one failed primary link.

    ``path`` is ``None`` when removing ``failed_link`` disconnects the
    endpoints — the link is a bridge and no alternate exists.
    """

    failed_link: Edge
    path: tuple[NodeId, ...] | None
    delay: float | None


@dataclass(frozen=True)
class AlternateRouteTable:
    """Single-failure alternate routes for one ``root → target`` pair.

    ``primary`` is the failure-free shortest path; ``routes`` maps each
    primary link to the shortest path that avoids it.  Links *off* the
    primary need no entry: their failure provably leaves the primary
    intact (the Bhosle–Gonzalez observation the RouteCache reuse proofs
    are built on).
    """

    root: NodeId
    target: NodeId
    primary: tuple[NodeId, ...]
    routes: dict[Edge, AlternateRoute] = field(default_factory=dict)

    def route_under(self, failures: FailureSet) -> tuple[NodeId, ...] | None:
        """The precomputed route serving ``root → target`` under ``failures``.

        Returns the primary when it is untouched, the stored alternate
        when exactly one primary link failed and the alternate itself
        survives, and ``None`` otherwise (multi-failure on the primary,
        a failed primary node, or a bridge link) — the caller then falls
        back to a reactive strategy.
        """
        if not failures.path_affected(self.primary):
            return self.primary
        hit = [
            edge
            for edge in self.primary_links()
            if edge in failures.failed_links
        ]
        if len(hit) != 1:
            return None  # node failure or multi-failure: not precomputed
        if any(node in failures.failed_nodes for node in self.primary):
            return None
        route = self.routes.get(hit[0])
        if route is None or route.path is None:
            return None
        if failures.path_affected(route.path):
            return None  # the failure also clips the alternate
        return route.path

    def primary_links(self) -> list[Edge]:
        return [
            edge_key(u, v) for u, v in zip(self.primary, self.primary[1:])
        ]

    def reserved_links(self) -> set[Edge]:
        """Standing state: links reserved by alternates beyond the primary."""
        primary = set(self.primary_links())
        reserved: set[Edge] = set()
        for route in self.routes.values():
            if route.path is None:
                continue
            reserved |= {
                edge_key(u, v) for u, v in zip(route.path, route.path[1:])
            }
        return reserved - primary


def build_alternate_table(
    topology: Topology,
    root: NodeId,
    target: NodeId,
    weight: str = "delay",
    route_cache=None,
    obs=None,
) -> AlternateRouteTable | None:
    """Precompute the alternate-route table for ``root → target``.

    One SPF per primary link (each under that link's failure), routed
    through ``route_cache`` when given so repeated scenarios share the
    kernel runs.  Returns ``None`` when the pair is disconnected even
    failure-free.
    """
    obs = obs if obs is not None else NULL_OBS
    baseline = _paths(topology, root, weight, NO_FAILURES, route_cache, obs)
    if target not in baseline.dist:
        return None
    primary = tuple(baseline.path_to(target))
    routes: dict[Edge, AlternateRoute] = {}
    for u, v in zip(primary, primary[1:]):
        edge = edge_key(u, v)
        failures = FailureSet.links(edge)
        masked = _paths(topology, root, weight, failures, route_cache, obs)
        if target in masked.dist:
            path = tuple(masked.path_to(target))
            routes[edge] = AlternateRoute(
                failed_link=edge, path=path, delay=masked.dist[target]
            )
        else:
            routes[edge] = AlternateRoute(
                failed_link=edge, path=None, delay=None
            )
    obs.counter("protection.alternate.tables").inc()
    obs.counter("protection.alternate.routes").inc(
        sum(1 for route in routes.values() if route.path is not None)
    )
    return AlternateRouteTable(
        root=root, target=target, primary=primary, routes=routes
    )


def _paths(topology, root, weight, failures, route_cache, obs):
    if route_cache is not None:
        return route_cache.shortest_paths(
            topology, root, weight=weight, failures=failures, obs=obs
        )
    return dijkstra(topology, root, weight=weight, failures=failures)
