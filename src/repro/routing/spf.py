"""Shortest-path-first (Dijkstra) routing with deterministic tie-breaking.

This is the library's single source of truth for unicast shortest paths.
It is written from scratch (rather than deferring to networkx) because the
reproduction needs explicit, testable semantics:

- **Failure masking.**  Every computation takes a
  :class:`~repro.routing.failure_view.FailureSet`; failed links and nodes
  are invisible, exactly as a re-converged link-state protocol would see
  the network.

- **Deterministic ties.**  When two paths have equal length, the one whose
  predecessor node id is smaller wins.  The paper's experiments average
  over randomized topologies, but determinism makes every individual
  scenario reproducible and lets tests pin exact trees.

- **Weight selection.**  Paths can be computed over ``delay`` (the paper's
  default — its SPF baseline and D_thresh bound are delay-based) or
  ``cost``.

Since the CSR rewrite the actual searches run as array kernels over the
topology's compiled :class:`~repro.routing.csr.CsrGraph`
(:meth:`~repro.graph.topology.Topology.csr` — built once per topology
state): dense indices, pre-sorted neighbour slices, flat weight arrays,
and failure bitsets replace the dict-of-dict walk.  The public functions
here keep the original :class:`ShortestPaths` contract bit-for-bit —
including dict insertion order and the predecessor-id tie-break — which
the property suite checks against the retained dict-based specification
in :mod:`repro.routing.spf_reference`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import NoPathError, RoutingError, TopologyError
from repro.graph.topology import NodeId, Topology
from repro.routing.csr import (
    NO_PARENT,
    CsrGraph,
    compile_failures,
    csr_dijkstra,
    csr_dijkstra_barriers,
)
from repro.routing.failure_view import NO_FAILURES, FailureSet


@dataclass
class ShortestPaths:
    """Single-source shortest-path result.

    Attributes
    ----------
    source:
        The root of this SPF computation.
    dist:
        Map of reachable node → distance from ``source``.
    parent:
        Map of reachable node → predecessor on its shortest path
        (``source`` maps to ``None``).
    """

    source: NodeId
    dist: dict[NodeId, float] = field(default_factory=dict)
    parent: dict[NodeId, NodeId | None] = field(default_factory=dict)

    def reachable(self, node: NodeId) -> bool:
        return node in self.dist

    def distance(self, node: NodeId) -> float:
        """Distance from the source; raises :class:`NoPathError` if unreachable."""
        try:
            return self.dist[node]
        except KeyError:
            raise NoPathError(self.source, node) from None

    def path_to(self, node: NodeId) -> list[NodeId]:
        """The shortest path ``source → … → node`` as a node list."""
        if node not in self.dist:
            raise NoPathError(self.source, node)
        path: list[NodeId] = []
        cursor: NodeId | None = node
        while cursor is not None:
            path.append(cursor)
            cursor = self.parent[cursor]
        path.reverse()
        if path[0] != self.source:
            raise RoutingError(
                f"corrupt SPF state: path to {node} starts at {path[0]}, "
                f"not source {self.source}"
            )
        return path

    def next_hop(self, node: NodeId) -> NodeId:
        """First hop from the source toward ``node``."""
        path = self.path_to(node)
        if len(path) < 2:
            raise RoutingError(f"{node} is the source itself; no next hop")
        return path[1]


def _check_args(topology: Topology, source: NodeId, weight: str) -> None:
    if weight not in ("delay", "cost"):
        raise RoutingError(f"unknown weight {weight!r}; expected 'delay' or 'cost'")
    if not topology.has_node(source):
        raise TopologyError(f"source {source} is not in the topology")


def _to_shortest_paths(
    source: NodeId,
    csr: CsrGraph,
    dist: list[float],
    parent: list[int],
    order: list[int],
) -> ShortestPaths:
    """Rebuild the mapping result in kernel discovery order.

    Discovery order equals the dict insertion order of the reference
    implementation, so downstream code that iterates ``dist`` (e.g. the
    routing-table builder) observes identical ordering.
    """
    result = ShortestPaths(source=source)
    ids = csr.node_ids
    rdist = result.dist
    rparent = result.parent
    for i in order:
        nid = ids[i]
        rdist[nid] = dist[i]
        p = parent[i]
        rparent[nid] = None if p == NO_PARENT else ids[p]
    return result


def dijkstra(
    topology: Topology,
    source: NodeId,
    weight: str = "delay",
    failures: FailureSet = NO_FAILURES,
    obs=None,
) -> ShortestPaths:
    """Compute single-source shortest paths under a failure scenario.

    Failed nodes (including a failed ``source``) and failed links are
    excluded from the search.  Nodes left unreachable simply do not appear
    in the result.

    ``obs`` (an :class:`~repro.obs.Observability`, optional) accounts the
    kernel invocation under ``routing.kernel.calls``.
    """
    _check_args(topology, source, weight)
    if failures.node_failed(source):
        return ShortestPaths(source=source)
    csr = topology.csr()
    if obs is not None:
        obs.counter("routing.kernel.calls").inc()
    dist, parent, order = csr_dijkstra(
        csr,
        csr.index_of[source],
        csr.weight_list(weight),
        compile_failures(csr, failures),
    )
    return _to_shortest_paths(source, csr, dist, parent, order)


def barrier_search_arrays(
    topology: Topology,
    source: NodeId,
    barriers,
    weight: str = "delay",
    failures: FailureSet = NO_FAILURES,
    obs=None,
) -> tuple[CsrGraph, list[float] | None, list[int] | None, list[int] | None]:
    """Raw kernel output of a barrier-constrained search.

    Returns ``(csr, dist, parent, order)`` exactly as
    :func:`~repro.routing.csr.csr_dijkstra_barriers` produced them —
    flat index-addressed arrays, no dict materialization.  The vectorized
    candidate scorer in :mod:`repro.core.candidates` consumes these
    directly; :func:`dijkstra_with_barriers` is the dict-building wrapper
    around this call.  A failed ``source`` short-circuits to
    ``(csr, None, None, None)`` (the wrapper's empty-result semantics)
    without running the kernel.
    """
    _check_args(topology, source, weight)
    csr = topology.csr()
    if failures.node_failed(source):
        return csr, None, None, None
    if obs is not None:
        obs.counter("routing.kernel.barrier_calls").inc()
    index_of = csr.index_of
    dist, parent, order = csr_dijkstra_barriers(
        csr,
        index_of[source],
        csr.weight_list(weight),
        compile_failures(csr, failures),
        (index_of[b] for b in barriers if b in index_of),
    )
    return csr, dist, parent, order


def dijkstra_with_barriers(
    topology: Topology,
    source: NodeId,
    barriers: set[NodeId],
    weight: str = "delay",
    failures: FailureSet = NO_FAILURES,
    obs=None,
) -> ShortestPaths:
    """Shortest paths that may *end* at a barrier node but never cross one.

    Barrier nodes can be settled (they are valid destinations) but their
    outgoing links are not relaxed, so no path traverses them.  This is
    the search a join request effectively performs: for every on-tree
    node ``R_i`` it yields the shortest connection from the joining member
    that touches the tree exactly at ``R_i`` (paper §3.2.2 — a request
    routed through an earlier on-tree node would merge there instead).

    ``source`` being itself a barrier is allowed (used when a node already
    on the tree re-selects its path): the search starts normally from it.
    One such pass prices *every* merge point at once, which is what makes
    the batched candidate enumeration in :mod:`repro.core.candidates`
    a single-kernel operation.
    """
    csr, dist, parent, order = barrier_search_arrays(
        topology, source, barriers, weight=weight, failures=failures, obs=obs
    )
    if dist is None:
        return ShortestPaths(source=source)
    return _to_shortest_paths(source, csr, dist, parent, order)


def shortest_path(
    topology: Topology,
    source: NodeId,
    target: NodeId,
    weight: str = "delay",
    failures: FailureSet = NO_FAILURES,
) -> list[NodeId]:
    """Shortest path between two nodes; raises :class:`NoPathError` if none."""
    if not topology.has_node(target):
        raise TopologyError(f"target {target} is not in the topology")
    return dijkstra(topology, source, weight=weight, failures=failures).path_to(target)


def spf_distance(
    topology: Topology,
    source: NodeId,
    target: NodeId,
    weight: str = "delay",
    failures: FailureSet = NO_FAILURES,
) -> float:
    """Shortest-path distance between two nodes under a failure scenario."""
    if not topology.has_node(target):
        raise TopologyError(f"target {target} is not in the topology")
    return dijkstra(topology, source, weight=weight, failures=failures).distance(target)
