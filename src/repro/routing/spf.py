"""Shortest-path-first (Dijkstra) routing with deterministic tie-breaking.

This is the library's single source of truth for unicast shortest paths.
It is written from scratch (rather than deferring to networkx) because the
reproduction needs explicit, testable semantics:

- **Failure masking.**  Every computation takes a
  :class:`~repro.routing.failure_view.FailureSet`; failed links and nodes
  are invisible, exactly as a re-converged link-state protocol would see
  the network.

- **Deterministic ties.**  When two paths have equal length, the one whose
  predecessor node id is smaller wins.  The paper's experiments average
  over randomized topologies, but determinism makes every individual
  scenario reproducible and lets tests pin exact trees.

- **Weight selection.**  Paths can be computed over ``delay`` (the paper's
  default — its SPF baseline and D_thresh bound are delay-based) or
  ``cost``.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.errors import NoPathError, RoutingError, TopologyError
from repro.graph.topology import NodeId, Topology
from repro.routing.failure_view import NO_FAILURES, FailureSet


@dataclass
class ShortestPaths:
    """Single-source shortest-path result.

    Attributes
    ----------
    source:
        The root of this SPF computation.
    dist:
        Map of reachable node → distance from ``source``.
    parent:
        Map of reachable node → predecessor on its shortest path
        (``source`` maps to ``None``).
    """

    source: NodeId
    dist: dict[NodeId, float] = field(default_factory=dict)
    parent: dict[NodeId, NodeId | None] = field(default_factory=dict)

    def reachable(self, node: NodeId) -> bool:
        return node in self.dist

    def distance(self, node: NodeId) -> float:
        """Distance from the source; raises :class:`NoPathError` if unreachable."""
        try:
            return self.dist[node]
        except KeyError:
            raise NoPathError(self.source, node) from None

    def path_to(self, node: NodeId) -> list[NodeId]:
        """The shortest path ``source → … → node`` as a node list."""
        if node not in self.dist:
            raise NoPathError(self.source, node)
        path: list[NodeId] = []
        cursor: NodeId | None = node
        while cursor is not None:
            path.append(cursor)
            cursor = self.parent[cursor]
        path.reverse()
        if path[0] != self.source:
            raise RoutingError(
                f"corrupt SPF state: path to {node} starts at {path[0]}, "
                f"not source {self.source}"
            )
        return path

    def next_hop(self, node: NodeId) -> NodeId:
        """First hop from the source toward ``node``."""
        path = self.path_to(node)
        if len(path) < 2:
            raise RoutingError(f"{node} is the source itself; no next hop")
        return path[1]


def dijkstra(
    topology: Topology,
    source: NodeId,
    weight: str = "delay",
    failures: FailureSet = NO_FAILURES,
) -> ShortestPaths:
    """Compute single-source shortest paths under a failure scenario.

    Failed nodes (including a failed ``source``) and failed links are
    excluded from the search.  Nodes left unreachable simply do not appear
    in the result.
    """
    if weight not in ("delay", "cost"):
        raise RoutingError(f"unknown weight {weight!r}; expected 'delay' or 'cost'")
    if not topology.has_node(source):
        raise TopologyError(f"source {source} is not in the topology")
    result = ShortestPaths(source=source)
    if failures.node_failed(source):
        return result

    adjacency = topology.adjacency()
    weight_of = (
        (lambda u, v: adjacency[u][v])
        if weight == "delay"
        else (lambda u, v: topology.cost(u, v))
    )

    result.dist[source] = 0.0
    result.parent[source] = None
    # Heap entries: (distance, predecessor id, node).  Including the
    # predecessor id makes equal-distance pops deterministic: the path via
    # the smaller predecessor is settled first and kept.
    heap: list[tuple[float, int, NodeId]] = [(0.0, -1, source)]
    settled: set[NodeId] = set()
    while heap:
        dist_u, _, u = heapq.heappop(heap)
        if u in settled:
            continue
        settled.add(u)
        for v in sorted(adjacency[u]):
            if v in settled:
                continue
            if not failures.link_usable(u, v):
                continue
            candidate = dist_u + weight_of(u, v)
            best = result.dist.get(v)
            if best is None or candidate < best - 1e-12:
                result.dist[v] = candidate
                result.parent[v] = u
                heapq.heappush(heap, (candidate, u, v))
            elif abs(candidate - best) <= 1e-12 and u < (result.parent[v] or -1):
                # Tie: prefer the smaller predecessor id for determinism.
                result.parent[v] = u
                heapq.heappush(heap, (candidate, u, v))
    return result


def dijkstra_with_barriers(
    topology: Topology,
    source: NodeId,
    barriers: set[NodeId],
    weight: str = "delay",
    failures: FailureSet = NO_FAILURES,
) -> ShortestPaths:
    """Shortest paths that may *end* at a barrier node but never cross one.

    Barrier nodes can be settled (they are valid destinations) but their
    outgoing links are not relaxed, so no path traverses them.  This is
    the search a join request effectively performs: for every on-tree
    node ``R_i`` it yields the shortest connection from the joining member
    that touches the tree exactly at ``R_i`` (paper §3.2.2 — a request
    routed through an earlier on-tree node would merge there instead).

    ``source`` being itself a barrier is allowed (used when a node already
    on the tree re-selects its path): the search starts normally from it.
    """
    if weight not in ("delay", "cost"):
        raise RoutingError(f"unknown weight {weight!r}; expected 'delay' or 'cost'")
    if not topology.has_node(source):
        raise TopologyError(f"source {source} is not in the topology")
    result = ShortestPaths(source=source)
    if failures.node_failed(source):
        return result

    adjacency = topology.adjacency()
    weight_of = (
        (lambda u, v: adjacency[u][v])
        if weight == "delay"
        else (lambda u, v: topology.cost(u, v))
    )
    result.dist[source] = 0.0
    result.parent[source] = None
    heap: list[tuple[float, int, NodeId]] = [(0.0, -1, source)]
    settled: set[NodeId] = set()
    while heap:
        dist_u, _, u = heapq.heappop(heap)
        if u in settled:
            continue
        settled.add(u)
        if u in barriers and u != source:
            continue  # reachable, but not traversable
        for v in sorted(adjacency[u]):
            if v in settled:
                continue
            if not failures.link_usable(u, v):
                continue
            candidate = dist_u + weight_of(u, v)
            best = result.dist.get(v)
            if best is None or candidate < best - 1e-12:
                result.dist[v] = candidate
                result.parent[v] = u
                heapq.heappush(heap, (candidate, u, v))
            elif abs(candidate - best) <= 1e-12 and u < (result.parent[v] or -1):
                result.parent[v] = u
                heapq.heappush(heap, (candidate, u, v))
    return result


def shortest_path(
    topology: Topology,
    source: NodeId,
    target: NodeId,
    weight: str = "delay",
    failures: FailureSet = NO_FAILURES,
) -> list[NodeId]:
    """Shortest path between two nodes; raises :class:`NoPathError` if none."""
    if not topology.has_node(target):
        raise TopologyError(f"target {target} is not in the topology")
    return dijkstra(topology, source, weight=weight, failures=failures).path_to(target)


def spf_distance(
    topology: Topology,
    source: NodeId,
    target: NodeId,
    weight: str = "delay",
    failures: FailureSet = NO_FAILURES,
) -> float:
    """Shortest-path distance between two nodes under a failure scenario."""
    if not topology.has_node(target):
        raise TopologyError(f"target {target} is not in the topology")
    return dijkstra(topology, source, weight=weight, failures=failures).distance(target)
