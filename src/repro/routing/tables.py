"""Per-node unicast routing tables.

The discrete-event simulator's nodes forward control messages hop by hop,
the way real routers would relay a PIM ``Join`` toward the source.  Each
node therefore holds a :class:`RoutingTable`: destination → (next hop,
distance), derived from an SPF computation over the node's current view of
the network (i.e. its link-state database after masking known failures).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import NoPathError
from repro.graph.topology import NodeId, Topology
from repro.routing.failure_view import NO_FAILURES, FailureSet
from repro.routing.spf import dijkstra


@dataclass
class RouteEntry:
    """One routing-table row."""

    destination: NodeId
    next_hop: NodeId
    distance: float


@dataclass
class RoutingTable:
    """Unicast routing table of a single node."""

    owner: NodeId
    entries: dict[NodeId, RouteEntry] = field(default_factory=dict)

    def has_route(self, destination: NodeId) -> bool:
        return destination == self.owner or destination in self.entries

    def next_hop(self, destination: NodeId) -> NodeId:
        """Next hop toward ``destination``; raises if unreachable."""
        if destination == self.owner:
            raise NoPathError(
                self.owner, destination, reason="destination is the node itself"
            )
        try:
            return self.entries[destination].next_hop
        except KeyError:
            raise NoPathError(self.owner, destination) from None

    def distance(self, destination: NodeId) -> float:
        if destination == self.owner:
            return 0.0
        try:
            return self.entries[destination].distance
        except KeyError:
            raise NoPathError(self.owner, destination) from None

    def destinations(self) -> list[NodeId]:
        return sorted(self.entries)


def build_routing_table(
    topology: Topology,
    owner: NodeId,
    weight: str = "delay",
    failures: FailureSet = NO_FAILURES,
) -> RoutingTable:
    """Compute ``owner``'s routing table under a failure scenario.

    Equivalent to the table OSPF would install after SPF over the node's
    link-state database with the failed components withdrawn.
    """
    paths = dijkstra(topology, owner, weight=weight, failures=failures)
    table = RoutingTable(owner=owner)
    for destination in paths.dist:
        if destination == owner:
            continue
        table.entries[destination] = RouteEntry(
            destination=destination,
            next_hop=paths.next_hop(destination),
            distance=paths.dist[destination],
        )
    return table


def build_all_tables(
    topology: Topology,
    weight: str = "delay",
    failures: FailureSet = NO_FAILURES,
) -> dict[NodeId, RoutingTable]:
    """Routing tables for every live node — a converged unicast routing plane."""
    tables = {}
    for node in topology.nodes():
        if failures.node_failed(node):
            continue
        tables[node] = build_routing_table(
            topology, node, weight=weight, failures=failures
        )
    return tables
