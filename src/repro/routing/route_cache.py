"""Memoised single-source shortest-path state.

Both tree builders recompute the same failure-free SPF state over and
over: the SPF baseline routes each join from the member toward the source
(:class:`~repro.multicast.spf_protocol.SPFMulticastProtocol`), and SMRP's
path-selection bound needs ``D^SPF(S, NR)`` for every joining member
(§3.2.2).  Across a sweep the same ``(topology, member)`` pairs repeat for
every parameter value, so a :class:`RouteCache` keyed on
``(topology state, root, weight)`` collapses those repeats into one
Dijkstra run each.

Only *failure-free* computations are cached: recovery-time searches carry
a :class:`~repro.routing.failure_view.FailureSet` whose masking makes the
result scenario-specific, and those keep calling
:func:`~repro.routing.spf.dijkstra` directly.

Topology state is identified by :meth:`~repro.graph.topology.Topology.cache_token`,
which advances on every mutation — a stale entry can never be returned,
it simply stops being reachable and ages out of the LRU bound.

Hit/miss/eviction activity is reported through ``repro.obs`` counters
(``cache.routes.hits`` / ``.misses`` / ``.evictions``).
"""

from __future__ import annotations

from repro.graph.cache import LruCache
from repro.graph.topology import NodeId, Topology
from repro.routing.spf import ShortestPaths, dijkstra

#: Default bound on retained SPF results: a 100-scenario sweep point needs
#: about ``members × topologies`` entries, well within this.
DEFAULT_MAX_ROUTES = 4096

_Key = tuple[int, NodeId, str]


class RouteCache:
    """Bounded cache of failure-free :class:`ShortestPaths` results.

    Cached results are shared objects; callers must treat them as
    read-only (``distance`` / ``path_to`` / ``next_hop`` do).

    Examples
    --------
    >>> from repro.graph.generators import figure4_topology
    >>> cache = RouteCache()
    >>> topo = figure4_topology()
    >>> a = cache.shortest_paths(topo, 0)
    >>> b = cache.shortest_paths(topo, 0)
    >>> a is b
    True
    """

    def __init__(self, max_entries: int = DEFAULT_MAX_ROUTES) -> None:
        self._lru: LruCache[_Key, ShortestPaths] = LruCache(max_entries)

    def shortest_paths(
        self,
        topology: Topology,
        root: NodeId,
        weight: str = "delay",
        obs=None,
    ) -> ShortestPaths:
        """Failure-free SPF state rooted at ``root``, computed at most once
        per topology state."""
        key = (topology.cache_token(), root, weight)
        paths, hit, evicted = self._lru.get_or_build(
            key, lambda: dijkstra(topology, root, weight=weight)
        )
        if obs is not None:
            name = "cache.routes.hits" if hit else "cache.routes.misses"
            obs.counter(name).inc()
            if evicted:
                obs.counter("cache.routes.evictions").inc()
            obs.gauge("cache.routes.size").set(len(self._lru))
        return paths

    @property
    def stats(self) -> dict[str, int]:
        return {
            "size": len(self._lru),
            "max_entries": self._lru.max_entries,
            "hits": self._lru.hits,
            "misses": self._lru.misses,
            "evictions": self._lru.evictions,
        }

    def clear(self) -> None:
        self._lru.clear()

    def __repr__(self) -> str:
        return f"RouteCache({self._lru!r})"
