"""Memoised single-source shortest-path state, failure-aware.

Both tree builders recompute the same SPF state over and over: the SPF
baseline routes each join from the member toward the source
(:class:`~repro.multicast.spf_protocol.SPFMulticastProtocol`), SMRP's
path-selection bound needs ``D^SPF(S, NR)`` for every joining member
(§3.2.2), and every recovery evaluation re-derives post-failure distances
for the same ``(topology, member, failure)`` triples across the sweep's
parameter grid.  A :class:`RouteCache` keys entries on
``(topology state, root, weight, canonical failure key)`` so *all* of
those repeats — failure-free and failure-scenario alike — collapse into
one Dijkstra run each.

For single-element failures the cache goes further than memoisation.
Bhosle & Gonzalez (arXiv:0810.3438) observe that removing an edge that an
SPF tree does not use cannot change that tree; with this library's
deterministic tie-break the result is *bit-identical*, parents included:
the final parent of every node is the minimum id over its equal-distance
predecessors, and deleting an edge that lost (or never entered) every such
comparison removes no winner.  Likewise a failed node that the baseline
already could not reach removes only arcs incident to it, none of which
appear in any relaxation.  So when a single-link failure misses the cached
failure-free tree, or a single-node failure hits an unreachable node, the
cache returns the failure-free result outright — a **reuse proof**,
counted separately (``cache.routes.reuse_proofs``, a sub-count of misses:
the scenario key itself was absent) — instead of running the kernel.

Topology state is identified by :meth:`~repro.graph.topology.Topology.cache_token`,
which advances on every mutation — a stale entry can never be returned,
it simply stops being reachable and ages out of the LRU bound.

Hit/miss/eviction activity is reported through ``repro.obs`` counters
(``cache.routes.hits`` / ``.misses`` / ``.evictions`` /
``.reuse_proofs``) plus ``cache.routes.hit_rate`` / ``.size`` gauges.
"""

from __future__ import annotations

from repro.graph.cache import LruCache
from repro.graph.topology import Edge, NodeId, Topology
from repro.routing.failure_view import NO_FAILURES, FailureSet
from repro.routing.spf import ShortestPaths, dijkstra

#: Default bound on retained SPF results: a 100-scenario sweep point needs
#: about ``members × topologies`` entries, well within this.
DEFAULT_MAX_ROUTES = 4096

#: Canonical failure component of a cache key.  ``()`` entries sort before
#: any tuple, and sorting both element sets makes the key independent of
#: frozenset iteration order (which varies across processes).
_FailureKey = tuple[tuple[Edge, ...], tuple[NodeId, ...]]

_NO_FAILURE_KEY: _FailureKey = ((), ())

_Key = tuple[int, NodeId, str, _FailureKey]


def _failure_key(failures: FailureSet) -> _FailureKey:
    if failures.is_empty:
        return _NO_FAILURE_KEY
    return (
        tuple(sorted(failures.failed_links)),
        tuple(sorted(failures.failed_nodes)),
    )


def _provably_unaffected(baseline: ShortestPaths, failures: FailureSet) -> bool:
    """True when ``failures`` provably cannot change ``baseline``.

    Only single-element scenarios are examined (the common case in the
    paper's §4.3 persistent-failure sweeps); for anything larger the
    answer is a conservative False and the caller recomputes.

    - Single link ``(u, v)``: reusable iff neither direction of the link
      is a tree edge of the baseline (``parent[v] != u and parent[u] != v``).
    - Single node ``x``: reusable iff the baseline never reached ``x`` —
      then every arc incident to ``x`` connects two nodes of which one is
      unreachable, so none participated in any relaxation.
    """
    links = failures.failed_links
    nodes = failures.failed_nodes
    if len(links) == 1 and not nodes:
        (u, v) = next(iter(links))
        parent = baseline.parent
        return parent.get(v) != u and parent.get(u) != v
    if len(nodes) == 1 and not links:
        return next(iter(nodes)) not in baseline.dist
    return False


class RouteCache:
    """Bounded, failure-aware cache of :class:`ShortestPaths` results.

    Cached results are shared objects; callers must treat them as
    read-only (``distance`` / ``path_to`` / ``next_hop`` do).

    Examples
    --------
    >>> from repro.graph.generators import figure4_topology
    >>> cache = RouteCache()
    >>> topo = figure4_topology()
    >>> a = cache.shortest_paths(topo, 0)
    >>> b = cache.shortest_paths(topo, 0)
    >>> a is b
    True
    """

    def __init__(self, max_entries: int = DEFAULT_MAX_ROUTES) -> None:
        self._lru: LruCache[_Key, ShortestPaths] = LruCache(max_entries)
        self._reuse_proofs = 0

    def shortest_paths(
        self,
        topology: Topology,
        root: NodeId,
        weight: str = "delay",
        failures: FailureSet = NO_FAILURES,
        obs=None,
    ) -> ShortestPaths:
        """SPF state rooted at ``root`` under ``failures``, computed at
        most once per ``(topology state, root, weight, failure scenario)``.

        A first-seen single-element failure scenario may be answered from
        the failure-free baseline without running the kernel when the
        failed element provably cannot affect the tree (see module
        docstring); such *reuse proofs* are counted as misses (the
        scenario key was absent) plus ``cache.routes.reuse_proofs``.
        """
        lru = self._lru
        token = topology.cache_token()
        fkey = _failure_key(failures)
        key = (token, root, weight, fkey)
        paths = lru.peek(key)
        reused = False
        if paths is not None:
            lru.hits += 1
            hit = True
            evicted = False
        else:
            lru.misses += 1
            hit = False
            if fkey is not _NO_FAILURE_KEY:
                # Consult the failure-free baseline (peek: an internal
                # lookup, not a caller-facing hit or miss).  Compute and
                # remember it if absent — scenario sweeps for this root
                # will need it repeatedly.
                base_key = (token, root, weight, _NO_FAILURE_KEY)
                baseline = lru.peek(base_key)
                if baseline is None:
                    baseline = dijkstra(topology, root, weight=weight)
                    if lru.store(base_key, baseline) and obs is not None:
                        obs.counter("cache.routes.evictions").inc()
                reused = _provably_unaffected(baseline, failures)
                paths = (
                    baseline
                    if reused
                    else dijkstra(topology, root, weight=weight, failures=failures)
                )
            else:
                paths = dijkstra(topology, root, weight=weight)
            if reused:
                self._reuse_proofs += 1
            evicted = lru.store(key, paths)
        if obs is not None:
            obs.counter("cache.routes.hits" if hit else "cache.routes.misses").inc()
            if reused:
                obs.counter("cache.routes.reuse_proofs").inc()
            if evicted:
                obs.counter("cache.routes.evictions").inc()
            obs.gauge("cache.routes.size").set(len(lru))
            lookups = lru.hits + lru.misses
            obs.gauge("cache.routes.hit_rate").set(lru.hits / lookups)
        return paths

    def warm_batch(
        self,
        topology: Topology,
        roots,
        weight: str = "delay",
        failures: FailureSet = NO_FAILURES,
        obs=None,
    ) -> int:
        """Insert absent entries for many roots from one multi-root kernel run.

        The batch analogue of priming the cache with one
        :meth:`shortest_paths` call per root: roots whose
        ``(topology state, root, weight, failure scenario)`` entry is
        already cached are skipped, single-element scenarios that a
        cached failure-free baseline provably cannot be affected by are
        answered by the same reuse proof the per-call path applies (the
        shared baseline object is stored, so later hits are
        indistinguishable), and everything left is computed by a single
        :func:`~repro.routing.batch.dijkstra_multi` invocation.  Warmed
        entries are byte-identical to what the per-call API would have
        computed — the batch kernel's bit-identity contract — so
        interleaving ``warm_batch`` with ``shortest_paths`` never changes
        any returned path, only how many kernel runs it took.

        Returns the number of entries inserted (reuse proofs included),
        accounted under ``cache.routes.batch_inserts``; lookup hit/miss
        counters are untouched (warming is not a caller-facing lookup).
        """
        from repro.routing.batch import dijkstra_multi

        lru = self._lru
        token = topology.cache_token()
        fkey = _failure_key(failures)
        pending: list[NodeId] = []
        seen: set[NodeId] = set()
        for root in roots:
            if root in seen:
                continue
            seen.add(root)
            if lru.peek((token, root, weight, fkey)) is None:
                pending.append(root)
        if not pending:
            return 0

        inserted = 0
        evictions = 0
        if fkey is not _NO_FAILURE_KEY:
            remaining = []
            for root in pending:
                baseline = lru.peek((token, root, weight, _NO_FAILURE_KEY))
                if baseline is not None and _provably_unaffected(
                    baseline, failures
                ):
                    self._reuse_proofs += 1
                    if obs is not None:
                        obs.counter("cache.routes.reuse_proofs").inc()
                    if lru.store((token, root, weight, fkey), baseline):
                        evictions += 1
                    inserted += 1
                else:
                    remaining.append(root)
            pending = remaining
        if pending:
            batch = dijkstra_multi(
                topology, pending, weight=weight, failures=failures, obs=obs
            )
            for root in pending:
                if lru.store((token, root, weight, fkey), batch.paths(root)):
                    evictions += 1
                inserted += 1
        if obs is not None:
            obs.counter("cache.routes.batch_inserts").inc(inserted)
            if evictions:
                obs.counter("cache.routes.evictions").inc(evictions)
            obs.gauge("cache.routes.size").set(len(lru))
        return inserted

    @property
    def stats(self) -> dict[str, int]:
        return {
            "size": len(self._lru),
            "max_entries": self._lru.max_entries,
            "hits": self._lru.hits,
            "misses": self._lru.misses,
            "evictions": self._lru.evictions,
            "reuse_proofs": self._reuse_proofs,
        }

    def clear(self) -> None:
        self._lru.clear()

    def __repr__(self) -> str:
        return f"RouteCache({self._lru!r}, reuse_proofs={self._reuse_proofs})"
