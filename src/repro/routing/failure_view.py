"""Failure sets: immutable descriptions of failed links and nodes.

A persistent failure (§1 of the paper: cable cuts, router crashes, extended
congestion) removes components from service for a long time.  Routing and
recovery algorithms take a :class:`FailureSet` and must never route through
a failed component.  The set is immutable so that a failure scenario can be
shared between the SMRP and baseline runs of an experiment without risk of
mutation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.graph.topology import Edge, NodeId, edge_key


@dataclass(frozen=True)
class FailureSet:
    """An immutable set of failed links and failed nodes.

    A failed node implicitly fails all of its incident links; callers can
    rely on :meth:`link_usable` to account for both.
    """

    failed_links: frozenset[Edge] = field(default_factory=frozenset)
    failed_nodes: frozenset[NodeId] = field(default_factory=frozenset)

    @staticmethod
    def links(*links: tuple[NodeId, NodeId]) -> "FailureSet":
        """Failure of the given links only."""
        return FailureSet(
            failed_links=frozenset(edge_key(u, v) for u, v in links)
        )

    @staticmethod
    def nodes(*nodes: NodeId) -> "FailureSet":
        """Failure of the given nodes (and implicitly their links)."""
        return FailureSet(failed_nodes=frozenset(nodes))

    @property
    def is_empty(self) -> bool:
        return not self.failed_links and not self.failed_nodes

    def link_failed(self, u: NodeId, v: NodeId) -> bool:
        """True when the link itself is listed as failed."""
        return edge_key(u, v) in self.failed_links

    def node_failed(self, node: NodeId) -> bool:
        return node in self.failed_nodes

    def link_usable(self, u: NodeId, v: NodeId) -> bool:
        """True when neither the link nor either endpoint has failed."""
        return (
            not self.link_failed(u, v)
            and u not in self.failed_nodes
            and v not in self.failed_nodes
        )

    def path_affected(self, path: Iterable[NodeId]) -> bool:
        """True when any node or link of ``path`` is failed."""
        nodes = list(path)
        if any(node in self.failed_nodes for node in nodes):
            return True
        return any(self.link_failed(u, v) for u, v in zip(nodes, nodes[1:]))

    def union(self, other: "FailureSet") -> "FailureSet":
        """Combined failure scenario."""
        return FailureSet(
            failed_links=self.failed_links | other.failed_links,
            failed_nodes=self.failed_nodes | other.failed_nodes,
        )

    def iter_failed_links(self) -> Iterator[Edge]:
        return iter(sorted(self.failed_links))

    def iter_failed_nodes(self) -> Iterator[NodeId]:
        return iter(sorted(self.failed_nodes))

    def describe(self) -> str:
        """Human-readable summary for traces and reports."""
        if self.is_empty:
            return "no failures"
        parts = []
        if self.failed_links:
            links = ", ".join(f"{u}-{v}" for u, v in sorted(self.failed_links))
            parts.append(f"links[{links}]")
        if self.failed_nodes:
            nodes = ", ".join(str(n) for n in sorted(self.failed_nodes))
            parts.append(f"nodes[{nodes}]")
        return " ".join(parts)


#: The empty failure scenario, shared to avoid rebuilding it everywhere.
NO_FAILURES = FailureSet()
