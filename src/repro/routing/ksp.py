"""Yen's k-shortest loopless paths.

SMRP's candidate enumeration normally needs only the single shortest path
from the joining member to each merge point (paper footnote 4: "we only
consider the shortest one").  K-shortest paths are used in two places:

- the ablation benches, to measure how much is lost by that restriction,
- recovery stress tests, where the first detour may itself be faulty.

Implemented as classic Yen: repeatedly compute spur paths off the previous
best path with root-prefix and used-edge masking.
"""

from __future__ import annotations

from repro.errors import ConfigurationError, NoPathError
from repro.graph.topology import NodeId, Topology, edge_key
from repro.routing.failure_view import NO_FAILURES, FailureSet
from repro.routing.spf import shortest_path


def k_shortest_paths(
    topology: Topology,
    source: NodeId,
    target: NodeId,
    k: int,
    weight: str = "delay",
    failures: FailureSet = NO_FAILURES,
) -> list[list[NodeId]]:
    """Up to ``k`` loopless shortest paths, in nondecreasing length order.

    Returns fewer than ``k`` paths when the graph does not contain that
    many; raises :class:`NoPathError` when source and target are entirely
    disconnected.
    """
    if k < 1:
        raise ConfigurationError(f"k must be >= 1, got {k}")
    first = shortest_path(topology, source, target, weight=weight, failures=failures)
    accepted: list[list[NodeId]] = [first]
    candidates: list[tuple[float, list[NodeId]]] = []

    while len(accepted) < k:
        previous = accepted[-1]
        for spur_index in range(len(previous) - 1):
            root = previous[: spur_index + 1]
            spur_node = previous[spur_index]

            # Mask edges that would recreate an already-accepted path with
            # the same root, plus the root's interior nodes (loopless-ness).
            masked_links = set()
            for path in accepted + [p for _, p in candidates]:
                if path[: spur_index + 1] == root and len(path) > spur_index + 1:
                    masked_links.add(edge_key(path[spur_index], path[spur_index + 1]))
            masked_nodes = set(root[:-1])

            spur_failures = failures.union(
                FailureSet(
                    failed_links=frozenset(masked_links),
                    failed_nodes=frozenset(masked_nodes),
                )
            )
            try:
                spur = shortest_path(
                    topology, spur_node, target, weight=weight, failures=spur_failures
                )
            except NoPathError:
                continue
            total = root[:-1] + spur
            length = _path_weight(topology, total, weight)
            if all(total != p for _, p in candidates) and total not in accepted:
                candidates.append((length, total))

        if not candidates:
            break
        candidates.sort(key=lambda item: (item[0], item[1]))
        __, best = candidates.pop(0)
        accepted.append(best)
    return accepted


def _path_weight(topology: Topology, path: list[NodeId], weight: str) -> float:
    if weight == "delay":
        return topology.path_delay(path)
    return topology.path_cost(path)
