"""Link-state database and unicast re-convergence model.

The paper's motivation (§1, citing Wang et al. [25]) is that PIM-style
multicast recovery is dominated by the *unicast* protocol's re-convergence:
after a persistent failure, every affected router must detect the failure,
flood updated link-state advertisements, and re-run SPF before the member's
new shortest path even exists.  A local detour avoids that wait.

This module provides:

- :class:`LinkStateDatabase` — a router's view of the network: the full
  topology minus the failures it has learned about.  Routing tables are
  derived from this view, so a router that has not yet heard about a
  failure still routes through it (exactly the transient the paper's local
  recovery sidesteps).

- :class:`ConvergenceModel` — an analytic model of when each router's view
  converges after a failure: detection delay at the adjacent routers, plus
  delay-proportional flooding of the LSA, plus SPF recomputation time.
  The experiments use it to translate recovery *distance* into recovery
  *latency* and to compare against the global-detour baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError, TopologyError
from repro.graph.topology import Edge, NodeId, Topology, edge_key
from repro.routing.failure_view import NO_FAILURES, FailureSet
from repro.routing.spf import dijkstra
from repro.routing.tables import RoutingTable, build_routing_table


class LinkStateDatabase:
    """A single router's link-state view of the network.

    The database starts fully synchronized with the real topology; failures
    become visible only when :meth:`learn_failure` is called (by the
    flooding process of the simulator or by the convergence model).
    """

    def __init__(self, owner: NodeId, topology: Topology) -> None:
        if not topology.has_node(owner):
            raise TopologyError(f"LSDB owner {owner} is not in the topology")
        self.owner = owner
        self._topology = topology
        self._known_failed_links: set[Edge] = set()
        self._known_failed_nodes: set[NodeId] = set()

    @property
    def known_failures(self) -> FailureSet:
        """Failures this router has learned about so far."""
        return FailureSet(
            failed_links=frozenset(self._known_failed_links),
            failed_nodes=frozenset(self._known_failed_nodes),
        )

    def learn_failure(self, failures: FailureSet) -> bool:
        """Merge newly learned failures; returns True if the view changed."""
        before = (len(self._known_failed_links), len(self._known_failed_nodes))
        self._known_failed_links.update(failures.failed_links)
        self._known_failed_nodes.update(failures.failed_nodes)
        return (len(self._known_failed_links), len(self._known_failed_nodes)) != before

    def forget_all(self) -> None:
        """Reset to the pristine (no-failure) view."""
        self._known_failed_links.clear()
        self._known_failed_nodes.clear()

    def routing_table(self, weight: str = "delay") -> RoutingTable:
        """The routing table this router would install from its current view."""
        return build_routing_table(
            self._topology, self.owner, weight=weight, failures=self.known_failures
        )

    def is_synchronized_with(self, actual: FailureSet) -> bool:
        """True when this view includes every actually failed component."""
        return actual.failed_links <= frozenset(
            self._known_failed_links
        ) and actual.failed_nodes <= frozenset(self._known_failed_nodes)


@dataclass(frozen=True)
class ConvergenceModel:
    """Analytic model of link-state re-convergence latency.

    Attributes
    ----------
    detection_delay:
        Time for a router adjacent to the failure to declare it dead
        (e.g. hello/dead-interval timeout; dominant in practice).
    flooding_delay_factor:
        LSAs propagate along links at this multiple of the link delay.
    per_hop_processing:
        Fixed LSA processing time added per flooding hop.
    spf_compute_time:
        Time to re-run SPF and install routes once the LSA arrives.
    """

    detection_delay: float = 30.0
    flooding_delay_factor: float = 1.0
    per_hop_processing: float = 0.5
    spf_compute_time: float = 1.0

    def __post_init__(self) -> None:
        for name in (
            "detection_delay",
            "flooding_delay_factor",
            "per_hop_processing",
            "spf_compute_time",
        ):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be non-negative")

    def convergence_times(
        self, topology: Topology, failures: FailureSet
    ) -> dict[NodeId, float]:
        """When each surviving router's routing table is re-converged.

        LSAs originate at the routers adjacent to each failed component at
        ``detection_delay``, then flood over the surviving topology; each
        router converges ``spf_compute_time`` after its last relevant LSA
        arrives.  Routers disconnected from every failure-adjacent router
        never learn of the failure; they are reported with the detection
        delay only (their tables never change, so they are trivially
        "converged").
        """
        origins = self._advertising_routers(topology, failures)
        times: dict[NodeId, float] = {}
        survivors = [
            node for node in topology.nodes() if not failures.node_failed(node)
        ]
        if not origins:
            return {node: 0.0 for node in survivors}

        # Flood from each origin over the surviving graph; a router is
        # converged once it has heard from *every* origin it can reach
        # (distinct failed components are advertised independently).
        arrival: dict[NodeId, float] = {}
        for origin in origins:
            paths = dijkstra(topology, origin, weight="delay", failures=failures)
            for node in survivors:
                if node not in paths.dist:
                    continue
                hops = len(paths.path_to(node)) - 1
                lsa_time = (
                    self.detection_delay
                    + self.flooding_delay_factor * paths.dist[node]
                    + self.per_hop_processing * hops
                )
                arrival[node] = max(arrival.get(node, 0.0), lsa_time)
        for node in survivors:
            if node in arrival:
                times[node] = arrival[node] + self.spf_compute_time
            else:
                times[node] = self.detection_delay
        return times

    def convergence_time(
        self, topology: Topology, failures: FailureSet, node: NodeId
    ) -> float:
        """Convergence time at one router."""
        times = self.convergence_times(topology, failures)
        if node not in times:
            raise TopologyError(f"node {node} is failed or not in the topology")
        return times[node]

    def _advertising_routers(
        self, topology: Topology, failures: FailureSet
    ) -> set[NodeId]:
        """Surviving routers adjacent to a failed component (LSA origins)."""
        origins: set[NodeId] = set()
        for u, v in failures.failed_links:
            for endpoint in (u, v):
                if topology.has_node(endpoint) and not failures.node_failed(endpoint):
                    origins.add(endpoint)
        for node in failures.failed_nodes:
            if not topology.has_node(node):
                continue
            for neighbor in topology.neighbors(node):
                if not failures.node_failed(neighbor):
                    origins.add(neighbor)
        return origins


@dataclass
class FloodingStats:
    """Bookkeeping for LSA flooding overhead (used by the overhead bench)."""

    lsa_messages: int = 0
    touched_routers: set[NodeId] = field(default_factory=set)


def flood_failure(
    topology: Topology,
    databases: dict[NodeId, LinkStateDatabase],
    failures: FailureSet,
) -> FloodingStats:
    """Synchronously flood a failure into every reachable router's LSDB.

    Models the *end state* of OSPF flooding (the DES models the timing).
    Each link crossed by the LSA counts as one message.  Returns overhead
    statistics used by the protocol-overhead ablation.
    """
    stats = FloodingStats()
    origins = ConvergenceModel()._advertising_routers(topology, failures)
    visited: set[NodeId] = set()
    frontier = sorted(origins)
    for node in frontier:
        if node in databases:
            databases[node].learn_failure(failures)
            visited.add(node)
    while frontier:
        next_frontier: list[NodeId] = []
        for node in frontier:
            for neighbor in topology.neighbors(node):
                if not failures.link_usable(node, neighbor):
                    continue
                stats.lsa_messages += 1
                if neighbor in visited or neighbor not in databases:
                    continue
                databases[neighbor].learn_failure(failures)
                visited.add(neighbor)
                next_frontier.append(neighbor)
        frontier = sorted(set(next_frontier))
    stats.touched_routers = visited
    return stats
