"""The stable high-level API: open a session, declare work, run it.

This facade is the supported entry point for using the reproduction
programmatically; the CLI is a thin wrapper over it, and the deep module
paths (``repro.experiments.fig8``, ``repro.controller.service``, …)
remain available for fine-grained access.

The surface is **session-oriented**: :func:`open_session` builds a
:class:`Session` that owns the execution substrate — a resolved
:class:`Executor`, a shared :class:`SubstrateCache`, optional live
telemetry — and exposes every verb against it:

- **scenario verbs** — :meth:`Session.run_scenario`,
  :meth:`Session.run_sweep`, :meth:`Session.build_figure` run the
  paper's experiments (consecutive calls share the session's caches);
- **service verbs** — :meth:`Session.open_group` /
  :meth:`Session.join` / :meth:`Session.leave` / :meth:`Session.fail` /
  :meth:`Session.restore` / :meth:`Session.metrics` host live multicast
  groups on the session's :class:`MulticastController`, and
  :meth:`Session.run_service` executes a declarative
  :class:`ServiceSpec` (thousands of groups, sharded over the session's
  executor, byte-identical however sharded).

The original module-level verbs — :func:`run_scenario`,
:func:`run_sweep`, :func:`build_figure`, plus the new
:func:`run_service` — remain the convenient one-shot spelling; each is
a thin wrapper that opens a transient :class:`Session`, delegates, and
closes it.  Their signatures and behavior are unchanged.

Every entry point accepts ``jobs`` (worker process count) or an explicit
``executor``; ``jobs > 1`` fans work units out over a
``ProcessPoolExecutor`` with results merged deterministically in input
order, so parallel runs are byte-identical to serial ones.  Passing a
``policy`` (:class:`ExecPolicy`) instead selects the fault-tolerant
:class:`ResilientExecutor` — per-unit timeouts, bounded retries, crash
isolation, and checkpoint/resume — which preserves the same
byte-identical guarantee even when workers crash or hang mid-batch.
The combination rules live in one place, :func:`resolve_executor`,
shared with the CLI.

``__all__`` below is the documented public surface; anything not listed
is an implementation detail.

Examples
--------
>>> from repro.api import ExperimentSpec, run_sweep
>>> spec = ExperimentSpec(n=30, group_size=8, sweep_parameter="d_thresh",
...                       sweep_values=(0.1, 0.3), topologies=2, member_sets=2)
>>> points = run_sweep(spec)
>>> [p.label for p in points]
['0.1', '0.3']
"""

from __future__ import annotations

from repro.controller.controller import (
    FailureDispatch,
    GroupRestoration,
    MulticastController,
)
from repro.controller.service import ServiceReport, run_service as _run_service
from repro.controller.spec import ServiceSpec
from repro.errors import ConfigurationError
from repro.experiments.exec.cache import SubstrateCache
from repro.experiments.exec.checkpoint import CheckpointStore
from repro.experiments.exec.executor import (
    Executor,
    ParallelExecutor,
    SerialExecutor,
    make_executor,
    resolve_executor,
)
from repro.experiments.exec.resilience import ExecPolicy, ResilientExecutor
from repro.experiments.exec.spec import ExperimentSpec
from repro.experiments.runner import ScenarioResult
from repro.experiments.runner import run_scenario as _run_scenario
from repro.experiments.scenario import ScenarioConfig
from repro.experiments.sweeps import SweepPoint, run_spec_sweep

__all__ = [
    "CheckpointStore",
    "ExecPolicy",
    "Executor",
    "ExperimentSpec",
    "FailureDispatch",
    "GroupRestoration",
    "MulticastController",
    "ParallelExecutor",
    "ResilientExecutor",
    "ScenarioConfig",
    "ScenarioResult",
    "SerialExecutor",
    "ServiceReport",
    "ServiceSpec",
    "Session",
    "SubstrateCache",
    "SweepPoint",
    "build_figure",
    "make_executor",
    "open_session",
    "resolve_executor",
    "run_scenario",
    "run_service",
    "run_sweep",
]

#: Figure driver registry: canonical name -> (module, runner attribute).
_FIGURES = {
    "fig7": ("repro.experiments.fig7", "run_figure7"),
    "fig8": ("repro.experiments.fig8", "run_figure8"),
    "fig9": ("repro.experiments.fig9", "run_figure9"),
    "fig10": ("repro.experiments.fig10", "run_figure10"),
    "protection": ("repro.experiments.figprotect", "run_protection_figure"),
    "distribution": ("repro.experiments.figdist", "run_distribution_figure"),
}

#: Distinguishes "caller did not mention cache" (session builds one)
#: from an explicit ``cache=None`` (run uncached, the historical
#: one-shot default).
_UNSET_CACHE = object()


class Session:
    """A long-lived handle over the execution substrate.

    Owns a resolved :class:`Executor` (closed with the session unless
    the caller passed a ready one in), a :class:`SubstrateCache` shared
    by every verb, and — lazily, on first service verb — a
    :class:`MulticastController` hosting live groups.

    Parameters
    ----------
    topology:
        Optional ready topology for the service verbs.  When omitted,
        the session derives one from ``spec`` via the cache on first
        use.
    spec:
        Optional default :class:`ServiceSpec`; provides the topology,
        protocol, and :meth:`run_service` defaults.
    executor, jobs, policy, telemetry:
        Execution selection, reconciled by :func:`resolve_executor` —
        identical rules and message text as the CLI.
    cache:
        Substrate cache for topologies and SPF state.  Omitted → the
        session builds its own; explicitly ``None`` → verbs run
        uncached (the historical one-shot behavior).
    obs:
        Default :class:`~repro.obs.Observability` for every verb.
    """

    def __init__(
        self,
        topology=None,
        *,
        spec: ServiceSpec | None = None,
        protocol: str = "smrp",
        smrp_config=None,
        convergence=None,
        executor: Executor | None = None,
        jobs: int = 1,
        policy: ExecPolicy | None = None,
        telemetry=None,
        cache=_UNSET_CACHE,
        obs=None,
    ) -> None:
        self.executor, self._owned = resolve_executor(
            executor=executor, jobs=jobs, policy=policy, telemetry=telemetry
        )
        self.cache = SubstrateCache() if cache is _UNSET_CACHE else cache
        self.spec = spec
        self.obs = obs
        self._topology = topology
        self._protocol = protocol
        self._smrp_config = smrp_config
        self._convergence = convergence
        self._controller: MulticastController | None = None
        self._closed = False

    # ------------------------------------------------------------------
    # Substrate
    # ------------------------------------------------------------------
    @property
    def topology(self):
        """The service topology (derived from ``spec`` on first use)."""
        if self._topology is None:
            if self.spec is None:
                raise ConfigurationError(
                    "session has no topology: pass one to open_session "
                    "or provide a ServiceSpec"
                )
            if self.cache is not None:
                self._topology = self.cache.topology_for(self.spec)
            else:
                from repro.experiments.exec.cache import SubstrateCache

                self._topology = SubstrateCache().topology_for(self.spec)
        return self._topology

    @property
    def controller(self) -> MulticastController:
        """The session's hosted-group controller (built on first use)."""
        if self._controller is None:
            spec = self.spec
            smrp_config = self._smrp_config
            protocol = spec.protocol if spec is not None else self._protocol
            if smrp_config is None and spec is not None:
                from repro.core.protocol import SMRPConfig

                smrp_config = SMRPConfig(
                    d_thresh=spec.d_thresh,
                    reshape_enabled=spec.reshape_enabled,
                    self_check=False,
                )
            self._controller = MulticastController(
                self.topology,
                protocol=protocol,
                smrp_config=smrp_config,
                cache=self.cache,
                convergence=self._convergence,
                obs=self.obs,
                telemetry=self.executor.telemetry,
            )
        return self._controller

    # ------------------------------------------------------------------
    # Service verbs (live hosted groups)
    # ------------------------------------------------------------------
    def open_group(self, source, group=None, *, protocol=None, members=()):
        """Host a new ``(source, group)`` session; see
        :meth:`MulticastController.open_group`."""
        return self.controller.open_group(
            source, group, protocol=protocol, members=members
        )

    def join(self, gid, node) -> None:
        self.controller.join(gid, node)

    def leave(self, gid, node) -> None:
        self.controller.leave(gid, node)

    def fail(self, failures):
        """Dispatch a failure to every affected hosted group."""
        return self.controller.fail(failures)

    def restore(self, failures=None) -> FailureDispatch:
        """Repair every affected group in one pass."""
        return self.controller.restore(failures)

    def metrics(self) -> dict:
        return self.controller.metrics()

    def run_service(self, spec: ServiceSpec | dict | None = None) -> ServiceReport:
        """Execute a declarative service run on the session's executor."""
        spec = spec if spec is not None else self.spec
        if spec is None:
            raise ConfigurationError(
                "no service spec: pass one or open the session with spec=..."
            )
        if isinstance(spec, dict):
            spec = ServiceSpec.from_dict(spec)
        return _run_service(spec, executor=self.executor, obs=self.obs)

    # ------------------------------------------------------------------
    # Scenario verbs (the paper's experiments)
    # ------------------------------------------------------------------
    def run_scenario(
        self, config: ScenarioConfig | None = None, **params
    ) -> ScenarioResult:
        """Run one scenario against the session's cache."""
        if config is None:
            config = ScenarioConfig(**params)
        elif params:
            raise ConfigurationError(
                "pass either a ScenarioConfig or its fields as keywords, "
                "not both"
            )
        return _run_scenario(config, obs=self.obs, cache=self.cache)

    def run_sweep(self, spec: ExperimentSpec | dict) -> list[SweepPoint]:
        """Expand a declarative sweep spec on the session's executor."""
        if isinstance(spec, dict):
            spec = ExperimentSpec.from_dict(spec)
        return run_spec_sweep(spec, executor=self.executor, obs=self.obs)

    def build_figure(self, figure: int | str, *, quick: bool = False, **overrides):
        """Run one of the paper's figure drivers on the session's executor."""
        import importlib

        name = figure if isinstance(figure, str) else f"fig{figure}"
        if name not in _FIGURES:
            raise ConfigurationError(
                f"unknown figure {figure!r}; expected one of "
                f"{sorted(_FIGURES)} (or 7-10)"
            )
        module_name, attr = _FIGURES[name]
        runner = getattr(importlib.import_module(module_name), attr)
        kwargs = dict(overrides)
        if quick and name != "fig7":
            kwargs.setdefault("topologies", 4)
            kwargs.setdefault("member_sets", 2)
        return runner(obs=self.obs, executor=self.executor, **kwargs)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the session's executor (idempotent; a caller-supplied
        executor is left open — the caller owns its lifecycle)."""
        if self._closed:
            return
        self._closed = True
        if self._owned:
            self.executor.close()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        hosted = len(self._controller) if self._controller is not None else 0
        return (
            f"Session(executor={self.executor.kind!r}, groups={hosted}, "
            f"{'closed' if self._closed else 'open'})"
        )


def open_session(
    topology=None,
    *,
    spec: ServiceSpec | dict | None = None,
    executor: Executor | None = None,
    jobs: int = 1,
    policy: ExecPolicy | None = None,
    telemetry=None,
    cache=_UNSET_CACHE,
    obs=None,
    **options,
) -> Session:
    """Open a :class:`Session` — the session-oriented entry point.

    Usable as a context manager; :meth:`Session.close` releases the
    executor the session resolved (a ready ``executor`` passed in stays
    open, matching the one-shot verbs' ownership rules).
    """
    if isinstance(spec, dict):
        spec = ServiceSpec.from_dict(spec)
    return Session(
        topology,
        spec=spec,
        executor=executor,
        jobs=jobs,
        policy=policy,
        telemetry=telemetry,
        cache=cache,
        obs=obs,
        **options,
    )


def run_scenario(
    config: ScenarioConfig | None = None,
    *,
    obs=None,
    cache: SubstrateCache | None = None,
    **params,
) -> ScenarioResult:
    """Run one scenario: both trees, worst-case failures, all metrics.

    Either pass a ready :class:`ScenarioConfig`, or its fields as
    keywords (``run_scenario(n=50, group_size=10)``).  ``cache`` lets
    consecutive calls share generated topologies and SPF state.
    """
    with Session(cache=cache, obs=obs) as session:
        return session.run_scenario(config, **params)


def run_sweep(
    spec: ExperimentSpec | dict,
    *,
    executor: Executor | None = None,
    jobs: int = 1,
    policy: ExecPolicy | None = None,
    telemetry=None,
    obs=None,
) -> list[SweepPoint]:
    """Expand a declarative spec over its seeding grid and aggregate.

    ``spec`` may be an :class:`ExperimentSpec` or its ``to_dict`` form.
    Parallelism: pass ``jobs > 1`` for a transient process pool, or a
    ready :class:`Executor` (which stays open — callers own its
    lifecycle).  ``policy`` selects the fault-tolerant
    :class:`ResilientExecutor` instead (timeouts, retries,
    checkpoint/resume); mutually exclusive with ``executor``.
    ``telemetry`` (a :class:`~repro.obs.live.TelemetryHub`) streams
    lifecycle events and progress while the sweep runs; it is
    observe-only and also mutually exclusive with ``executor`` (attach
    the hub when constructing the executor in that case).
    """
    with Session(
        executor=executor, jobs=jobs, policy=policy, telemetry=telemetry, obs=obs
    ) as session:
        return session.run_sweep(spec)


def run_service(
    spec: ServiceSpec | dict,
    *,
    executor: Executor | None = None,
    jobs: int = 1,
    policy: ExecPolicy | None = None,
    telemetry=None,
    obs=None,
) -> ServiceReport:
    """Execute a declarative multi-group service run.

    ``spec`` may be a :class:`ServiceSpec` or its ``to_dict`` form.  The
    run is cut into shard work units (``spec.shard_size`` groups each)
    that ride the selected executor; the merged
    :class:`ServiceReport` is byte-identical however the shards were
    scheduled — serial, pooled, resilient, or resumed from a
    checkpoint.
    """
    if isinstance(spec, dict):
        spec = ServiceSpec.from_dict(spec)
    with Session(
        spec=spec,
        executor=executor,
        jobs=jobs,
        policy=policy,
        telemetry=telemetry,
        obs=obs,
    ) as session:
        return session.run_service()


def build_figure(
    figure: int | str,
    *,
    quick: bool = False,
    executor: Executor | None = None,
    jobs: int = 1,
    policy: ExecPolicy | None = None,
    telemetry=None,
    obs=None,
    **overrides,
):
    """Run one of the paper's figure drivers and return its result object.

    ``figure`` is 7–10 (or ``"fig8"``-style names); the returned result
    has a ``render()`` method producing the text table.  ``quick``
    shrinks the seeding grid to 4×2 scenarios per sweep point (the CLI's
    ``--quick``); any figure-driver keyword (``values``, ``n``,
    ``topologies``, …) can be overridden explicitly and wins over
    ``quick``.  ``policy`` selects the fault-tolerant
    :class:`ResilientExecutor` (mutually exclusive with ``executor``).
    ``telemetry`` (a :class:`~repro.obs.live.TelemetryHub`) streams
    observe-only live progress; mutually exclusive with ``executor``.
    """
    with Session(
        executor=executor, jobs=jobs, policy=policy, telemetry=telemetry, obs=obs
    ) as session:
        return session.build_figure(figure, quick=quick, **overrides)
