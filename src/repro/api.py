"""The stable high-level API: declare an experiment, choose an executor, run.

This facade is the supported entry point for running the reproduction's
experiments programmatically; the CLI is a thin wrapper over it, and the
deep module paths (``repro.experiments.fig8`` …) remain available for
fine-grained access.

Three verbs cover the harness:

- :func:`run_scenario` — one fully seeded scenario (both trees, worst-case
  failures, the paper's metrics);
- :func:`run_sweep` — a declarative :class:`ExperimentSpec` expanded over
  its seeding grid into :class:`~repro.experiments.sweeps.SweepPoint`
  aggregates;
- :func:`build_figure` — any of the paper's Figures 7–10 as a rendered
  result object.

Each accepts ``jobs`` (worker process count) or an explicit ``executor``;
``jobs > 1`` fans scenario work units out over a ``ProcessPoolExecutor``
with results merged deterministically in seed order, so parallel runs are
byte-identical to serial ones.  Passing a ``policy``
(:class:`ExecPolicy`) instead selects the fault-tolerant
:class:`ResilientExecutor` — per-scenario timeouts, bounded retries,
crash isolation, and checkpoint/resume — which preserves the same
byte-identical guarantee even when workers crash or hang mid-sweep.

Examples
--------
>>> from repro.api import ExperimentSpec, run_sweep
>>> spec = ExperimentSpec(n=30, group_size=8, sweep_parameter="d_thresh",
...                       sweep_values=(0.1, 0.3), topologies=2, member_sets=2)
>>> points = run_sweep(spec)
>>> [p.label for p in points]
['0.1', '0.3']
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.experiments.exec.cache import SubstrateCache
from repro.experiments.exec.executor import (
    Executor,
    ParallelExecutor,
    SerialExecutor,
    make_executor,
)
from repro.experiments.exec.checkpoint import CheckpointStore
from repro.experiments.exec.resilience import ExecPolicy, ResilientExecutor
from repro.experiments.exec.spec import ExperimentSpec
from repro.experiments.runner import ScenarioResult
from repro.experiments.runner import run_scenario as _run_scenario
from repro.experiments.scenario import ScenarioConfig
from repro.experiments.sweeps import SweepPoint, run_spec_sweep

__all__ = [
    "CheckpointStore",
    "ExecPolicy",
    "Executor",
    "ExperimentSpec",
    "ParallelExecutor",
    "ResilientExecutor",
    "ScenarioConfig",
    "ScenarioResult",
    "SerialExecutor",
    "SubstrateCache",
    "SweepPoint",
    "build_figure",
    "make_executor",
    "run_scenario",
    "run_sweep",
]

#: Figure driver registry: canonical name -> (module, runner attribute).
_FIGURES = {
    "fig7": ("repro.experiments.fig7", "run_figure7"),
    "fig8": ("repro.experiments.fig8", "run_figure8"),
    "fig9": ("repro.experiments.fig9", "run_figure9"),
    "fig10": ("repro.experiments.fig10", "run_figure10"),
}


def _resolve_executor(
    executor: Executor | None,
    jobs: int,
    policy: ExecPolicy | None = None,
    telemetry=None,
) -> tuple[Executor, bool]:
    """``(executor, owned)`` from the facade's convenience parameters."""
    if executor is not None:
        if jobs != 1:
            raise ConfigurationError(
                "pass either an executor or jobs, not both"
            )
        if policy is not None:
            raise ConfigurationError(
                "pass either an executor or a policy, not both"
            )
        if telemetry is not None:
            raise ConfigurationError(
                "pass telemetry to the executor's constructor, "
                "not alongside a ready executor"
            )
        return executor, False
    if jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
    if policy is not None:
        return (
            ResilientExecutor(jobs=jobs, policy=policy, telemetry=telemetry),
            True,
        )
    if jobs > 1:
        return ParallelExecutor(jobs=jobs, telemetry=telemetry), True
    return SerialExecutor(telemetry=telemetry), True


def run_scenario(
    config: ScenarioConfig | None = None,
    *,
    obs=None,
    cache: SubstrateCache | None = None,
    **params,
) -> ScenarioResult:
    """Run one scenario: both trees, worst-case failures, all metrics.

    Either pass a ready :class:`ScenarioConfig`, or its fields as
    keywords (``run_scenario(n=50, group_size=10)``).  ``cache`` lets
    consecutive calls share generated topologies and SPF state.
    """
    if config is None:
        config = ScenarioConfig(**params)
    elif params:
        raise ConfigurationError(
            "pass either a ScenarioConfig or its fields as keywords, not both"
        )
    return _run_scenario(config, obs=obs, cache=cache)


def run_sweep(
    spec: ExperimentSpec | dict,
    *,
    executor: Executor | None = None,
    jobs: int = 1,
    policy: ExecPolicy | None = None,
    telemetry=None,
    obs=None,
) -> list[SweepPoint]:
    """Expand a declarative spec over its seeding grid and aggregate.

    ``spec`` may be an :class:`ExperimentSpec` or its ``to_dict`` form.
    Parallelism: pass ``jobs > 1`` for a transient process pool, or a
    ready :class:`Executor` (which stays open — callers own its
    lifecycle).  ``policy`` selects the fault-tolerant
    :class:`ResilientExecutor` instead (timeouts, retries,
    checkpoint/resume); mutually exclusive with ``executor``.
    ``telemetry`` (a :class:`~repro.obs.live.TelemetryHub`) streams
    lifecycle events and progress while the sweep runs; it is
    observe-only and also mutually exclusive with ``executor`` (attach
    the hub when constructing the executor in that case).
    """
    if isinstance(spec, dict):
        spec = ExperimentSpec.from_dict(spec)
    executor, owned = _resolve_executor(executor, jobs, policy, telemetry)
    try:
        return run_spec_sweep(spec, executor=executor, obs=obs)
    finally:
        if owned:
            executor.close()


def build_figure(
    figure: int | str,
    *,
    quick: bool = False,
    executor: Executor | None = None,
    jobs: int = 1,
    policy: ExecPolicy | None = None,
    telemetry=None,
    obs=None,
    **overrides,
):
    """Run one of the paper's figure drivers and return its result object.

    ``figure`` is 7–10 (or ``"fig8"``-style names); the returned result
    has a ``render()`` method producing the text table.  ``quick``
    shrinks the seeding grid to 4×2 scenarios per sweep point (the CLI's
    ``--quick``); any figure-driver keyword (``values``, ``n``,
    ``topologies``, …) can be overridden explicitly and wins over
    ``quick``.  ``policy`` selects the fault-tolerant
    :class:`ResilientExecutor` (mutually exclusive with ``executor``).
    ``telemetry`` (a :class:`~repro.obs.live.TelemetryHub`) streams
    observe-only live progress; mutually exclusive with ``executor``.
    """
    import importlib

    name = figure if isinstance(figure, str) else f"fig{figure}"
    if name not in _FIGURES:
        raise ConfigurationError(
            f"unknown figure {figure!r}; expected one of "
            f"{sorted(_FIGURES)} (or 7-10)"
        )
    module_name, attr = _FIGURES[name]
    runner = getattr(importlib.import_module(module_name), attr)
    kwargs = dict(overrides)
    if quick and name != "fig7":
        kwargs.setdefault("topologies", 4)
        kwargs.setdefault("member_sets", 2)
    executor, owned = _resolve_executor(executor, jobs, policy, telemetry)
    try:
        return runner(obs=obs, executor=executor, **kwargs)
    finally:
        if owned:
            executor.close()
