"""Exception hierarchy for the SMRP reproduction library.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch the whole family with one ``except`` clause while still
being able to distinguish the specific failure mode.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class TopologyError(ReproError):
    """A topology is malformed or a requested graph element does not exist."""


class RoutingError(ReproError):
    """Unicast route computation failed (e.g. destination unreachable)."""


class NoPathError(RoutingError):
    """No path exists between the requested endpoints.

    Carries the endpoints so diagnostics can report exactly which pair
    was unreachable.
    """

    def __init__(self, source: object, target: object, reason: str = "") -> None:
        self.source = source
        self.target = target
        detail = f": {reason}" if reason else ""
        super().__init__(f"no path from {source!r} to {target!r}{detail}")


class MulticastError(ReproError):
    """Multicast tree construction or maintenance failed."""


class NotOnTreeError(MulticastError):
    """An operation referenced a node that is not part of the multicast tree."""

    def __init__(self, node: object) -> None:
        self.node = node
        super().__init__(f"node {node!r} is not on the multicast tree")


class AlreadyMemberError(MulticastError):
    """A node attempted to join a group it already belongs to."""

    def __init__(self, node: object) -> None:
        self.node = node
        super().__init__(f"node {node!r} is already a member of the group")


class NotMemberError(MulticastError):
    """A node attempted to leave a group it does not belong to."""

    def __init__(self, node: object) -> None:
        self.node = node
        super().__init__(f"node {node!r} is not a member of the group")


class JoinRejectedError(MulticastError):
    """No candidate path satisfied the SMRP path-selection criterion."""

    def __init__(self, node: object, reason: str) -> None:
        self.node = node
        self.reason = reason
        super().__init__(f"join of {node!r} rejected: {reason}")


class RecoveryError(ReproError):
    """Failure recovery could not restore the multicast session."""


class UnrecoverableFailureError(RecoveryError):
    """No non-faulty restoration path exists for a disconnected member."""

    def __init__(self, member: object, reason: str = "") -> None:
        self.member = member
        detail = f": {reason}" if reason else ""
        super().__init__(f"member {member!r} cannot be recovered{detail}")


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class ConfigurationError(ReproError):
    """An experiment or protocol was configured with invalid parameters."""


class ExecutionError(ReproError):
    """A sweep work unit could not be executed by the execution engine."""


class RetryExhaustedError(ExecutionError):
    """A scenario work unit kept failing after every allowed retry.

    Carries the work unit's batch index and a description of its last
    failure so the scenario can be re-run in isolation.
    """

    def __init__(
        self, index: int, describe: str, attempts: int, reason: str
    ) -> None:
        self.index = index
        self.describe = describe
        self.attempts = attempts
        self.reason = reason
        super().__init__(
            f"scenario #{index} ({describe}) failed on all {attempts} "
            f"attempt(s); last failure: {reason}"
        )


class CheckpointError(ExecutionError):
    """A checkpoint store could not be read or written."""
