"""Run the doctests embedded in public-API docstrings."""

import doctest

import pytest

import repro.graph.topology
import repro.obs
import repro.obs.registry
import repro.obs.spans
import repro.sim.engine


@pytest.mark.parametrize(
    "module",
    [
        repro.graph.topology,
        repro.sim.engine,
        repro.obs,
        repro.obs.registry,
        repro.obs.spans,
    ],
    ids=lambda m: m.__name__,
)
def test_module_doctests(module):
    failures, attempted = doctest.testmod(
        module, verbose=False, raise_on_error=False
    ).failed, doctest.testmod(module, verbose=False).attempted
    assert attempted > 0, f"{module.__name__} lost its doctests"
    assert failures == 0


def test_protocol_docstring_example():
    """The SMRPProtocol class docstring example, executed literally."""
    from repro.graph import figure4_topology
    from repro.graph.generators import node_id
    from repro.core.protocol import SMRPProtocol

    proto = SMRPProtocol(figure4_topology(), source=node_id("S"))
    proto.join(node_id("E"))
    assert proto.shr_values()[node_id("D")] == 2


def test_package_docstring_example():
    """The repro package quickstart, executed literally."""
    from repro import SMRPProtocol, SMRPConfig, waxman_topology, WaxmanConfig

    net = waxman_topology(WaxmanConfig(n=50, alpha=0.25, seed=7)).topology
    proto = SMRPProtocol(net, source=0, config=SMRPConfig(d_thresh=0.3))
    tree = proto.build([5, 12, 23, 31, 44])
    assert sorted(tree.members) == [5, 12, 23, 31, 44]
