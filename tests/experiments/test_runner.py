"""Tests for the scenario runner (small N for speed)."""

import pytest

from repro.experiments.runner import run_scenario
from repro.experiments.scenario import ScenarioConfig


@pytest.fixture(scope="module")
def result():
    return run_scenario(
        ScenarioConfig(n=40, group_size=10, topology_seed=2, member_seed=7)
    )


class TestScenarioResult:
    def test_all_members_measured(self, result):
        assert len(result.measurements) == 10
        assert sorted(m.member for m in result.measurements) == sorted(
            result.members
        )

    def test_relative_metrics_well_formed(self, result):
        for value in result.rd_relative:
            assert -5.0 < value <= 1.0  # RD_rel is at most 1 by definition
        assert len(result.delay_relative) == 10

    def test_delay_penalty_non_negative(self, result):
        """SMRP can never beat SPF on a member's delay (SPF is optimal)."""
        for value in result.delay_relative:
            assert value >= -1e-9

    def test_cost_relative_defined(self, result):
        assert result.cost_spf > 0
        assert result.cost_smrp > 0
        assert result.cost_relative == pytest.approx(
            (result.cost_smrp - result.cost_spf) / result.cost_spf
        )

    def test_cross_strategies_recorded(self, result):
        for m in result.measurements:
            if m.rd_spf_local is not None and m.rd_spf_global is not None:
                assert m.rd_spf_local <= m.rd_spf_global + 1e-9

    def test_reproducible(self):
        cfg = ScenarioConfig(n=40, group_size=10, topology_seed=2, member_seed=7)
        a = run_scenario(cfg)
        b = run_scenario(cfg)
        assert a.rd_relative == b.rd_relative
        assert a.cost_relative == b.cost_relative

    def test_different_seeds_differ(self, result):
        other = run_scenario(
            ScenarioConfig(n=40, group_size=10, topology_seed=3, member_seed=8)
        )
        assert other.rd_relative != result.rd_relative


class TestSummaries:
    def test_scenario_summary_one_line(self, result):
        text = result.summary()
        assert "\n" not in text
        assert "10 members" in text
        assert f"cost spf={result.cost_spf:.1f}" in text

    def test_scenario_repr_embeds_config_and_summary(self, result):
        text = repr(result)
        assert text.startswith("<ScenarioResult ")
        assert result.config.describe() in text
        assert result.summary() in text

    def test_member_measurement_repr(self, result):
        m = result.measurements[0]
        text = repr(m)
        assert text.startswith(f"<MemberMeasurement {m.member}:")
        assert f"delay spf={m.delay_spf:.1f}" in text

    def test_member_measurement_repr_handles_unrecoverable(self):
        from repro.experiments.runner import MemberMeasurement

        m = MemberMeasurement(
            member=5,
            rd_spf_global=None,
            rd_smrp_local=None,
            rd_spf_local=None,
            rd_smrp_global=None,
            delay_spf=2.0,
            delay_smrp=2.5,
        )
        assert "RD spf=— smrp=—" in repr(m)


class TestObservedScenario:
    def test_obs_counters_match_result(self):
        from repro.obs import Observability

        obs = Observability()
        cfg = ScenarioConfig(n=40, group_size=10, topology_seed=2, member_seed=7)
        result = run_scenario(cfg, obs=obs)
        counters = obs.metrics.counters()
        assert counters["scenario.runs"] == 1
        assert counters["smrp.joins"] == len(result.members)
        assert counters["smrp.reshapes_performed"] == result.smrp_reshapes
        assert counters["smrp.fallback_joins"] == result.smrp_fallback_joins
        # Each member triggers one local (SMRP) and one global (SPF) attempt.
        assert counters["recovery.local.attempts"] == len(result.members)
        assert counters["recovery.global.attempts"] == len(result.members)
        # Per-message-type counts mirror the signaling-hop accounting.
        assert counters["smrp.msg.Join_Req"] == counters[
            "smrp.join_signaling_hops"
        ]
        spans = obs.spans.totals()
        for name in (
            "scenario.topology",
            "scenario.build.spf",
            "scenario.build.smrp",
            "scenario.measure",
        ):
            assert spans[name][0] == 1
        assert len(obs.events) == 1  # the scenario_result event
