"""Protection-family figure: determinism and checkpoint round-trips.

The figure's table must be byte-identical whether the grid ran serially,
over a process pool, under the resilient executor, or resumed from a
half-finished checkpoint store — the same merge contract every other
figure family honours (and the CI ``protection-smoke`` job diffs for
real).
"""

import pytest

from repro.errors import CheckpointError, ConfigurationError
from repro.experiments.exec import (
    ExecPolicy,
    ParallelExecutor,
    ResilientExecutor,
    SerialExecutor,
)
from repro.experiments.exec.checkpoint import CheckpointStore
from repro.experiments.figprotect import (
    ProtectionPoint,
    ProtectionPointResult,
    run_protection_figure,
)

#: Small but non-trivial: 2 rates x 2 topologies x 1 member set.
QUICK = dict(
    rates=(0.02, 0.1),
    n=40,
    group_size=8,
    topologies=2,
    member_sets=1,
    trials=2,
)


@pytest.fixture(scope="module")
def serial_render():
    with SerialExecutor() as ex:
        return run_protection_figure(executor=ex, **QUICK).render()


class TestProtectionPoint:
    def test_content_key_is_stable_and_parameter_sensitive(self):
        a = ProtectionPoint(failure_rate=0.05)
        b = ProtectionPoint(failure_rate=0.05)
        c = ProtectionPoint(failure_rate=0.1)
        assert a.content_key() == b.content_key()
        assert a.content_key() != c.content_key()

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            ProtectionPoint(failure_rate=0.0)
        with pytest.raises(ConfigurationError):
            ProtectionPoint(failure_rate=1.5)
        with pytest.raises(ConfigurationError):
            ProtectionPoint(failure_rate=0.05, budget=-1)
        with pytest.raises(ConfigurationError):
            ProtectionPoint(failure_rate=0.05, trials=0)

    def test_result_round_trips_through_dict(self):
        point = ProtectionPoint(failure_rate=0.1, n=30, group_size=6, trials=1)
        result = point.run()
        clone = ProtectionPointResult.from_dict(result.to_dict())
        assert clone.to_dict() == result.to_dict()

    def test_foreign_payload_version_rejected(self):
        point = ProtectionPoint(failure_rate=0.1, n=30, group_size=6, trials=1)
        payload = point.run().to_dict()
        payload["payload_version"] = 99
        with pytest.raises(CheckpointError):
            ProtectionPointResult.from_dict(payload)

    def test_result_is_checkpointable(self, tmp_path):
        point = ProtectionPoint(failure_rate=0.1, n=30, group_size=6, trials=1)
        result = point.run()
        with CheckpointStore(tmp_path) as store:
            assert store.put(point.content_key(), result, point.describe())
        reloaded = CheckpointStore(tmp_path)
        stored = reloaded.get(point.content_key())
        assert stored.to_dict() == result.to_dict()


class TestExecutorByteIdentity:
    def test_process_pool_identical_to_serial(self, serial_render):
        with ParallelExecutor(jobs=2) as ex:
            pooled = run_protection_figure(executor=ex, **QUICK).render()
        assert pooled == serial_render

    def test_resilient_identical_to_serial(self, serial_render, tmp_path):
        policy = ExecPolicy(
            checkpoint_dir=str(tmp_path), resume=True, backoff_base=0.0
        )
        with ResilientExecutor(jobs=2, policy=policy) as ex:
            resilient = run_protection_figure(executor=ex, **QUICK).render()
        assert resilient == serial_render

    def test_resume_from_checkpoint_identical(self, serial_render, tmp_path):
        policy = ExecPolicy(
            checkpoint_dir=str(tmp_path), resume=True, backoff_base=0.0
        )
        with ResilientExecutor(jobs=2, policy=policy) as ex:
            first = run_protection_figure(executor=ex, **QUICK).render()
        # Every point is now checkpointed; the rerun must be served from
        # the store and still render identically.
        with ResilientExecutor(jobs=2, policy=policy) as ex:
            resumed = run_protection_figure(executor=ex, **QUICK).render()
        assert first == serial_render
        assert resumed == serial_render
