"""Tests for scenario configuration and seeding."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.scenario import ScenarioConfig


class TestScenarioConfig:
    def test_defaults_match_paper(self):
        cfg = ScenarioConfig()
        assert cfg.n == 100
        assert cfg.group_size == 30
        assert cfg.alpha == 0.2
        assert cfg.d_thresh == 0.3

    def test_group_too_large_rejected(self):
        with pytest.raises(ConfigurationError):
            ScenarioConfig(n=10, group_size=10)

    def test_topology_reproducible(self):
        cfg = ScenarioConfig(n=40, group_size=10, topology_seed=3)
        a = cfg.build_topology()
        b = cfg.build_topology()
        assert [l.key for l in a.links()] == [l.key for l in b.links()]

    def test_participants_reproducible(self):
        cfg = ScenarioConfig(n=40, group_size=10, member_seed=5)
        topo = cfg.build_topology()
        assert cfg.pick_participants(topo) == cfg.pick_participants(topo)

    def test_participants_exclude_source(self):
        cfg = ScenarioConfig(n=40, group_size=12)
        topo = cfg.build_topology()
        source, members = cfg.pick_participants(topo)
        assert source not in members
        assert len(members) == 12

    def test_with_seeds(self):
        cfg = ScenarioConfig().with_seeds(7, 8)
        assert (cfg.topology_seed, cfg.member_seed) == (7, 8)
        assert cfg.n == 100  # other fields preserved

    def test_describe(self):
        assert "N_G=30" in ScenarioConfig().describe()
