"""Tests for the restoration-latency distribution figure family."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.experiments.exec.executor import ParallelExecutor, SerialExecutor
from repro.experiments.figdist import (
    DistributionResult,
    build_engine_spec,
    run_distribution_figure,
)
from repro.obs import Observability

#: Small but non-degenerate: on this seed both engines restore members,
#: so the latency histograms are populated.
QUICK = dict(engines=("smrp", "spf"), groups=30, n=50, sources=4,
             shard_size=8)


class TestBuildEngineSpec:
    def test_engines_differ_only_in_protocol(self):
        a = build_engine_spec("smrp", 100)
        b = build_engine_spec("spf", 100)
        assert a.protocol == "smrp" and b.protocol == "spf"
        assert a.content_key() != b.content_key()
        fields = {
            name: getattr(a, name)
            for name in ("n", "alpha", "groups", "sources", "shard_size",
                         "failure", "workload")
        }
        assert fields == {
            name: getattr(b, name) for name in fields
        }

    def test_bad_engine_rejected(self):
        with pytest.raises(ConfigurationError):
            build_engine_spec("teleport", 100)


class TestRunDistributionFigure:
    def test_quick_run_shape(self):
        result = run_distribution_figure(**QUICK)
        assert isinstance(result, DistributionResult)
        assert [d.engine for d in result.engines] == ["smrp", "spf"]
        for dist in result.engines:
            assert dist.members > 0
            assert dist.affected > 0
            assert dist.worst.count > 0
            # only restored groups have a latency
            assert dist.worst.count <= dist.affected
            assert dist.worst.count == dist.mean.count
            # slowest member dominates the group mean
            assert dist.worst.quantile(1.0) >= dist.mean.quantile(1.0)

    def test_no_engines_rejected(self):
        with pytest.raises(ConfigurationError):
            run_distribution_figure(engines=(), groups=10)

    def test_render_contains_quantile_table(self):
        text = run_distribution_figure(**QUICK).render()
        assert "== restoration-latency distribution ==" in text
        for column in ("p50", "p90", "p99", "p99.9", "max"):
            assert column in text
        assert "smrp" in text and "spf" in text

    def test_parallel_output_byte_identical_to_serial(self):
        serial = run_distribution_figure(**QUICK).render()
        with ParallelExecutor(jobs=2) as executor:
            pooled = run_distribution_figure(
                executor=executor, **QUICK
            ).render()
        assert pooled == serial

    def test_passed_executor_stays_open(self):
        executor = SerialExecutor()
        run_distribution_figure(executor=executor, **QUICK)
        # a second use must not hit a closed executor
        run_distribution_figure(executor=executor, **QUICK)
        executor.close()

    def test_obs_mirrors_histograms_and_counters(self):
        obs = Observability(enabled=True)
        result = run_distribution_figure(obs=obs, **QUICK)
        metrics = obs.run_report()["metrics"]
        assert metrics["counters"]["dist.groups"] == 60
        assert metrics["counters"]["dist.rows"] == sum(
            d.affected for d in result.engines
        )
        hdr = metrics["hdr_histograms"]
        for dist in result.engines:
            mirrored = hdr[f"dist.latency.{dist.engine}"]
            assert mirrored["count"] == dist.worst.count
            assert mirrored == dist.worst.to_dict()
