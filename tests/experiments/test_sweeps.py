"""Tests for parameter sweeps and the figure drivers (reduced scale)."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.fig7 import run_figure7
from repro.experiments.fig8 import run_figure8
from repro.experiments.fig9 import run_figure9
from repro.experiments.fig10 import run_figure10
from repro.experiments.scenario import ScenarioConfig
from repro.experiments.sweeps import run_sweep, scenario_grid


class TestScenarioGrid:
    def test_grid_size(self):
        grid = scenario_grid(ScenarioConfig(), topologies=3, member_sets=4)
        assert len(grid) == 12

    def test_seeds_unique(self):
        grid = scenario_grid(ScenarioConfig(), topologies=3, member_sets=4)
        seeds = {(c.topology_seed, c.member_seed) for c in grid}
        assert len(seeds) == 12

    def test_same_grid_shares_topologies_across_points(self):
        a = scenario_grid(ScenarioConfig(d_thresh=0.1), 2, 2)
        b = scenario_grid(ScenarioConfig(d_thresh=0.4), 2, 2)
        assert [c.topology_seed for c in a] == [c.topology_seed for c in b]

    def test_bad_dimensions_rejected(self):
        with pytest.raises(ConfigurationError):
            scenario_grid(ScenarioConfig(), 0, 1)


class TestRunSweep:
    def test_sweep_aggregates(self):
        points = run_sweep(
            lambda d: ScenarioConfig(n=30, group_size=8, d_thresh=d),
            values=[0.1, 0.4],
            topologies=2,
            member_sets=2,
        )
        assert len(points) == 2
        for point in points:
            assert len(point.scenarios) == 4
            assert point.rd_relative.n > 0
            assert point.average_degree > 1.0


class TestFigureDrivers:
    """Smoke tests at reduced scale; shape assertions live in benchmarks."""

    def test_fig7_runs_and_renders(self):
        # Small graphs need a denser alpha or every worst-case failure is
        # a bridge and no member is recoverable.
        result = run_figure7(topologies=2, n=30, group_size=8, alpha=0.6)
        assert result.points
        text = result.render()
        assert "RD local" in text and "avg reduction" in text

    def test_fig8_runs_and_renders(self):
        result = run_figure8(
            values=[0.1, 0.3], n=30, group_size=8, topologies=2, member_sets=2
        )
        assert len(result.points) == 2
        assert result.point(0.3).rd_relative.n > 0
        assert "D_thresh" in result.render()
        with pytest.raises(KeyError):
            result.point(0.9)

    def test_fig9_reports_degrees(self):
        result = run_figure9(
            values=[0.2, 0.3], n=30, group_size=8, topologies=2, member_sets=2
        )
        degrees = [p.average_degree for p in result.points]
        assert degrees[1] > degrees[0]  # larger alpha, denser graph
        assert "avg degree" in result.render()

    def test_fig10_group_sizes(self):
        result = run_figure10(
            values=[5, 10], n=30, topologies=2, member_sets=2
        )
        assert result.point(5).rd_relative.n < result.point(10).rd_relative.n
        assert "N_G" in result.render()
